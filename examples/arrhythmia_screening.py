"""Cohort screening: does pruning ever flip a diagnosis?

Screens the full synthetic cohort (sinus-arrhythmia patients and healthy
controls) with the conventional system and with every pruning mode of
the proposed system, reporting sensitivity/specificity per mode — the
paper's Section VI.A robustness experiment at cohort scale.

Run with:  python examples/arrhythmia_screening.py
"""

from __future__ import annotations

from repro import (
    Condition,
    ConventionalPSA,
    PruningSpec,
    QualityScalablePSA,
    make_cohort,
)


def screen(system, recordings) -> list[bool]:
    """True per recording when the system flags sinus arrhythmia."""
    return [system.analyze(rr).detection.is_arrhythmia for rr in recordings]


def main() -> None:
    cohort = make_cohort()
    duration = 600.0
    rsa = [
        p.rr_series(duration)
        for p in cohort.by_condition(Condition.SINUS_ARRHYTHMIA)
    ]
    healthy = [
        p.rr_series(duration) for p in cohort.by_condition(Condition.HEALTHY)
    ]
    print(f"cohort: {len(rsa)} sinus-arrhythmia, {len(healthy)} healthy\n")

    modes = [
        ("conventional", None),
        ("exact wavelet", PruningSpec.none()),
        ("band drop", PruningSpec.band_only()),
        ("band + 20%", PruningSpec.paper_mode(1)),
        ("band + 40%", PruningSpec.paper_mode(2)),
        ("band + 60%", PruningSpec.paper_mode(3)),
        ("band + 60% dyn", PruningSpec.paper_mode(3, dynamic=True)),
    ]
    print(f"{'mode':16s} {'sensitivity':>12s} {'specificity':>12s}")
    for label, spec in modes:
        if spec is None:
            system = ConventionalPSA()
        else:
            system = QualityScalablePSA(pruning=spec)
        flags_rsa = screen(system, rsa)
        flags_healthy = screen(system, healthy)
        sensitivity = sum(flags_rsa) / len(flags_rsa)
        specificity = sum(not f for f in flags_healthy) / len(flags_healthy)
        print(f"{label:16s} {sensitivity:>11.0%} {specificity:>12.0%}")

    print(
        "\nThe paper's claim holds when every row reads 100%/100%: the "
        "approximations never flip a diagnosis."
    )


if __name__ == "__main__":
    main()
