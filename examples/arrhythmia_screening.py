"""Cohort screening: does pruning ever flip a diagnosis?

Screens the full synthetic cohort (sinus-arrhythmia patients and healthy
controls) with the conventional system and with every pruning mode of
the proposed system, reporting sensitivity/specificity per mode — the
paper's Section VI.A robustness experiment at cohort scale.  Each mode
is one declarative :class:`~repro.engine.EngineConfig`; the engine's
fleet path analyses the whole cohort in one call.

Run with:  python examples/arrhythmia_screening.py
"""

from __future__ import annotations

from repro import Condition, Engine, EngineConfig, make_cohort


def screen(engine: Engine, recordings) -> list[bool]:
    """True per recording when the engine flags sinus arrhythmia."""
    return [
        result.detection.is_arrhythmia
        for result in engine.analyze_cohort(recordings)
    ]


def main() -> None:
    cohort = make_cohort()
    duration = 600.0
    rsa = [
        p.rr_series(duration)
        for p in cohort.by_condition(Condition.SINUS_ARRHYTHMIA)
    ]
    healthy = [
        p.rr_series(duration) for p in cohort.by_condition(Condition.HEALTHY)
    ]
    print(f"cohort: {len(rsa)} sinus-arrhythmia, {len(healthy)} healthy\n")

    modes = [
        ("conventional", EngineConfig.for_mode("exact")),
        ("exact wavelet", EngineConfig(system="quality-scalable")),
        ("band drop", EngineConfig.for_mode("band")),
        ("band + 20%", EngineConfig.for_mode("set1")),
        ("band + 40%", EngineConfig.for_mode("set2")),
        ("band + 60%", EngineConfig.for_mode("set3")),
        ("band + 60% dyn", EngineConfig.for_mode("set3", dynamic=True)),
    ]
    print(f"{'mode':16s} {'sensitivity':>12s} {'specificity':>12s}")
    for label, config in modes:
        with Engine(config) as engine:
            flags_rsa = screen(engine, rsa)
            flags_healthy = screen(engine, healthy)
        sensitivity = sum(flags_rsa) / len(flags_rsa)
        specificity = sum(not f for f in flags_healthy) / len(flags_healthy)
        print(f"{label:16s} {sensitivity:>11.0%} {specificity:>12.0%}")

    print(
        "\nThe paper's claim holds when every row reads 100%/100%: the "
        "approximations never flip a diagnosis."
    )


if __name__ == "__main__":
    main()
