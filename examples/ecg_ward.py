"""A ward of raw-ECG monitors: sensor frames to quality-flagged spectra.

The paper's pipeline starts at the sensor — raw ECG on a body node —
and this example walks the full ingestion path the
:mod:`repro.ingest` layer provides, for a small ward of patients:

1. each bedside monitor delivers raw **ECG frames** (a half-second of
   samples at a time);
2. an :class:`~repro.ingest.ECGSource` per patient runs the streaming
   QRS detector over the frames (chunking-invariant — any framing
   yields the same beats) and the incremental artifact preprocessor
   over the detected intervals, emitting cleaned RR events whose
   ``corrected`` masks mark every interpolated beat;
3. the events feed one shared :class:`~repro.engine.StreamHub`, which
   analyses completed two-minute windows **across patients** in dense
   batches — each emission carrying its spectrum *and* its
   time-domain metrics (SDNN, RMSSD, pNN50) with quality flags;
4. at discharge every patient's finalized result is verified
   **bit-identical** — spectrogram, op counts, per-window metrics and
   flags — to the one-shot batch path
   (:func:`~repro.ingest.ecg_record_to_rr` + ``Engine.analyze``).

One patient's sensor is deliberately noisy: a motion artifact shoves a
cluster of beats off their grid, the preprocessor corrects them, and
the affected windows surface ``high_corrected`` / ``artifact_run``
quality flags a clinician can triage by.

Run with:  python examples/ecg_ward.py
"""

from __future__ import annotations

import numpy as np

from repro import Engine, EngineConfig, make_cohort
from repro.ecg import synthesize_ecg
from repro.ingest import ECGSource, ecg_frames, ecg_record_to_rr

#: Sensor sampling rate of the ward's monitors.
SAMPLING_RATE = 250.0

#: ECG samples per uplink frame (half a second per delivery).
FRAME_SAMPLES = 125

#: Patients on the ward (first N of the synthetic cohort).
N_PATIENTS = 3

#: Minutes of monitoring per patient.
MINUTES = 5.0


def render_ward():
    """Rendered ECG per patient; one record gets a motion artifact."""
    ward = {}
    for index, patient in enumerate(list(make_cohort())[:N_PATIENTS]):
        rr = patient.rr_series(duration=MINUTES * 60.0)
        beats = np.concatenate([[rr.times[0] - rr.intervals[0]], rr.times])
        if index == 1:
            # A motion artifact on this monitor: a cluster of beats
            # lands visibly off its grid and must be corrected.
            beats = beats.copy()
            for k in range(60, 76, 3):
                beats[k] += 0.22
        t, ecg = synthesize_ecg(
            beats, sampling_rate=SAMPLING_RATE, seed=index
        )
        ward[patient.patient_id] = (t, ecg)
    return ward


def main() -> None:
    ward = render_ward()
    with Engine(EngineConfig.for_mode("set3")) as engine:
        hub = engine.open_hub(count_ops=True)

        # --- live ingestion: ECG frames -> beats -> cleaned RR -> hub
        for subject, (t, ecg) in ward.items():
            source = ECGSource(
                subject,
                ecg_frames(t, ecg, frame_samples=FRAME_SAMPLES),
                sampling_rate=SAMPLING_RATE,
            )
            corrected_beats = 0
            for event_subject, times, values, corrected in source:
                hub.feed(event_subject, times, values, corrected)
                corrected_beats += int(np.count_nonzero(corrected))
            print(
                f"{subject}: streamed {t.size} ECG samples, "
                f"{corrected_beats} beats corrected in flight"
            )

        # --- discharge: finalize and inspect the quality surface
        results = hub.finalize_all()
        print()
        for subject, result in results.items():
            flagged = [
                (index, metrics)
                for index, metrics in enumerate(result.window_metrics)
                if metrics.flags
            ]
            print(
                f"{subject}: {result.welch.n_windows} windows, "
                f"LF/HF {result.lf_hf:.3f}, "
                f"{len(flagged)} flagged"
            )
            for index, metrics in flagged:
                print(
                    f"  window {index}: SDNN {metrics.sdnn_ms:5.1f} ms, "
                    f"RMSSD {metrics.rmssd_ms:5.1f} ms, "
                    f"{metrics.corrected_fraction:.1%} corrected "
                    f"[{', '.join(metrics.flag_names)}]"
                )

        # --- audit: the streamed path must equal the batch path, bitwise
        print()
        for subject, (t, ecg) in ward.items():
            reference = engine.analyze(
                ecg_record_to_rr(t, ecg, sampling_rate=SAMPLING_RATE),
                count_ops=True,
            )
            result = results[subject]
            identical = (
                np.array_equal(
                    result.welch.spectrogram, reference.welch.spectrogram
                )
                and result.counts == reference.counts
                and result.window_metrics == reference.window_metrics
            )
            verdict = "bit-identical" if identical else "DIVERGED"
            print(f"{subject}: streamed vs batch -> {verdict}")
            assert identical, f"{subject}: streamed result diverged"


if __name__ == "__main__":
    main()
