"""Two wards, one gateway: the network service layer end to end.

A hospital deployment of the streaming engine: wearables do not import
``repro``, they speak a newline-JSON framed protocol to a central
**ingestion gateway** (``python -m repro serve``), and dashboards read
results over plain HTTP.  This walkthrough runs the whole stack
in-process on an ephemeral localhost port:

1. configure a gateway with two isolated tenants — a conventional-PSA
   ward and a quality-scalable ward — each behind its own static
   bearer token, each with its own engine and
   :class:`~repro.engine.StreamHub`,
2. stream two subjects per ward through framed
   :class:`~repro.service.ServiceClient` connections with interleaved
   feeds, watching ``window`` frames arrive live,
3. drop one connection mid-recording and reconnect — the subject's
   server-side session survives and resumes exactly where it stopped,
4. finalize and verify every result is **bit-identical** (spectra and
   operation counts) to whole-recording ``Engine.analyze``,
5. query the REST side: ``POST /v1/analyze`` (same exactness bar) and
   ``GET /v1/stats``,
6. drain the gateway gracefully.

Run with:  python examples/gateway_demo.py
"""

from __future__ import annotations

from repro import Engine, EngineConfig, TachogramSpec
from repro.ecg.rr_synthesis import generate_tachogram
from repro.service import (
    GatewayThread,
    ServiceClient,
    ServiceConfig,
    TenantSpec,
    rest_analyze,
    rest_stats,
)
from repro.service.wire import result_to_dict

#: Minutes of RR data per subject (kept small so the example is quick).
MINUTES = 15.0

#: Beats per framed ``feed`` — a wearable's uplink batch.
CHUNK = 64

WARDS = {
    "ward-conventional": EngineConfig.for_mode("exact"),
    "ward-scalable": EngineConfig.for_mode("set3"),
}


def main() -> None:
    config = ServiceConfig(
        listen="127.0.0.1:0",
        tenants=tuple(
            TenantSpec(ward, f"{ward}-token", engine=engine_config)
            for ward, engine_config in WARDS.items()
        ),
        count_ops=True,
    )
    recordings = {
        f"subject-{k}": generate_tachogram(
            TachogramSpec(seed=2014 + k), MINUTES * 60.0
        )
        for k in range(2)
    }

    # The reference every wire result must match bit for bit.
    reference = {}
    for ward, engine_config in WARDS.items():
        with Engine(engine_config) as engine:
            for subject, rr in recordings.items():
                reference[(ward, subject)] = result_to_dict(
                    engine.analyze(rr, count_ops=True)
                )

    with GatewayThread(config) as gateway:
        print(f"gateway listening on {gateway.address} "
              f"(tenants: {', '.join(WARDS)})\n")

        # --- Act 1: interleaved framed streams, two wards at once. ----
        clients = {}
        for ward in WARDS:
            for subject in recordings:
                client = ServiceClient(
                    gateway.address, tenant=ward, token=f"{ward}-token"
                )
                client.open(subject)
                clients[(ward, subject)] = client
        longest = max(rr.times.size for rr in recordings.values())
        reconnected = False
        for lo in range(0, longest, CHUNK):
            for (ward, subject), client in list(clients.items()):
                rr = recordings[subject]
                if lo >= rr.times.size:
                    continue
                client.feed(
                    rr.times[lo : lo + CHUNK],
                    rr.intervals[lo : lo + CHUNK],
                )
                # --- Act 2: one dropped wearable, halfway through. ----
                if not reconnected and ward == "ward-scalable" and (
                    lo >= rr.times.size // 2
                ):
                    client.sync()          # everything sent is ingested
                    client.close(notify=False)   # battery died, no close
                    fresh = _reopen_when_released(
                        ServiceClient(
                            gateway.address, tenant=ward,
                            token=f"{ward}-token",
                        ),
                        subject, gateway.address, ward,
                    )
                    clients[(ward, subject)] = fresh
                    reconnected = True
                    print(f"{ward}/{subject}: dropped mid-recording and "
                          f"reconnected — session resumed server-side\n")

        # --- Act 3: finalize; the wire results must match exactly. ---
        print("ward               subject    windows  LF/HF  vs local")
        for (ward, subject), client in clients.items():
            result = client.finalize()
            wire = {
                key: value
                for key, value in result.items()
                if key not in ("op", "subject")
            }
            same = wire == reference[(ward, subject)]
            print(
                f"  {ward:<16} {subject:<10} "
                f"{result['n_windows']:>6}  {result['lf_hf']:5.2f}  "
                f"{'bit-identical' if same else 'DIFFERS'}"
            )
            assert same
            client.close()

        # --- Act 4: the REST side of the same gateway. ---------------
        subject, rr = next(iter(recordings.items()))
        rest_result = rest_analyze(
            gateway.address, "ward-scalable-token",
            rr.times, rr.intervals, count_ops=True,
        )
        same = rest_result == reference[("ward-scalable", subject)]
        print(f"\nPOST /v1/analyze ({subject}): "
              f"{'bit-identical' if same else 'DIFFERS'}")
        assert same
        stats = rest_stats(gateway.address, "ward-scalable-token")
        wire = stats["service"]["wire"]
        print(
            f"GET /v1/stats: {wire['frames_in']} frames in / "
            f"{wire['frames_out']} out, "
            f"{wire['bytes_in'] / 1024.0:.0f} KiB ingested"
        )
    print("\ngateway drained cleanly")


def _reopen_when_released(client, subject, address, ward):
    """Re-attach once the gateway has noticed the dropped connection.

    The server unbinds the dead consumer asynchronously (on reading
    EOF), so an immediate re-hello can race it; real wearables retry,
    and so does this.
    """
    import time

    from repro.errors import ServiceError

    deadline = time.monotonic() + 10.0
    current = client
    while True:
        try:
            current.open(subject)
            return current
        except ServiceError:
            current.close()
            if time.monotonic() > deadline:
                raise
            time.sleep(0.05)
            current = ServiceClient(
                address, tenant=ward, token=f"{ward}-token"
            )


if __name__ == "__main__":
    main()
