"""Hour-scale Holter-style monitoring through the full input path.

Exercises the entire Fig. 1(a) pipeline end to end: a synthetic ECG
waveform is rendered from a generated beat sequence, QRS-detected back
into RR intervals, artifact-filtered, and analysed with the proposed
quality-scalable PSA over an hour of sliding windows — producing the
time-frequency LF/HF trace the paper uses for hourly monitoring
(Section VI.A).

The analysis runs **online**: the cleaned beats are fed to a
:class:`~repro.engine.StreamingSession` in five-minute bursts, as a
wearable uplinking batches of beats would deliver them, and each
two-minute Welch window's spectrum is emitted the moment the window
completes — bit-identical to analysing the finished recording in one
call.

Run with:  python examples/holter_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import Engine, EngineConfig, TachogramSpec, lf_hf_ratio
from repro.ecg import QrsDetector, generate_tachogram, synthesize_ecg
from repro.hrv import filter_artifacts


def main() -> None:
    # 1. Generate one hour of beats with RSA structure and some ectopics.
    spec = TachogramSpec(
        mean_rr=0.82,
        lf_amplitude=0.022,
        hf_amplitude=0.055,
        hf_frequency=0.26,
        ectopic_rate=0.01,
        seed=42,
    )
    truth = generate_tachogram(spec, duration=3600.0)
    print(f"ground truth: {truth.n_beats} beats over 60 min")

    # 2. Render a 10-minute ECG segment and detect beats from it, to
    #    validate the delineation stage (the full hour would work too,
    #    this keeps the example snappy).
    segment = truth.slice_time(0.0, 600.0)
    t, ecg = synthesize_ecg(segment.times, sampling_rate=250.0, seed=7)
    detected = QrsDetector(sampling_rate=250.0).detect(t, ecg)
    recovered = detected.rr
    drift = abs(
        recovered.intervals.mean() - segment.intervals.mean()
    ) / segment.intervals.mean()
    print(
        f"QRS detector: {recovered.n_beats} beats recovered from ECG, "
        f"mean-RR drift {drift:.2%}"
    )

    # 3. Clean the full series (the generator injected ~1 % ectopics).
    report = filter_artifacts(truth)
    print(
        f"artifact filter: corrected {report.fraction_corrected:.1%} of beats"
    )

    # 4. Hourly time-frequency monitoring with the pruned system, fed
    #    online: five-minute beat bursts stream into the session, and
    #    every completed two-minute window emits its spectrum at once.
    engine = Engine(EngineConfig.for_mode("set3"))
    session = engine.open_stream()
    series = report.series
    burst_edges = np.arange(0.0, series.times[-1] + 300.0, 300.0)
    live_ratios = []
    for lo, hi in zip(burst_edges[:-1], burst_edges[1:]):
        mask = (series.times >= lo) & (series.times < hi)
        if not np.any(mask):
            continue
        emissions = session.feed(series.times[mask], series.intervals[mask])
        for emission in emissions:
            live_ratios.append(lf_hf_ratio(emission.spectrum))
    if live_ratios:
        print(
            f"\nstreaming: {len(live_ratios)} windows emitted live "
            f"(last at t = {session.emissions[-1].center:.0f} s)"
        )
    result = session.finalize()
    ratios = result.window_ratios
    # Independent check: the streamed result is bit-identical to
    # analysing the completed recording in one batch call.
    batch = engine.analyze(series)
    assert np.array_equal(result.welch.spectrogram, batch.welch.spectrogram)
    assert live_ratios == [
        lf_hf_ratio(s) for s in batch.welch.window_spectra[: len(live_ratios)]
    ]
    print(
        f"\nanalysed {ratios.size} two-minute windows; "
        f"mean LF/HF {ratios.mean():.3f} "
        f"(min {ratios.min():.3f}, max {ratios.max():.3f})"
    )

    # 5. Render the hourly LF/HF trace as a sparkline-style strip.
    bins = np.array_split(ratios, 12)
    print("\nLF/HF over the hour (5-minute bins, # = 0.1):")
    for i, chunk in enumerate(bins):
        value = float(np.mean(chunk))
        bar = "#" * int(round(value / 0.1))
        print(f"  {i * 5:>3d}-{i * 5 + 5:<3d} min | {bar} {value:.2f}")
    verdict = "sinus arrhythmia" if result.detection.is_arrhythmia else "normal"
    print(f"\nscreening verdict: {verdict} (ratio {result.lf_hf:.3f})")


if __name__ == "__main__":
    main()
