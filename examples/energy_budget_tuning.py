"""Energy-budget tuning with the Q_DES quality controller.

Profiles the pruning-mode ladder on a calibration cohort, then shows the
run-time "prune & adjust" loop of the paper's Fig. 9: given an
acceptable LF/HF distortion Q_DES, the controller picks the most
energy-efficient compliant mode.  Finishes with a back-of-the-envelope
battery-life projection for a coin-cell-powered node.

Run with:  python examples/energy_budget_tuning.py
"""

from __future__ import annotations

from repro import EngineConfig, make_cohort
from repro.core import QualityController
from repro.engine import build_system


#: A CR2032 coin cell stores roughly 2.4 kJ.
COIN_CELL_JOULES = 2400.0
#: Welch windows per day at 2 minutes with 50 % overlap.
WINDOWS_PER_DAY = 24 * 60  # one analysis per minute


def main() -> None:
    cohort = make_cohort(n_arrhythmia=4, n_healthy=0)
    recordings = [p.rr_series(duration=480.0) for p in cohort]

    print("profiling the pruning-mode ladder on the calibration cohort ...")
    controller = QualityController.profile(recordings)

    print("\nPareto frontier (energy savings vs LF/HF distortion):")
    print(f"{'mode':28s} {'distortion':>10s} {'savings':>8s}")
    for profile in controller.frontier():
        print(
            f"{profile.spec.describe():28s} {profile.distortion:>9.1%} "
            f"{profile.energy_savings:>8.1%}"
        )

    print("\nQ_DES-driven selection:")
    for q_des in (0.002, 0.02, 0.05, 0.10):
        chosen = controller.select(q_des)
        print(
            f"  Q_DES = {q_des:>5.1%}  ->  {chosen.spec.describe():28s} "
            f"(saves {chosen.energy_savings:.1%}, "
            f"distorts {chosen.distortion:.1%})"
        )

    # Battery-life projection for the most permissive budget.  The
    # chosen mode becomes a declarative config (serializable for the
    # node's deployment manifest); build_system gives the node-model
    # view of the same system an Engine would run.
    chosen = controller.select(0.10)
    tuned_config = EngineConfig(
        system="quality-scalable", pruning=chosen.spec
    )
    print(f"\ndeployed config: {tuned_config.to_json(indent=None)}")
    baseline_system = build_system(EngineConfig.for_mode("exact"))
    tuned_system = build_system(tuned_config)
    report = tuned_system.energy_report(baseline_system, apply_vfs=True)
    per_window_baseline = report.baseline.energy
    per_window_tuned = report.approximate.energy
    for label, joules in (
        ("conventional", per_window_baseline),
        ("tuned       ", per_window_tuned),
    ):
        days = COIN_CELL_JOULES / (joules * WINDOWS_PER_DAY) / 365.0
        print(
            f"\n{label}: {joules * 1e6:.1f} uJ per window "
            f"-> {days:.1f} years of PSA on one CR2032"
        )
    print(
        "\n(The PSA kernel is only part of a node's budget; the point is "
        "the relative headroom the pruning buys.)"
    )


if __name__ == "__main__":
    main()
