"""Cross-machine cohort screening over localhost worker daemons.

An overnight Holter batch is too big for one workstation, so the lab
spreads it across machines: each box runs a **worker daemon**
(``python -m repro worker --listen HOST:PORT``) and the coordinating
workstation lists those addresses in its
:class:`~repro.engine.EngineConfig`.  The fleet scheduler then deals
the cohort's window shards to local slots *and* remote daemons alike,
over a typed binary socket protocol — and the merged spectrograms are
**bit-identical** to running everything in one process, because every
path executes the same pinned kernels in the same window order.

This walkthrough stays on one machine (two daemons on ephemeral
localhost ports) but the wire protocol is the real one:

1. spawn two worker daemons and read their bound addresses,
2. run a four-patient cohort through ``Engine.analyze_cohort`` with
   ``workers=[addr1, addr2]``,
3. verify every spectrogram and operation count matches the
   single-process engine bit for bit,
4. peek under the facade with :class:`~repro.fleet.FleetRunner` to see
   the shard/worker split and the bytes each daemon moved.

Run with:  python examples/distributed_fleet.py
"""

from __future__ import annotations

import os
import pathlib
import re
import signal
import subprocess
import sys

import numpy as np

from repro import Engine, EngineConfig, TachogramSpec
from repro.ecg.rr_synthesis import generate_tachogram
from repro.fleet import FleetRunner

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Patients in the overnight batch (kept small so the example is quick).
N_PATIENTS = 4

#: Minutes of RR data per patient.
MINUTES = 20.0


def spawn_daemon() -> tuple[subprocess.Popen, str]:
    """Start one worker daemon on an ephemeral port; return its address.

    On a real deployment this is one ``python -m repro worker`` per
    machine; the daemon prints the address to hand to the coordinator.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--listen", "127.0.0.1:0"],
        stdout=subprocess.PIPE,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    banner = proc.stdout.readline()
    address = re.search(r"listening on (\S+)", banner).group(1)
    return proc, address


def main() -> None:
    recordings = [
        generate_tachogram(TachogramSpec(seed=2014 + k), MINUTES * 60.0)
        for k in range(N_PATIENTS)
    ]

    daemons = [spawn_daemon() for _ in range(2)]
    addresses = tuple(address for _proc, address in daemons)
    print(f"worker daemons up at {addresses[0]} and {addresses[1]}\n")
    try:
        # --- Act 1: the facade.  Same config, plus worker addresses. ---
        config = EngineConfig.for_mode("set3")
        local_engine = Engine(config)
        fleet_engine = Engine(config.replace(workers=addresses))
        try:
            reference = [
                local_engine.analyze(rr, count_ops=True)
                for rr in recordings
            ]
            distributed = fleet_engine.analyze_cohort(
                recordings, count_ops=True
            )
        finally:
            local_engine.close()
            fleet_engine.close()

        print("patient  windows  LF/HF   spectrogram      op counts")
        for k, (ref, dist) in enumerate(zip(reference, distributed)):
            same_gram = np.array_equal(
                ref.welch.spectrogram, dist.welch.spectrogram
            )
            same_ops = ref.counts == dist.counts
            print(
                f"  {k:>4}  {ref.welch.spectrogram.shape[0]:>7}  "
                f"{dist.lf_hf:5.2f}   "
                f"{'bit-identical' if same_gram else 'DIFFERS':<15}  "
                f"{'equal' if same_ops else 'DIFFER'}"
            )
            assert same_gram and same_ops

        # --- Act 2: under the facade — who did the work? -------------
        with FleetRunner.from_config(
            config.replace(workers=addresses)
        ) as runner:
            report = runner.run_report(recordings)
            stats = runner.transport_stats()
        print(
            f"\n{report.n_shards} shards over {report.n_jobs} local "
            f"slot(s) + {report.n_remote_workers} remote daemon(s):"
        )
        for address, counters in stats.items():
            sent_kb = counters["bytes_sent"] / 1024.0
            recv_kb = counters["bytes_received"] / 1024.0
            print(
                f"  {address}: {sent_kb:7.1f} KiB sent, "
                f"{recv_kb:7.1f} KiB received"
            )
        print(
            "\nevery shard re-executes identically wherever it lands, "
            "so a dead\nworker just means its shards are dealt again — "
            "same spectra, later."
        )
    finally:
        for proc, _address in daemons:
            proc.send_signal(signal.SIGINT)
        for proc, _address in daemons:
            proc.wait(timeout=10.0)
            proc.stdout.close()
    print("worker daemons shut down cleanly")


if __name__ == "__main__":
    main()
