"""Multi-patient ward monitoring over the multiplexed streaming hub.

A hospital ward's worth of wearables trickles beats in concurrently —
one stream per patient — and the monitoring station wants every
patient's two-minute spectrum the moment each window completes, plus a
defensible whole-stay summary at discharge.  This is the streaming
*cohort* shape: many independent monitors, one analysis engine.

The example drives it with asyncio end to end:

* each patient gets an :class:`~repro.engine.AsyncStreamingSession`
  (``hub.open_async``) with a bounded emission queue;
* one *feeder* task per patient pushes that patient's beats in uplink
  bursts (``await session.feed(...)``) — the hub analyses the windows
  every push completes **across all patients in one shared batch**, so
  eight trickling monitors cost one dense kernel call per round, not
  eight tiny ones;
* one *consumer* task per patient ``async for``-s over the emissions,
  watching the live LF/HF ratio and flagging threshold crossings;
* ``await session.finalize()`` closes each stay with a result that is
  **bit-identical** to batch-analysing the patient's completed
  recording — verified at the end against ``Engine.analyze``.

Run with:  python examples/ward_monitoring.py
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro import Engine, EngineConfig, lf_hf_ratio, make_cohort

#: Beats per uplink burst a wearable delivers at once.
BURST_BEATS = 24

#: LF/HF ratio above which the station raises a ward alert.
ALERT_RATIO = 1.0


async def feeder(session, rr) -> None:
    """Push one patient's beats in uplink-sized bursts."""
    for lo in range(0, rr.times.size, BURST_BEATS):
        hi = min(lo + BURST_BEATS, rr.times.size)
        await session.feed(rr.times[lo:hi], rr.intervals[lo:hi])
        # Yield the loop between bursts, as a socket reader would.
        await asyncio.sleep(0)


async def consumer(session, alerts: list) -> int:
    """Watch one patient's live spectra; collect alert crossings."""
    watched = 0
    async for emission in session:
        watched += 1
        ratio = lf_hf_ratio(emission.spectrum)
        if ratio > ALERT_RATIO:
            alerts.append(
                f"  t={emission.center:6.0f}s  {session.subject_id}: "
                f"LF/HF {ratio:.2f}"
            )
    return watched


async def run_ward(engine, recordings) -> dict:
    """Serve every patient concurrently; return the discharge results."""
    hub = engine.open_hub()
    sessions = {
        patient_id: hub.open_async(patient_id) for patient_id in recordings
    }
    alerts: list[str] = []
    consumers = [
        asyncio.create_task(consumer(session, alerts))
        for session in sessions.values()
    ]

    async def feed_and_finalize(patient_id):
        session = sessions[patient_id]
        await feeder(session, recordings[patient_id])
        return patient_id, await session.finalize()

    results = dict(
        await asyncio.gather(
            *(feed_and_finalize(patient_id) for patient_id in recordings)
        )
    )
    watched = await asyncio.gather(*consumers)
    print(
        f"consumed {sum(watched)} live window emissions across "
        f"{len(recordings)} patients"
    )
    print(f"ward alerts ({len(alerts)}):")
    for line in alerts[:6]:
        print(line)
    if len(alerts) > 6:
        print(f"  ... {len(alerts) - 6} more")
    return results


def main() -> None:
    cohort = make_cohort()
    patients = ["rsa-00", "rsa-03", "ctl-00", "ctl-01"]
    recordings = {
        patient_id: cohort.get(patient_id).rr_series(duration=900.0)
        for patient_id in patients
    }
    print(
        f"ward of {len(patients)} patients, "
        f"{sum(rr.n_beats for rr in recordings.values())} beats total"
    )

    with Engine(EngineConfig.for_mode("set3")) as engine:
        results = asyncio.run(run_ward(engine, recordings))

        print("\ndischarge summary:")
        for patient_id, result in results.items():
            verdict = (
                "sinus arrhythmia"
                if result.detection.is_arrhythmia
                else "normal"
            )
            # The streamed stay must equal batch-analysing the completed
            # recording, bit for bit — the hub's core guarantee.
            batch = engine.analyze(recordings[patient_id])
            assert np.array_equal(
                result.welch.spectrogram, batch.welch.spectrogram
            )
            assert result.lf_hf == batch.lf_hf
            print(
                f"  {patient_id}: {result.welch.n_windows} windows, "
                f"LF/HF {result.lf_hf:.3f} -> {verdict}"
            )
    print("\nstreamed results verified bit-identical to batch analysis")


if __name__ == "__main__":
    main()
