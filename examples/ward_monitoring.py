"""Multi-patient ward monitoring over the multiplexed streaming hub.

A hospital ward's worth of wearables trickles beats in concurrently —
one stream per patient — and the monitoring station wants every
patient's two-minute spectrum the moment each window completes, plus a
defensible whole-stay summary at discharge.  This is the streaming
*cohort* shape: many independent monitors, one analysis engine.

The example drives it with asyncio end to end:

* each patient gets an :class:`~repro.engine.AsyncStreamingSession`
  (``hub.open_async``) with a bounded emission queue;
* one *feeder* task per patient pushes that patient's beats in uplink
  bursts (``await session.feed(...)``) — the hub analyses the windows
  every push completes **across all patients in one shared batch**, so
  eight trickling monitors cost one dense kernel call per round, not
  eight tiny ones;
* one *consumer* task per patient ``async for``-s over the emissions,
  watching the live LF/HF ratio and flagging threshold crossings;
* ``await session.finalize()`` closes each stay with a result that is
  **bit-identical** to batch-analysing the patient's completed
  recording — verified at the end against ``Engine.analyze``.

Act two shows the ward under pressure: an
:class:`~repro.engine.SLOSpec` attached to the engine config arms the
quality-adaptive controller, a deterministic fault from
:mod:`repro.testing` simulates a saturated analysis node, and the hub
steps patients down the paper's degradation ladder to claw flush
latency back — then walks them back to full quality as the surge
passes.  The ICU patient is pinned at full quality throughout.

Run with:  python examples/ward_monitoring.py
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro import Engine, EngineConfig, lf_hf_ratio, make_cohort

#: Beats per uplink burst a wearable delivers at once.
BURST_BEATS = 24

#: LF/HF ratio above which the station raises a ward alert.
ALERT_RATIO = 1.0


async def feeder(session, rr) -> None:
    """Push one patient's beats in uplink-sized bursts."""
    for lo in range(0, rr.times.size, BURST_BEATS):
        hi = min(lo + BURST_BEATS, rr.times.size)
        await session.feed(rr.times[lo:hi], rr.intervals[lo:hi])
        # Yield the loop between bursts, as a socket reader would.
        await asyncio.sleep(0)


async def consumer(session, alerts: list) -> int:
    """Watch one patient's live spectra; collect alert crossings."""
    watched = 0
    async for emission in session:
        watched += 1
        ratio = lf_hf_ratio(emission.spectrum)
        if ratio > ALERT_RATIO:
            alerts.append(
                f"  t={emission.center:6.0f}s  {session.subject_id}: "
                f"LF/HF {ratio:.2f}"
            )
    return watched


async def run_ward(engine, recordings) -> dict:
    """Serve every patient concurrently; return the discharge results."""
    hub = engine.open_hub()
    sessions = {
        patient_id: hub.open_async(patient_id) for patient_id in recordings
    }
    alerts: list[str] = []
    consumers = [
        asyncio.create_task(consumer(session, alerts))
        for session in sessions.values()
    ]

    async def feed_and_finalize(patient_id):
        session = sessions[patient_id]
        await feeder(session, recordings[patient_id])
        return patient_id, await session.finalize()

    results = dict(
        await asyncio.gather(
            *(feed_and_finalize(patient_id) for patient_id in recordings)
        )
    )
    watched = await asyncio.gather(*consumers)
    print(
        f"consumed {sum(watched)} live window emissions across "
        f"{len(recordings)} patients"
    )
    print(f"ward alerts ({len(alerts)}):")
    for line in alerts[:6]:
        print(line)
    if len(alerts) > 6:
        print(f"  ... {len(alerts) - 6} more")
    return results


def demo_load_shedding() -> None:
    """Act two: a saturated station sheds quality, then recovers."""
    from repro import SLOSpec
    from repro.testing import FaultClock, FlushLatencyFault

    config = EngineConfig.for_mode("exact").replace(
        system="quality-scalable",
        slo=SLOSpec(
            target_p95_ms=25.0,
            window=4,
            step_down_after=2,
            recover_after=2,
            policy="uniform",
        ),
    )
    cohort = make_cohort()
    patients = ["rsa-00", "rsa-03", "ctl-00", "icu-04"]
    with Engine(config) as engine:
        hub = engine.open_hub()
        sessions = {pid: hub.open(pid) for pid in patients}
        # The ICU bed never degrades, whatever the load.
        hub.set_quality("icu-04", 0, pin=True)
        # A deterministic stand-in for a saturated analysis node: each
        # flush "costs" per-window time scaled by the load schedule —
        # 6x for twelve rounds, then the surge passes.
        clock = FaultClock().install(hub)
        FlushLatencyFault(
            per_window_ms=2.0, discount=0.4, load=(6.0,) * 12 + (0.05,)
        ).install(hub)

        ladder = [entry.label for entry in hub.ladder]
        print(f"degradation ladder: {' -> '.join(ladder)}")
        cursors = {pid: 0.0 for pid in patients}
        for round_no in range(24):
            for pid in patients:
                rr = cohort.get(pid.replace("icu", "ctl")).rr_series(
                    duration=240.0
                )
                times = cursors[pid] + rr.times
                sessions[pid].feed(times, rr.intervals)
                cursors[pid] = float(times[-1])
            hub.flush()
            stats = hub.controller_stats()
            levels = " ".join(
                f"{pid}:{ladder[hub.quality_level(pid)]}"
                for pid in patients
            )
            print(
                f"  round {round_no:2d}  "
                f"p95 {stats['p95_ms']:6.1f} ms  {levels}"
            )
        stats = hub.controller_stats()
        clock.uninstall()
    assert stats["steps_down"] > 0 and stats["steps_up"] > 0
    assert all(level == 0 for level in stats["levels"].values())
    print(
        f"shed and recovered: {stats['steps_down']} step-downs, "
        f"{stats['steps_up']} step-ups, ICU pinned at full throughout"
    )


def main() -> None:
    cohort = make_cohort()
    patients = ["rsa-00", "rsa-03", "ctl-00", "ctl-01"]
    recordings = {
        patient_id: cohort.get(patient_id).rr_series(duration=900.0)
        for patient_id in patients
    }
    print(
        f"ward of {len(patients)} patients, "
        f"{sum(rr.n_beats for rr in recordings.values())} beats total"
    )

    with Engine(EngineConfig.for_mode("set3")) as engine:
        results = asyncio.run(run_ward(engine, recordings))

        print("\ndischarge summary:")
        for patient_id, result in results.items():
            verdict = (
                "sinus arrhythmia"
                if result.detection.is_arrhythmia
                else "normal"
            )
            # The streamed stay must equal batch-analysing the completed
            # recording, bit for bit — the hub's core guarantee.
            batch = engine.analyze(recordings[patient_id])
            assert np.array_equal(
                result.welch.spectrogram, batch.welch.spectrogram
            )
            assert result.lf_hf == batch.lf_hf
            print(
                f"  {patient_id}: {result.welch.n_windows} windows, "
                f"LF/HF {result.lf_hf:.3f} -> {verdict}"
            )
    print("\nstreamed results verified bit-identical to batch analysis")

    print("\n--- act two: overload, quality shedding, recovery ---")
    demo_load_shedding()


if __name__ == "__main__":
    main()
