"""Quickstart: raw ECG to quality-flagged HRV spectra, both PSA systems.

The full pipeline of the paper, end to end, on one synthetic
sinus-arrhythmia patient:

1. render the patient's **raw ECG waveform** (what a body node's
   front-end actually samples);
2. detect QRS beats and clean the RR intervals through the ingestion
   layer (:func:`repro.ingest.ecg_record_to_rr` — Pan-Tompkins-style
   detection plus ectopic/artifact interpolation, the corrected-beat
   mask riding along);
3. run both PSA systems through the declarative engine facade — the
   split-radix conventional baseline and the pruned wavelet-FFT system
   at the paper's most aggressive mode;
4. print the clinical read-out (LF/HF, detection verdict), the
   per-window time-domain metrics and quality flags, and the energy
   savings on the sensor-node model.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Engine, EngineConfig, make_cohort
from repro.ecg import synthesize_ecg
from repro.ingest import ecg_record_to_rr


def main() -> None:
    # --- 1. the sensor signal: raw ECG samples at 250 Hz
    patient = make_cohort().get("rsa-05")
    beats = patient.rr_series(duration=600.0)
    t, ecg = synthesize_ecg(beats.times, sampling_rate=250.0, seed=5)
    print(
        f"patient {patient.patient_id}: {t.size} ECG samples over "
        f"{(t[-1] - t[0]) / 60:.1f} min at 250 Hz"
    )

    # --- 2. ingestion: QRS detection + artifact cleaning
    rr = ecg_record_to_rr(t, ecg, sampling_rate=250.0)
    print(
        f"ingested: {rr.n_beats} beats, mean HR "
        f"{rr.mean_heart_rate:.0f} bpm, "
        f"{int(rr.corrected.sum())} intervals corrected"
    )

    # One declarative config per system; Engine resolves the execution
    # settings (FFT provider, batch chunk size) once, up front.
    conventional = Engine(EngineConfig.for_mode("exact"))
    proposed = Engine(EngineConfig.for_mode("set3"))
    print(
        "execution: provider "
        f"{conventional.resolved.provider} "
        f"({conventional.resolved.provider_source}), "
        f"chunk {conventional.resolved.chunk_windows} windows"
    )

    # --- 3. both PSA systems over the same cleaned series
    reference = conventional.analyze(rr)
    approximate = proposed.analyze(rr)

    print("\n               LF/HF   LFP       HFP       arrhythmia?")
    for name, result in (
        ("conventional", reference),
        ("proposed    ", approximate),
    ):
        print(
            f"{name}   {result.lf_hf:.3f}   "
            f"{result.band_powers['LF']:.2e}  {result.band_powers['HF']:.2e}  "
            f"{result.detection.is_arrhythmia}"
        )
    error = abs(approximate.lf_hf - reference.lf_hf) / reference.lf_hf
    print(f"\nLF/HF relative error from pruning: {error:.1%}")

    # --- 4a. the quality surface: per-window metrics next to spectra
    print("\nwindow  SDNN(ms)  RMSSD(ms)  pNN50   corrected  flags")
    for index, metrics in enumerate(approximate.window_metrics):
        flags = ", ".join(metrics.flag_names) or "-"
        print(
            f"{index:>6}  {metrics.sdnn_ms:8.1f}  {metrics.rmssd_ms:9.1f}  "
            f"{metrics.pnn50:5.1%}  {metrics.corrected_fraction:9.1%}  "
            f"{flags}"
        )

    # --- 4b. the energy model lives on the quality-scalable system.
    report = proposed.system.energy_report(
        conventional.system, apply_vfs=True, fft_only=True
    )
    print(
        f"\nFFT-kernel energy savings with VFS: {report.energy_savings:.1%} "
        f"(runs at {report.approximate.operating_point.voltage:.2f} V / "
        f"{report.approximate.operating_point.frequency / 1e6:.0f} MHz)"
    )
    window = proposed.system.energy_report(
        conventional.system, apply_vfs=True, fft_only=False
    )
    print(f"whole-window energy savings with VFS: {window.energy_savings:.1%}")

    # The config is the portable artifact: this JSON fully describes
    # the proposed analysis (try it with `python -m repro screen
    # --config proposed.json`).
    print(f"\nproposed analysis as JSON:\n{proposed.config.to_json()}")


if __name__ == "__main__":
    main()
