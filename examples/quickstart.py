"""Quickstart: conventional vs quality-scalable HRV spectral analysis.

Generates one synthetic sinus-arrhythmia patient, runs both PSA systems
through the declarative engine facade (the split-radix baseline and the
pruned wavelet-FFT system at the paper's most aggressive mode), and
prints the clinical read-out together with the energy savings on the
sensor-node model.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Engine, EngineConfig, make_cohort


def main() -> None:
    patient = make_cohort().get("rsa-05")
    rr = patient.rr_series(duration=600.0)
    print(
        f"patient {patient.patient_id}: {rr.n_beats} beats over "
        f"{rr.duration / 60:.1f} min, mean HR {rr.mean_heart_rate:.0f} bpm"
    )

    # One declarative config per system; Engine resolves the execution
    # settings (FFT provider, batch chunk size) once, up front.
    conventional = Engine(EngineConfig.for_mode("exact"))
    proposed = Engine(EngineConfig.for_mode("set3"))
    print(
        "execution: provider "
        f"{conventional.resolved.provider} "
        f"({conventional.resolved.provider_source}), "
        f"chunk {conventional.resolved.chunk_windows} windows"
    )

    reference = conventional.analyze(rr)
    approximate = proposed.analyze(rr)

    print("\n               LF/HF   LFP       HFP       arrhythmia?")
    for name, result in (
        ("conventional", reference),
        ("proposed    ", approximate),
    ):
        print(
            f"{name}   {result.lf_hf:.3f}   "
            f"{result.band_powers['LF']:.2e}  {result.band_powers['HF']:.2e}  "
            f"{result.detection.is_arrhythmia}"
        )
    error = abs(approximate.lf_hf - reference.lf_hf) / reference.lf_hf
    print(f"\nLF/HF relative error from pruning: {error:.1%}")

    # The energy model lives on the wrapped quality-scalable system.
    report = proposed.system.energy_report(
        conventional.system, apply_vfs=True, fft_only=True
    )
    print(
        f"FFT-kernel energy savings with VFS: {report.energy_savings:.1%} "
        f"(runs at {report.approximate.operating_point.voltage:.2f} V / "
        f"{report.approximate.operating_point.frequency / 1e6:.0f} MHz)"
    )
    window = proposed.system.energy_report(
        conventional.system, apply_vfs=True, fft_only=False
    )
    print(f"whole-window energy savings with VFS: {window.energy_savings:.1%}")

    # The config is the portable artifact: this JSON fully describes
    # the proposed analysis (try it with `python -m repro screen
    # --config proposed.json`).
    print(f"\nproposed analysis as JSON:\n{proposed.config.to_json()}")


if __name__ == "__main__":
    main()
