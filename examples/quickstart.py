"""Quickstart: conventional vs quality-scalable HRV spectral analysis.

Generates one synthetic sinus-arrhythmia patient, runs both PSA systems
(the split-radix baseline and the pruned wavelet-FFT system at the
paper's most aggressive mode), and prints the clinical read-out together
with the energy savings on the sensor-node model.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ConventionalPSA,
    PruningSpec,
    QualityScalablePSA,
    make_cohort,
)


def main() -> None:
    patient = make_cohort().get("rsa-05")
    rr = patient.rr_series(duration=600.0)
    print(
        f"patient {patient.patient_id}: {rr.n_beats} beats over "
        f"{rr.duration / 60:.1f} min, mean HR {rr.mean_heart_rate:.0f} bpm"
    )

    conventional = ConventionalPSA()
    proposed = QualityScalablePSA(pruning=PruningSpec.paper_mode(3))

    reference = conventional.analyze(rr)
    approximate = proposed.analyze(rr)

    print("\n               LF/HF   LFP       HFP       arrhythmia?")
    for name, result in (
        ("conventional", reference),
        ("proposed    ", approximate),
    ):
        print(
            f"{name}   {result.lf_hf:.3f}   "
            f"{result.band_powers['LF']:.2e}  {result.band_powers['HF']:.2e}  "
            f"{result.detection.is_arrhythmia}"
        )
    error = abs(approximate.lf_hf - reference.lf_hf) / reference.lf_hf
    print(f"\nLF/HF relative error from pruning: {error:.1%}")

    report = proposed.energy_report(conventional, apply_vfs=True, fft_only=True)
    print(
        f"FFT-kernel energy savings with VFS: {report.energy_savings:.1%} "
        f"(runs at {report.approximate.operating_point.voltage:.2f} V / "
        f"{report.approximate.operating_point.frequency / 1e6:.0f} MHz)"
    )
    window = proposed.energy_report(conventional, apply_vfs=True, fft_only=False)
    print(f"whole-window energy savings with VFS: {window.energy_savings:.1%}")


if __name__ == "__main__":
    main()
