"""Fig. 8: conventional vs proposed periodogram for one RSA patient.

Paper: with the highpass band and 60 % of the twiddle factors pruned the
LF/HF ratio moves from 0.451 to 0.4652 (~3 %), and the sinus-arrhythmia
signature (dominant HF power) remains evident.  The bench prints both
systems' band powers and ratios for one patient, mirroring the figure's
annotations (Total LFP / HFP / ULFP).
"""

from __future__ import annotations

from conftest import emit

from repro import ConventionalPSA, PruningSpec, QualityScalablePSA
from repro.analysis import format_percent, format_table


def test_fig8_single_patient(benchmark, rsa_recordings):
    # Patient rsa-05's conventional ratio (0.451) happens to match the
    # paper's Fig. 8 patient exactly, making the comparison direct.
    rr = rsa_recordings[5]
    conventional = ConventionalPSA()
    proposed = QualityScalablePSA(pruning=PruningSpec.paper_mode(3))

    reference = conventional.analyze(rr)
    approximate = benchmark(proposed.analyze, rr)

    scale = 1e6  # display scale for band powers
    rows = []
    for label, result in (
        ("conventional (split-radix)", reference),
        ("proposed (band drop + 60%)", approximate),
    ):
        bands = result.band_powers
        rows.append(
            [
                label,
                f"{result.lf_hf:.4f}",
                f"{bands['LF'] * scale:.1f}",
                f"{bands['HF'] * scale:.1f}",
                f"{(bands['ULF'] + bands['VLF']) * scale:.1f}",
            ]
        )
    error = abs(approximate.lf_hf - reference.lf_hf) / reference.lf_hf
    emit(
        "fig8_periodogram",
        format_table(
            ["system", "LFP/HFP", "Total LFP", "Total HFP", "Total ULFP"],
            rows,
            title="Fig 8 — periodogram comparison, one sinus-arrhythmia "
            "patient (paper: 0.451 vs 0.4652, ~3% difference)",
        )
        + f"\n\nLF/HF relative difference: {format_percent(error)}"
        + " (paper: ~3%)",
    )

    # The arrhythmia signature must survive: HF dominant in both systems.
    assert reference.band_powers["HF"] > reference.band_powers["LF"]
    assert approximate.band_powers["HF"] > approximate.band_powers["LF"]
    assert reference.detection.is_arrhythmia
    assert approximate.detection.is_arrhythmia
    assert error < 0.15
