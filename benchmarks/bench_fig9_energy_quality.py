"""Fig. 9: energy-quality trade-offs with static/dynamic pruning + VFS.

Paper headline numbers: 51 % energy savings from static pruning alone
(band drop + 60 % twiddles), up to 82 % when combined with VFS, with a
9.2 % worst-case LF/HF error; dynamic pruning trades ~10 % of the energy
savings for lower distortion.  The bench sweeps the full mode ladder and
prints both the FFT-kernel and the whole-window savings.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis import energy_quality_sweep, format_percent, format_table
from repro.core.adaptive import QualityController


def test_fig9_tradeoff_sweep(benchmark, rsa_recordings):
    recordings = rsa_recordings[:6]

    points = benchmark.pedantic(
        energy_quality_sweep, args=(recordings,), rounds=1, iterations=1
    )

    rows = [
        [
            p.label,
            format_percent(p.distortion),
            format_percent(p.cycle_reduction),
            format_percent(p.static_savings),
            format_percent(p.vfs_savings),
            format_percent(p.window_static_savings),
            format_percent(p.window_vfs_savings),
        ]
        for p in points
    ]
    emit(
        "fig9_energy_quality",
        format_table(
            [
                "mode",
                "LF/HF distortion",
                "cycle red. (FFT)",
                "E static (FFT)",
                "E + VFS (FFT)",
                "E static (window)",
                "E + VFS (window)",
            ],
            rows,
            title="Fig 9 — energy-quality trade-offs "
            "(paper: up to 51% static / 82% with VFS; dynamic costs ~10% "
            "energy for lower distortion)",
        ),
    )

    static = [p for p in points if not p.dynamic and "band" in p.label]
    dynamic = [p for p in points if p.dynamic]
    # Static ladder: savings grow with the pruning degree.
    savings = [p.static_savings for p in static]
    assert savings == sorted(savings)
    # VFS amplifies every mode.
    for p in points:
        assert p.vfs_savings > p.static_savings
    # Peak VFS savings approach the paper's 82 %.
    assert 0.65 < max(p.vfs_savings for p in points) < 0.9
    # Dynamic modes: lower savings than their static counterparts.
    for d in dynamic:
        twin = next(
            p for p in static if p.label == d.label.replace(" dyn", "")
        )
        assert d.vfs_savings < twin.vfs_savings
        assert d.distortion <= twin.distortion * 1.05 + 1e-12


def test_fig9_qdes_controller(benchmark, rsa_recordings):
    """The Q_DES 'prune & adjust' loop sketched next to Fig. 9."""
    controller = benchmark.pedantic(
        QualityController.profile, args=(rsa_recordings[:2],),
        rounds=1, iterations=1,
    )
    relaxed = controller.select(q_des=0.15)
    strict = controller.select(q_des=0.005)
    rows = [
        [
            f"{q:.3f}",
            controller.select(q).spec.describe(),
            format_percent(controller.select(q).energy_savings),
            format_percent(controller.select(q).distortion),
        ]
        for q in (0.005, 0.02, 0.05, 0.10, 0.15)
    ]
    emit(
        "fig9_qdes",
        format_table(
            ["Q_DES", "selected mode", "energy savings", "distortion"],
            rows,
            title="Fig 9 (Q_DES loop) — mode selected per distortion budget",
        ),
    )
    assert relaxed.energy_savings >= strict.energy_savings
