"""Fig. 7: spectrum MSE under the stage-2 pruning degrees.

The paper prunes growing sets of small twiddle factors and reports that
the MSE vs. the exact output "deteriorates slightly".  The bench runs
the same sweep over extirpolated cardiac windows, with and without the
band drop, including the dynamic variants.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis import format_table, mse_sensitivity_sweep
from repro.core.calibration import extract_calibration_windows


def test_fig7_mse_sweep(benchmark, rsa_recordings, config):
    windows = extract_calibration_windows(rsa_recordings[:6], config)

    points = benchmark(
        mse_sensitivity_sweep,
        windows,
        512,
        "haar",
        (0.0, 0.2, 0.4, 0.6),
        True,
        True,
    )

    rows = [
        [p.label, "yes" if p.dynamic else "no", f"{p.mean_mse:.4e}",
         f"{p.max_mse:.4e}"]
        for p in points
    ]
    emit(
        "fig7_mse",
        format_table(
            ["pruned factors", "dynamic", "mean MSE", "max MSE"],
            rows,
            title="Fig 7 — spectrum MSE vs stage-2 pruning degree "
            "(band drop active; paper: MSE grows slightly with the set)",
        ),
    )
    static = {p.label: p.mean_mse for p in points if not p.dynamic}
    # Band-drop error dominates; extra pruning moves MSE moderately.
    assert static["60%"] <= static["0%"] * 3.0
    dynamic = {p.label: p.mean_mse for p in points if p.dynamic}
    for label, value in dynamic.items():
        static_label = label.replace(" dyn", "")
        # Dynamic pruning is a subset of static: not appreciably worse.
        assert value <= static[static_label] * 1.05 + 1e-12


def test_fig7_pure_stage2_monotonicity(benchmark, rsa_recordings, config):
    """Without the band drop the MSE is strictly monotone in the set."""
    windows = extract_calibration_windows(rsa_recordings[:4], config)
    points = benchmark.pedantic(
        mse_sensitivity_sweep,
        args=(windows, 512, "haar", (0.0, 0.2, 0.4, 0.6)),
        kwargs={"band_drop": False},
        rounds=1,
        iterations=1,
    )
    means = [p.mean_mse for p in points]
    emit(
        "fig7_stage2_only",
        format_table(
            ["pruned", "mean MSE"],
            [[p.label, f"{p.mean_mse:.4e}"] for p in points],
            title="Fig 7 (ablation) — stage-2 pruning alone",
        ),
    )
    assert means[0] < 1e-12
    assert means[1] < means[2] < means[3]
