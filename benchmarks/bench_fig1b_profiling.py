"""Fig. 1(b): energy profiling of the conventional split-radix PSA.

Paper observation: "the FFT block consumes most of the overall system
power, which also accounts for the majority of the total computational
cycles" — the motivation for attacking the FFT.  This bench profiles one
Fast-Lomb analysis window block by block on the node model and prints
the cycle/energy shares.
"""

from __future__ import annotations

from conftest import emit

from repro import ConventionalPSA
from repro.analysis import format_percent, format_table
from repro.platform import SensorNodeModel, profile_blocks


def _window_signal(rsa_recordings):
    rr = rsa_recordings[0]
    window = rr.slice_time(0.0, 120.0)
    return window.times, window.intervals


def test_fig1b_energy_profile(benchmark, rsa_recordings):
    times, values = _window_signal(rsa_recordings)
    system = ConventionalPSA()
    engine = system._welch.analyzer

    breakdown = benchmark(engine.count_breakdown, times, values)

    profiles = profile_blocks(breakdown, SensorNodeModel())
    rows = [
        [
            p.name,
            f"{p.counts.total}",
            f"{p.cycles:.0f}",
            format_percent(p.cycle_share),
            format_percent(p.energy_share),
        ]
        for p in profiles
    ]
    emit(
        "fig1b_profiling",
        format_table(
            ["block", "ops", "cycles", "cycle share", "energy share"],
            rows,
            title="Fig 1(b) — conventional PSA window profile "
            "(paper: FFT dominates)",
        ),
    )
    assert profiles[0].name == "fft"
    assert profiles[0].energy_share > 0.5


def test_fig1b_window_throughput(benchmark, rsa_recordings):
    """Time one full conventional Fast-Lomb window (the profiled unit)."""
    times, values = _window_signal(rsa_recordings)
    engine = ConventionalPSA()._welch.analyzer
    spectrum = benchmark(engine.periodogram, times, values)
    assert spectrum.power.size > 0
