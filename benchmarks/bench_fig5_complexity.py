"""Fig. 5: operation-count comparison of the wavelet FFT vs split radix.

Reproduces both panels plus the Section V.B order-scaling claim:

* (a) adds/mults for Haar/Db2/Db4 with no approximation and with the
  stage-1 band drop (paper: +36/49/76 % unpruned; -28/-21/-8 % dropped),
* (b) the three stage-2 pruning modes on top of the band drop (paper:
  Haar cheapest; overall -52 % adds, -17 % mults at Mode 3),
* the N = 1024 sweep ("savings increase with the order").
"""

from __future__ import annotations

from conftest import emit

from repro.analysis import format_percent, format_table
from repro.ffts import PruningSpec, WaveletFFT, split_radix_counts


def _rows_for(n: int) -> list[list[str]]:
    baseline = split_radix_counts(n)
    rows = [
        [
            f"split-radix {n}",
            str(baseline.adds),
            str(baseline.mults),
            str(baseline.total),
            "--",
        ]
    ]
    variants = [("no approx", PruningSpec.none()), ("band drop", PruningSpec.band_only())]
    for basis in ("haar", "db2", "db4"):
        for label, spec in variants:
            counts = WaveletFFT(n, basis=basis, pruning=spec).static_counts()
            rows.append(
                [
                    f"{basis} ({label})",
                    str(counts.adds),
                    str(counts.mults),
                    str(counts.total),
                    format_percent(counts.savings_vs(baseline), signed=True),
                ]
            )
    return rows


def test_fig5a_basis_comparison(benchmark):
    rows = benchmark(_rows_for, 512)
    emit(
        "fig5a_complexity",
        format_table(
            ["kernel", "adds", "mults", "total", "savings vs split-radix"],
            rows,
            title="Fig 5(a) — wavelet-FFT complexity, N=512 "
            "(paper band-drop savings: haar 28%, db2 21%, db4 8%)",
        ),
    )
    # Shape assertions: unpruned overhead ordered, band-drop savings ordered.
    baseline = split_radix_counts(512)
    band = {
        b: WaveletFFT(512, basis=b, pruning=PruningSpec.band_only())
        .static_counts()
        .savings_vs(baseline)
        for b in ("haar", "db2", "db4")
    }
    assert band["haar"] > band["db2"] > band["db4"] > 0


def test_fig5b_pruning_modes(benchmark):
    def build():
        baseline = split_radix_counts(512)
        rows = []
        for basis in ("haar", "db2", "db4"):
            for mode in (1, 2, 3):
                counts = WaveletFFT(
                    512, basis=basis, pruning=PruningSpec.paper_mode(mode)
                ).static_counts()
                rows.append(
                    [
                        f"{basis} mode{mode}",
                        str(counts.adds),
                        format_percent(1 - counts.adds / baseline.adds, signed=True),
                        str(counts.mults),
                        format_percent(1 - counts.mults / baseline.mults, signed=True),
                        format_percent(counts.savings_vs(baseline), signed=True),
                    ]
                )
        return rows

    rows = benchmark(build)
    emit(
        "fig5b_modes",
        format_table(
            ["kernel", "adds", "add savings", "mults", "mult savings", "total savings"],
            rows,
            title="Fig 5(b) — stage-2 pruning modes "
            "(paper at haar mode3: -52% adds, -17% mults)",
        ),
    )
    baseline = split_radix_counts(512)
    mode3 = WaveletFFT(512, pruning=PruningSpec.paper_mode(3)).static_counts()
    assert 0.46 < 1 - mode3.adds / baseline.adds < 0.58
    assert 0.11 < 1 - mode3.mults / baseline.mults < 0.23


def test_fig5_order_scaling(benchmark):
    def sweep():
        rows = []
        for n in (256, 512, 1024, 2048):
            baseline = split_radix_counts(n)
            counts = WaveletFFT(
                n, pruning=PruningSpec.paper_mode(3)
            ).static_counts()
            rows.append(
                [
                    str(n),
                    format_percent(1 - counts.mults / baseline.mults, signed=True),
                    format_percent(1 - counts.adds / baseline.adds, signed=True),
                    format_percent(counts.savings_vs(baseline), signed=True),
                ]
            )
        return rows

    rows = benchmark(sweep)
    emit(
        "fig5_order_sweep",
        format_table(
            ["N", "mult savings", "add savings", "total savings"],
            rows,
            title="Section V.B — savings grow with transform order "
            "(paper: N=1024 gives further -12% mults / -8% adds)",
        ),
    )


def test_fig5_transform_throughput(benchmark, rng=None):
    import numpy as np

    x = np.random.default_rng(0).standard_normal(512)
    plan = WaveletFFT(512, pruning=PruningSpec.paper_mode(3))
    spectrum = benchmark(plan.transform, x)
    assert spectrum.size == 512
