"""Throughput benchmark: sequential vs batched windowed-PSA execution.

Measures windows/second of the Welch-Lomb engine over a synthetic 24 h
Holter RR recording, for both PSA systems:

* the **conventional** system (split-radix FFT backend), and
* the **quality-scalable** system (pruned wavelet FFT, paper Mode 3),

each driven through the original per-window sequential loop
(``batched=False``, the equivalence oracle) and the batched execution
engine (``batched=True``, the default).  Results — including the
speedup and a batched-vs-sequential equivalence check — are written to
``BENCH_throughput.json`` at the repository root.

Run with:  python benchmarks/bench_throughput.py [--hours H] [--repeats R]

The test suite invokes :func:`run_throughput_benchmark` with a small
workload as a smoke test, so this script cannot rot.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.config import PSAConfig  # noqa: E402
from repro.core.system import ConventionalPSA, QualityScalablePSA  # noqa: E402
from repro.ecg.rr_synthesis import TachogramSpec, generate_tachogram  # noqa: E402
from repro.ffts.pruning import PruningSpec  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_throughput.json"


def _time_analyze(welch, times, intervals, batched: bool, repeats: int) -> float:
    """Best-of-``repeats`` wall time of one full Welch-Lomb analysis."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        welch.analyze(times, intervals, batched=batched)
        best = min(best, time.perf_counter() - start)
    return best


def run_throughput_benchmark(
    duration_hours: float = 24.0,
    repeats: int = 3,
    seed: int = 2014,
) -> dict:
    """Benchmark both PSA systems on a synthetic Holter recording.

    Returns the result document (also see :func:`main`, which writes it
    to ``BENCH_throughput.json``).
    """
    config = PSAConfig()
    rr = generate_tachogram(
        TachogramSpec(seed=seed), duration_hours * 3600.0
    )
    systems = {
        "conventional_split_radix": ConventionalPSA(config),
        "quality_scalable_wavelet_mode3": QualityScalablePSA(
            config, pruning=PruningSpec.paper_mode(3)
        ),
    }
    results: dict[str, dict] = {}
    n_windows = None
    for name, system in systems.items():
        welch = system.welch
        # Warm caches and touch both paths once before timing.
        reference = welch.analyze(rr.times, rr.intervals, batched=False)
        batched_result = welch.analyze(rr.times, rr.intervals, batched=True)
        n_windows = reference.n_windows
        max_rel_diff = float(
            np.max(
                np.abs(batched_result.spectrogram - reference.spectrogram)
                / np.maximum(np.abs(reference.spectrogram), 1e-30)
            )
        )
        seq_seconds = _time_analyze(
            welch, rr.times, rr.intervals, batched=False, repeats=repeats
        )
        batch_seconds = _time_analyze(
            welch, rr.times, rr.intervals, batched=True, repeats=repeats
        )
        results[name] = {
            "sequential_seconds": seq_seconds,
            "batched_seconds": batch_seconds,
            "sequential_windows_per_sec": n_windows / seq_seconds,
            "batched_windows_per_sec": n_windows / batch_seconds,
            "speedup": seq_seconds / batch_seconds,
            "max_rel_diff_spectrogram": max_rel_diff,
        }
    return {
        "benchmark": "batched vs sequential windowed-PSA throughput",
        "workload": {
            "duration_hours": duration_hours,
            "n_beats": int(rr.times.size),
            "n_windows": int(n_windows),
            "window_seconds": config.window_seconds,
            "overlap": config.overlap,
            "workspace_size": config.fft_size,
            "repeats": repeats,
            "seed": seed,
        },
        "systems": results,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--hours", type=float, default=24.0, help="recording length in hours"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repetitions (best-of)"
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help="where to write the JSON document",
    )
    args = parser.parse_args(argv)
    document = run_throughput_benchmark(
        duration_hours=args.hours, repeats=args.repeats
    )
    args.output.write_text(json.dumps(document, indent=2) + "\n")
    print(json.dumps(document, indent=2))
    for name, entry in document["systems"].items():
        print(
            f"{name}: {entry['sequential_windows_per_sec']:.0f} -> "
            f"{entry['batched_windows_per_sec']:.0f} windows/s "
            f"({entry['speedup']:.1f}x)"
        )


if __name__ == "__main__":
    main()
