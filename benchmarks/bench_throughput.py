"""Throughput benchmark: sequential vs batched vs per-provider execution.

Measures windows/second of the Welch-Lomb engine over a synthetic 24 h
Holter RR recording, for both PSA systems:

* the **conventional** system (split-radix FFT backend), and
* the **quality-scalable** system (pruned wavelet FFT, paper Mode 3),

each driven through the original per-window sequential loop
(``batched=False``, the equivalence oracle) and the batched execution
engine (``batched=True``, the default), then through the batched engine
once per available **FFT execution provider** (explicit oracle, numpy,
scipy when installed — see :mod:`repro.ffts.providers`).  For every
provider the document records windows/sec, the speedup over the
explicit-kernel batched path, the max relative spectrogram difference
against the explicit oracle (must be ``np.allclose``) and whether the
modelled operation counts match the oracle exactly (they must — counts
are modelled, never measured).  Each system also records steady-state
allocation churn per window (tracemalloc) with the workspace arena on
vs off.  Results are written to ``BENCH_throughput.json`` at the
repository root.

Run with:  python benchmarks/bench_throughput.py [--hours H] [--repeats R]

The test suite invokes :func:`run_throughput_benchmark` with a small
workload as a smoke test, so this script cannot rot.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.config import PSAConfig  # noqa: E402
from repro.core.system import ConventionalPSA, QualityScalablePSA  # noqa: E402
from repro.ecg.rr_synthesis import TachogramSpec, generate_tachogram  # noqa: E402
from repro.ffts.providers import registry  # noqa: E402
from repro.ffts.pruning import PruningSpec  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_throughput.json"


def _time_analyze(welch, times, intervals, batched: bool, repeats: int) -> float:
    """Best-of-``repeats`` wall time of one full Welch-Lomb analysis."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        welch.analyze_windows(times, intervals, batched=batched)
        best = min(best, time.perf_counter() - start)
    return best


def _sweep_providers(welch, times, intervals, n_windows, repeats: int) -> dict:
    """Time the batched path under every available provider.

    The explicit provider is the baseline (and the numerical oracle):
    every other provider's spectrogram must be ``np.allclose`` to it
    and its modelled operation counts must match exactly.
    """
    names = [
        name
        for name, available in registry.available_providers().items()
        if available
    ]
    names.sort(key=lambda name: name != "explicit")  # oracle runs first
    previous = registry.get_default_provider_name()
    entries: dict[str, dict] = {}
    oracle = None
    try:
        for name in names:
            registry.set_default_provider(name)
            checked = welch.analyze_windows(
                times, intervals, batched=True, count_ops=True
            )
            if oracle is None:  # "explicit" is registered first
                oracle = checked
            seconds = _time_analyze(
                welch, times, intervals, batched=True, repeats=repeats
            )
            max_rel_diff = float(
                np.max(
                    np.abs(checked.spectrogram - oracle.spectrogram)
                    / np.maximum(np.abs(oracle.spectrogram), 1e-30)
                )
            )
            entries[name] = {
                "batched_seconds": seconds,
                "windows_per_sec": n_windows / seconds,
                "max_rel_diff_vs_oracle": max_rel_diff,
                "allclose_vs_oracle": bool(
                    np.allclose(
                        checked.spectrogram,
                        oracle.spectrogram,
                        rtol=1e-6,
                        atol=1e-12,
                    )
                ),
                "opcounts_match_oracle": checked.counts == oracle.counts,
            }
    finally:
        registry.set_default_provider(previous)
    explicit_seconds = entries["explicit"]["batched_seconds"]
    for entry in entries.values():
        entry["speedup_vs_explicit"] = (
            explicit_seconds / entry["batched_seconds"]
        )
    best = max(entries, key=lambda name: entries[name]["windows_per_sec"])
    return {
        "per_provider": entries,
        "best_provider": best,
        "best_speedup_vs_explicit": entries[best]["speedup_vs_explicit"],
    }


def _steady_state_alloc(welch, times, intervals, n_windows) -> dict:
    """Allocation churn of one batched analysis, arena on vs off.

    One warmed, tracemalloc-traced ``analyze_windows`` pass per variant
    (the warm pass populates the arena's pools — steady state is the
    claim under test).  Alloc tracing skews wall time, so these numbers
    live beside, never inside, the timing entries.
    """
    import tracemalloc

    from repro.perf.workspace import WorkspaceArena, arena_scope

    def churn(arena) -> int:
        with arena_scope(arena):
            welch.analyze_windows(times, intervals, batched=True)  # warm
            tracemalloc.start()
            try:
                before = tracemalloc.get_traced_memory()[0]
                tracemalloc.reset_peak()
                welch.analyze_windows(times, intervals, batched=True)
                peak = tracemalloc.get_traced_memory()[1]
            finally:
                tracemalloc.stop()
        return max(0, peak - before)

    with_arena = churn(WorkspaceArena())
    without = churn(None)
    return {
        "arena_alloc_bytes_per_window": with_arena / n_windows,
        "no_arena_alloc_bytes_per_window": without / n_windows,
        "alloc_reduction_factor": (
            without / with_arena if with_arena else None
        ),
    }


def run_throughput_benchmark(
    duration_hours: float = 24.0,
    repeats: int = 3,
    seed: int = 2014,
) -> dict:
    """Benchmark both PSA systems on a synthetic Holter recording.

    Returns the result document (also see :func:`main`, which writes it
    to ``BENCH_throughput.json``).
    """
    from repro.fleet.tuning import measure_chunk_windows
    from repro.lomb import fast

    config = PSAConfig()
    rr = generate_tachogram(
        TachogramSpec(seed=seed), duration_hours * 3600.0
    )
    systems = {
        "conventional_split_radix": ConventionalPSA(config),
        "quality_scalable_wavelet_mode3": QualityScalablePSA(
            config, pruning=PruningSpec.paper_mode(3)
        ),
    }
    # Benchmark at the host's *measured* operating point: the cheap
    # cache-model fallback mistrusts virtualised sysfs readings, and a
    # mis-sized chunk costs the fast providers ~25 % — every system and
    # provider below runs under this one pinned production chunk.
    chunk_tuning = measure_chunk_windows(workspace_size=config.fft_size)
    previous_chunk = fast.get_chunk_override()
    fast.set_batch_chunk_windows(chunk_tuning.chunk_windows)
    try:
        results: dict[str, dict] = {}
        n_windows = None
        for name, system in systems.items():
            welch = system.welch
            # Warm caches and touch both paths once before timing.
            reference = welch.analyze_windows(rr.times, rr.intervals, batched=False)
            batched_result = welch.analyze_windows(rr.times, rr.intervals, batched=True)
            n_windows = reference.n_windows
            max_rel_diff = float(
                np.max(
                    np.abs(batched_result.spectrogram - reference.spectrogram)
                    / np.maximum(np.abs(reference.spectrogram), 1e-30)
                )
            )
            seq_seconds = _time_analyze(
                welch, rr.times, rr.intervals, batched=False, repeats=repeats
            )
            batch_seconds = _time_analyze(
                welch, rr.times, rr.intervals, batched=True, repeats=repeats
            )
            results[name] = {
                "sequential_seconds": seq_seconds,
                "batched_seconds": batch_seconds,
                "sequential_windows_per_sec": n_windows / seq_seconds,
                "batched_windows_per_sec": n_windows / batch_seconds,
                "speedup": seq_seconds / batch_seconds,
                "max_rel_diff_spectrogram": max_rel_diff,
                "providers": _sweep_providers(
                    welch, rr.times, rr.intervals, n_windows, repeats
                ),
                "steady_state_alloc": _steady_state_alloc(
                    welch, rr.times, rr.intervals, n_windows
                ),
            }
    finally:
        fast.set_batch_chunk_windows(previous_chunk)
    return {
        "benchmark": "batched vs sequential windowed-PSA throughput",
        "workload": {
            "duration_hours": duration_hours,
            "n_beats": int(rr.times.size),
            "n_windows": int(n_windows),
            "window_seconds": config.window_seconds,
            "overlap": config.overlap,
            "workspace_size": config.fft_size,
            "chunk_windows": chunk_tuning.chunk_windows,
            "chunk_source": chunk_tuning.source,
            "repeats": repeats,
            "seed": seed,
        },
        "systems": results,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--hours", type=float, default=24.0, help="recording length in hours"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repetitions (best-of)"
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help="where to write the JSON document",
    )
    args = parser.parse_args(argv)
    document = run_throughput_benchmark(
        duration_hours=args.hours, repeats=args.repeats
    )
    args.output.write_text(json.dumps(document, indent=2) + "\n")
    print(json.dumps(document, indent=2))
    for name, entry in document["systems"].items():
        print(
            f"{name}: {entry['sequential_windows_per_sec']:.0f} -> "
            f"{entry['batched_windows_per_sec']:.0f} windows/s "
            f"({entry['speedup']:.1f}x)"
        )
        sweep = entry["providers"]
        print(
            f"  best provider: {sweep['best_provider']} "
            f"({sweep['best_speedup_vs_explicit']:.1f}x vs explicit batched)"
        )


if __name__ == "__main__":
    main()
