"""Fleet benchmark: sequential vs batched vs sharded cohort execution.

Measures windows/second of the Welch-Lomb engine over a synthetic
multi-patient Holter cohort, for both PSA systems:

* the **conventional** system (split-radix FFT backend), and
* the **quality-scalable** system (pruned wavelet FFT, paper Mode 3),

each driven three ways:

* ``sequential`` — the original per-window loop (``batched=False``),
* ``batched``    — the single-process batch engine of PR 1,
* ``sharded``    — the fleet engine: the cohort's windows sharded over
  a pool of worker processes with shared-memory recordings
  (:class:`repro.fleet.FleetRunner`).

The sharded spectrograms must be **bit-identical** to the batched ones
(``max_rel_diff_spectrogram == 0.0``) and the per-recording operation
counts equal; both are verified on every run.  Results — including the
host's CPU count, start method and tuned chunk size, which bound what
sharding can deliver — are written to ``BENCH_fleet.json`` at the
repository root.

Run with:  python benchmarks/bench_fleet.py [--patients P] [--hours H]
           [--jobs J] [--repeats R]

The test suite invokes :func:`run_fleet_benchmark` with a tiny cohort
and two workers as a smoke test, so this script cannot rot.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.config import PSAConfig  # noqa: E402
from repro.core.system import ConventionalPSA, QualityScalablePSA  # noqa: E402
from repro.ecg.rr_synthesis import TachogramSpec, generate_tachogram  # noqa: E402
from repro.ffts.pruning import PruningSpec  # noqa: E402
from repro.fleet.runner import FleetRunner  # noqa: E402
from repro.lomb.fast import get_batch_chunk_windows  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_fleet.json"


def _make_cohort(n_patients: int, duration_hours: float, seed: int):
    """Synthetic multi-patient cohort with per-patient parameter spread."""
    rng = np.random.default_rng(seed)
    recordings = []
    for k in range(n_patients):
        spec = TachogramSpec(
            mean_rr=float(rng.uniform(0.7, 1.0)),
            lf_frequency=float(rng.uniform(0.08, 0.12)),
            hf_frequency=float(rng.uniform(0.2, 0.3)),
            seed=seed + k,
        )
        recordings.append(generate_tachogram(spec, duration_hours * 3600.0))
    return recordings


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_system(welch, runner, recordings, repeats: int) -> dict:
    """Verify exactness, then time all three paths for one PSA system.

    The first (untimed) sharded run also forks the runner's persistent
    pool, so the timed runs measure the warm serving pattern.
    """
    batched = [
        welch.analyze(rr.times, rr.intervals, count_ops=True)
        for rr in recordings
    ]
    report = runner.run_report(recordings, count_ops=True)
    n_windows_total = sum(result.n_windows for result in batched)
    max_rel_diff = max(
        float(
            np.max(
                np.abs(sharded.spectrogram - reference.spectrogram)
                / np.maximum(np.abs(reference.spectrogram), 1e-30)
            )
        )
        for sharded, reference in zip(report.results, batched)
    )
    counts_equal = all(
        sharded.counts == reference.counts
        for sharded, reference in zip(report.results, batched)
    )

    seq_seconds = _best_of(
        repeats,
        lambda: [
            welch.analyze_windows(rr.times, rr.intervals, batched=False)
            for rr in recordings
        ],
    )
    batch_seconds = _best_of(
        repeats,
        lambda: [
            welch.analyze_windows(rr.times, rr.intervals, batched=True)
            for rr in recordings
        ],
    )
    shard_seconds = _best_of(repeats, lambda: runner.run(recordings))
    return {
        "sequential_seconds": seq_seconds,
        "batched_seconds": batch_seconds,
        "sharded_seconds": shard_seconds,
        "sequential_windows_per_sec": n_windows_total / seq_seconds,
        "batched_windows_per_sec": n_windows_total / batch_seconds,
        "sharded_windows_per_sec": n_windows_total / shard_seconds,
        "speedup_batched_vs_sequential": seq_seconds / batch_seconds,
        "speedup_sharded_vs_batched": batch_seconds / shard_seconds,
        "speedup_sharded_vs_sequential": seq_seconds / shard_seconds,
        "max_rel_diff_spectrogram": max_rel_diff,
        "op_counts_equal": counts_equal,
        "n_shards": report.n_shards,
        "_n_windows_total": n_windows_total,
        "_start_method": report.start_method or "in-process",
    }


def run_fleet_benchmark(
    n_patients: int = 8,
    duration_hours: float = 12.0,
    jobs: int = 4,
    repeats: int = 3,
    seed: int = 2014,
) -> dict:
    """Benchmark both PSA systems over a synthetic cohort, three ways.

    Returns the result document (also see :func:`main`, which writes it
    to ``BENCH_fleet.json``).
    """
    config = PSAConfig()
    recordings = _make_cohort(n_patients, duration_hours, seed)
    systems = {
        "conventional_split_radix": ConventionalPSA(config),
        "quality_scalable_wavelet_mode3": QualityScalablePSA(
            config, pruning=PruningSpec.paper_mode(3)
        ),
    }
    chunk_windows = get_batch_chunk_windows(config.fft_size)
    results: dict[str, dict] = {}
    n_windows_total = None
    start_method = None
    for name, system in systems.items():
        welch = system.welch
        with FleetRunner(welch=welch, n_jobs=jobs) as runner:
            results[name] = _bench_system(
                welch, runner, recordings, repeats
            )
        n_windows_total = results[name].pop("_n_windows_total")
        start_method = results[name].pop("_start_method")
    return {
        "benchmark": "fleet sharded vs batched vs sequential cohort execution",
        "host": {
            "cpu_count": os.cpu_count(),
            "jobs": jobs,
            "start_method": start_method,
            "chunk_windows": chunk_windows,
        },
        "workload": {
            "n_patients": n_patients,
            "duration_hours": duration_hours,
            "n_beats_total": int(sum(rr.times.size for rr in recordings)),
            "n_windows_total": int(n_windows_total),
            "window_seconds": config.window_seconds,
            "overlap": config.overlap,
            "workspace_size": config.fft_size,
            "repeats": repeats,
            "seed": seed,
        },
        "systems": results,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--patients", type=int, default=8, help="cohort size (recordings)"
    )
    parser.add_argument(
        "--hours", type=float, default=12.0, help="recording length in hours"
    )
    parser.add_argument(
        "--jobs", type=int, default=4, help="worker processes for sharding"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repetitions (best-of)"
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help="where to write the JSON document",
    )
    args = parser.parse_args(argv)
    document = run_fleet_benchmark(
        n_patients=args.patients,
        duration_hours=args.hours,
        jobs=args.jobs,
        repeats=args.repeats,
    )
    args.output.write_text(json.dumps(document, indent=2) + "\n")
    print(json.dumps(document, indent=2))
    for name, entry in document["systems"].items():
        print(
            f"{name}: seq {entry['sequential_windows_per_sec']:.0f} | "
            f"batched {entry['batched_windows_per_sec']:.0f} | "
            f"sharded {entry['sharded_windows_per_sec']:.0f} windows/s "
            f"(sharded vs batched "
            f"{entry['speedup_sharded_vs_batched']:.2f}x on "
            f"{document['host']['cpu_count']} CPUs)"
        )


if __name__ == "__main__":
    main()
