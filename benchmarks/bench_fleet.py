"""Fleet benchmark: sequential vs batched vs sharded cohort execution.

Measures windows/second of the Welch-Lomb engine over a synthetic
multi-patient Holter cohort, for both PSA systems:

* the **conventional** system (split-radix FFT backend), and
* the **quality-scalable** system (pruned wavelet FFT, paper Mode 3),

each driven three ways:

* ``sequential`` — the original per-window loop (``batched=False``),
* ``batched``    — the single-process batch engine of PR 1,
* ``sharded``    — the fleet engine: the cohort's windows sharded over
  a pool of worker processes with shared-memory recordings
  (:class:`repro.fleet.FleetRunner`).

A fourth, ``distributed`` leg routes the same cohort over localhost
worker daemons (``python -m repro worker``) through the socket
transport, verifying bit-identity against the batched reference and
quantifying serialization/framing overhead per window.

The sharded spectrograms must be **bit-identical** to the batched ones
(``max_rel_diff_spectrogram == 0.0``) and the per-recording operation
counts equal; both are verified on every run.  Results — including the
host's CPU count, start method and tuned chunk size, which bound what
sharding can deliver — are written to ``BENCH_fleet.json`` at the
repository root.

Run with:  python benchmarks/bench_fleet.py [--patients P] [--hours H]
           [--jobs J] [--repeats R]

The test suite invokes :func:`run_fleet_benchmark` with a tiny cohort
and two workers as a smoke test, so this script cannot rot.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import re
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.config import PSAConfig  # noqa: E402
from repro.core.system import ConventionalPSA, QualityScalablePSA  # noqa: E402
from repro.ecg.rr_synthesis import TachogramSpec, generate_tachogram  # noqa: E402
from repro.engine.config import EngineConfig  # noqa: E402
from repro.ffts.pruning import PruningSpec  # noqa: E402
from repro.fleet.runner import FleetRunner  # noqa: E402
from repro.lomb.fast import get_batch_chunk_windows  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_fleet.json"


def _make_cohort(n_patients: int, duration_hours: float, seed: int):
    """Synthetic multi-patient cohort with per-patient parameter spread."""
    rng = np.random.default_rng(seed)
    recordings = []
    for k in range(n_patients):
        spec = TachogramSpec(
            mean_rr=float(rng.uniform(0.7, 1.0)),
            lf_frequency=float(rng.uniform(0.08, 0.12)),
            hf_frequency=float(rng.uniform(0.2, 0.3)),
            seed=seed + k,
        )
        recordings.append(generate_tachogram(spec, duration_hours * 3600.0))
    return recordings


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _spawn_daemons(n: int) -> list[tuple[subprocess.Popen, str]]:
    """Start ``n`` localhost worker daemons on ephemeral ports."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p
    )
    daemons = []
    try:
        for _ in range(n):
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--listen", "127.0.0.1:0"],
                stdout=subprocess.PIPE,
                text=True,
                env=env,
            )
            banner = proc.stdout.readline()
            match = re.search(r"listening on (\S+)", banner)
            if match is None:
                proc.kill()
                raise RuntimeError(
                    f"worker daemon printed no address banner: {banner!r}"
                )
            daemons.append((proc, match.group(1)))
    except BaseException:
        _stop_daemons(daemons)
        raise
    return daemons


def _stop_daemons(daemons) -> None:
    for proc, _address in daemons:
        proc.terminate()
    for proc, _address in daemons:
        try:
            proc.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
        proc.stdout.close()


def _bench_distributed(
    engine_config, welch, addresses, recordings, batched, repeats: int
) -> dict:
    """Time the cohort over localhost worker daemons for one system.

    Verifies bit-identity against the in-process ``batched`` reference
    and quantifies wire overhead (serialization + framing) per window
    from the transport byte counters.
    """
    n_windows_total = sum(result.n_windows for result in batched)
    config = engine_config.replace(workers=tuple(addresses))
    with FleetRunner.from_config(config, welch=welch) as runner:
        report = runner.run_report(recordings, count_ops=True)
        max_rel_diff = max(
            float(
                np.max(
                    np.abs(remote.spectrogram - reference.spectrogram)
                    / np.maximum(np.abs(reference.spectrogram), 1e-30)
                )
            )
            for remote, reference in zip(report.results, batched)
        )
        counts_equal = all(
            remote.counts == reference.counts
            for remote, reference in zip(report.results, batched)
        )
        stats_before = runner.transport_stats()
        dist_seconds = _best_of(repeats, lambda: runner.run(recordings))
        stats_after = runner.transport_stats()
    sent = sum(s["bytes_sent"] for s in stats_after.values()) - sum(
        s["bytes_sent"] for s in stats_before.values()
    )
    received = sum(s["bytes_received"] for s in stats_after.values()) - sum(
        s["bytes_received"] for s in stats_before.values()
    )
    windows_moved = repeats * n_windows_total
    return {
        "distributed_seconds": dist_seconds,
        "distributed_windows_per_sec": n_windows_total / dist_seconds,
        "max_rel_diff_spectrogram": max_rel_diff,
        "op_counts_equal": counts_equal,
        "n_shards": report.n_shards,
        "n_remote_workers": report.n_remote_workers,
        "wire_bytes_sent_per_window": sent / windows_moved,
        "wire_bytes_received_per_window": received / windows_moved,
        "wire_bytes_per_window": (sent + received) / windows_moved,
    }


def _bench_system(welch, runner, recordings, repeats: int) -> dict:
    """Verify exactness, then time all three paths for one PSA system.

    The first (untimed) sharded run also forks the runner's persistent
    pool, so the timed runs measure the warm serving pattern.
    """
    batched = [
        welch.analyze(rr.times, rr.intervals, count_ops=True)
        for rr in recordings
    ]
    report = runner.run_report(recordings, count_ops=True)
    n_windows_total = sum(result.n_windows for result in batched)
    max_rel_diff = max(
        float(
            np.max(
                np.abs(sharded.spectrogram - reference.spectrogram)
                / np.maximum(np.abs(reference.spectrogram), 1e-30)
            )
        )
        for sharded, reference in zip(report.results, batched)
    )
    counts_equal = all(
        sharded.counts == reference.counts
        for sharded, reference in zip(report.results, batched)
    )

    seq_seconds = _best_of(
        repeats,
        lambda: [
            welch.analyze_windows(rr.times, rr.intervals, batched=False)
            for rr in recordings
        ],
    )
    batch_seconds = _best_of(
        repeats,
        lambda: [
            welch.analyze_windows(rr.times, rr.intervals, batched=True)
            for rr in recordings
        ],
    )
    shard_seconds = _best_of(repeats, lambda: runner.run(recordings))
    return {
        "sequential_seconds": seq_seconds,
        "batched_seconds": batch_seconds,
        "sharded_seconds": shard_seconds,
        "sequential_windows_per_sec": n_windows_total / seq_seconds,
        "batched_windows_per_sec": n_windows_total / batch_seconds,
        "sharded_windows_per_sec": n_windows_total / shard_seconds,
        "speedup_batched_vs_sequential": seq_seconds / batch_seconds,
        "speedup_sharded_vs_batched": batch_seconds / shard_seconds,
        "speedup_sharded_vs_sequential": seq_seconds / shard_seconds,
        "max_rel_diff_spectrogram": max_rel_diff,
        "op_counts_equal": counts_equal,
        "n_shards": report.n_shards,
        "_n_windows_total": n_windows_total,
        "_start_method": report.start_method or "in-process",
        "_batched": batched,
    }


def run_fleet_benchmark(
    n_patients: int = 8,
    duration_hours: float = 12.0,
    jobs: int = 4,
    repeats: int = 3,
    seed: int = 2014,
    workers: int = 2,
) -> dict:
    """Benchmark both PSA systems over a synthetic cohort, three ways.

    With ``workers > 0`` the document also gains a ``distributed``
    section: the same cohort routed over that many localhost worker
    daemons (``python -m repro worker``), exactness verified against
    the batched reference and wire overhead quantified per window.

    Returns the result document (also see :func:`main`, which writes it
    to ``BENCH_fleet.json``).
    """
    config = PSAConfig()
    recordings = _make_cohort(n_patients, duration_hours, seed)
    systems = {
        "conventional_split_radix": ConventionalPSA(config),
        "quality_scalable_wavelet_mode3": QualityScalablePSA(
            config, pruning=PruningSpec.paper_mode(3)
        ),
    }
    engine_configs = {
        "conventional_split_radix": EngineConfig(
            system="conventional", psa=config
        ),
        "quality_scalable_wavelet_mode3": EngineConfig(
            system="quality-scalable",
            pruning=PruningSpec.paper_mode(3),
            psa=config,
        ),
    }
    chunk_windows = get_batch_chunk_windows(config.fft_size)
    results: dict[str, dict] = {}
    distributed: dict[str, dict] = {}
    n_windows_total = None
    start_method = None
    daemons = _spawn_daemons(workers) if workers > 0 else []
    try:
        addresses = [address for _proc, address in daemons]
        for name, system in systems.items():
            welch = system.welch
            with FleetRunner(welch=welch, n_jobs=jobs) as runner:
                results[name] = _bench_system(
                    welch, runner, recordings, repeats
                )
            n_windows_total = results[name].pop("_n_windows_total")
            start_method = results[name].pop("_start_method")
            batched = results[name].pop("_batched")
            if addresses:
                distributed[name] = _bench_distributed(
                    engine_configs[name], welch, addresses, recordings,
                    batched, repeats,
                )
    finally:
        _stop_daemons(daemons)
    document = {
        "benchmark": "fleet sharded vs batched vs sequential cohort execution",
        "host": {
            "cpu_count": os.cpu_count(),
            "jobs": jobs,
            "start_method": start_method,
            "chunk_windows": chunk_windows,
        },
        "workload": {
            "n_patients": n_patients,
            "duration_hours": duration_hours,
            "n_beats_total": int(sum(rr.times.size for rr in recordings)),
            "n_windows_total": int(n_windows_total),
            "window_seconds": config.window_seconds,
            "overlap": config.overlap,
            "workspace_size": config.fft_size,
            "repeats": repeats,
            "seed": seed,
        },
        "systems": results,
    }
    if distributed:
        document["distributed"] = {
            "n_workers": workers,
            "transport": "localhost worker daemons (length-prefixed "
                         "binary frames over TCP)",
            "local_jobs": 1,
            "systems": distributed,
        }
    return document


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--patients", type=int, default=8, help="cohort size (recordings)"
    )
    parser.add_argument(
        "--hours", type=float, default=12.0, help="recording length in hours"
    )
    parser.add_argument(
        "--jobs", type=int, default=4, help="worker processes for sharding"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repetitions (best-of)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="localhost worker daemons for the distributed section "
             "(0 disables it)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help="where to write the JSON document",
    )
    args = parser.parse_args(argv)
    document = run_fleet_benchmark(
        n_patients=args.patients,
        duration_hours=args.hours,
        jobs=args.jobs,
        repeats=args.repeats,
        workers=args.workers,
    )
    args.output.write_text(json.dumps(document, indent=2) + "\n")
    print(json.dumps(document, indent=2))
    for name, entry in document["systems"].items():
        print(
            f"{name}: seq {entry['sequential_windows_per_sec']:.0f} | "
            f"batched {entry['batched_windows_per_sec']:.0f} | "
            f"sharded {entry['sharded_windows_per_sec']:.0f} windows/s "
            f"(sharded vs batched "
            f"{entry['speedup_sharded_vs_batched']:.2f}x on "
            f"{document['host']['cpu_count']} CPUs)"
        )
    for name, entry in document.get("distributed", {}).get(
        "systems", {}
    ).items():
        print(
            f"{name} [distributed]: "
            f"{entry['distributed_windows_per_sec']:.0f} windows/s over "
            f"{entry['n_remote_workers']} daemons, "
            f"{entry['wire_bytes_per_window']:.0f} wire bytes/window, "
            f"max rel diff {entry['max_rel_diff_spectrogram']:.1e}"
        )


if __name__ == "__main__":
    main()
