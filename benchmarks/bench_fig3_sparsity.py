"""Fig. 3: approximate sparsity of extirpolated RR windows in the
wavelet domain.

Paper observation: after DWT, "the HPF outputs were distributed around
zero", licensing the stage-1 band drop.  The bench reproduces the
figure's three panels numerically: the extirpolated window (117 beats ->
~256 cells), and the lowpass/highpass band statistics for the paper's
three bases.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.analysis import format_percent, format_table
from repro.core.calibration import extract_calibration_windows
from repro.wavelets import dwt_level, wavelet_packet


def test_fig3_band_statistics(benchmark, rsa_recordings, config):
    windows = extract_calibration_windows(rsa_recordings, config)

    def band_stats():
        rows = []
        for basis in ("haar", "db2", "db4"):
            lp_energy, hp_energy, lp_mean, hp_mean = 0.0, 0.0, [], []
            for window in windows:
                approx, detail = dwt_level(window, basis)
                lp_energy += float(approx @ approx)
                hp_energy += float(detail @ detail)
                lp_mean.append(np.mean(np.abs(approx)))
                hp_mean.append(np.mean(np.abs(detail)))
            rows.append(
                (basis, lp_energy, hp_energy, np.mean(lp_mean), np.mean(hp_mean))
            )
        return rows

    rows = benchmark(band_stats)

    table_rows = []
    for basis, lp_e, hp_e, lp_m, hp_m in rows:
        table_rows.append(
            [
                basis,
                format_percent(hp_e / (lp_e + hp_e)),
                f"{lp_m:.5f}",
                f"{hp_m:.5f}",
                f"{lp_m / hp_m:.2f}x",
            ]
        )
    emit(
        "fig3_sparsity",
        format_table(
            ["basis", "HP energy frac", "E|z_LP|", "E|z_HP|", "LP/HP mean"],
            table_rows,
            title="Fig 3 — wavelet-domain statistics of extirpolated RR "
            "windows (paper: HP outputs near zero)",
        ),
    )
    for _basis, lp_e, hp_e, lp_m, hp_m in rows:
        assert lp_e > hp_e  # lowpass band dominates
        assert lp_m > hp_m


def test_fig3_window_geometry(benchmark, rsa_recordings, config):
    """Paper Fig. 3(a): data occupy the first ~N/2 workspace cells."""
    windows = benchmark.pedantic(
        extract_calibration_windows,
        args=(rsa_recordings[:2], config),
        rounds=1,
        iterations=1,
    )
    lines = []
    for window in windows[:3]:
        occupied = int(np.max(np.nonzero(np.abs(window) > 1e-12)))
        lines.append(f"window occupies cells 0..{occupied} of {window.size}")
        assert occupied < 300  # ~256 expected
    emit("fig3_geometry", "\n".join(lines))


def test_fig3_packet_tree_throughput(benchmark, rsa_recordings, config):
    window = extract_calibration_windows(rsa_recordings[:1], config)[0]
    table = benchmark(wavelet_packet, window, "haar", 3)
    assert table.highpass_energy_fraction(depth=1) < 0.5
