"""Service-layer benchmark: framed gateway clients vs in-process hub.

Replays the same ward-of-wearables workload two ways and measures what
the network layer costs:

* ``inprocess`` — one :class:`StreamHub` fed directly
  (``Engine.open_hub``), the zero-copy in-process baseline;
* ``gateway``   — a :class:`GatewayServer` on an ephemeral localhost
  port with one framed :class:`ServiceClient` per subject, every beat
  JSON-encoded over TCP, windows pushed back down each connection.

Beats are replayed in round-robin uplink rounds (``burst_seconds`` of
each subject's recording per round).  Both paths are verified
**bit-identical** (full wire-form result: spectrogram, window times,
averaged spectrum, detection and executed op counts) to
whole-recording ``Engine.analyze`` on every run — the service layer's
core promise, measured rather than assumed.

Reported per path: total ingest+analysis wall time, aggregate
windows/sec, per-window emission latency (time inside the feed call
that surfaced the window) mean and p95; the gateway additionally
reports wire traffic (bytes sent/received, bytes per window, frames).
Results land in ``BENCH_service.json`` at the repository root.

Run with:  python benchmarks/bench_service.py [--subjects N]
           [--minutes M] [--burst-seconds S] [--repeats R]

The test suite runs :func:`run_service_benchmark` on a tiny cohort as
a smoke test, so this script cannot rot.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.ecg.rr_synthesis import TachogramSpec, generate_tachogram  # noqa: E402
from repro.engine import Engine, EngineConfig  # noqa: E402
from repro.service import (  # noqa: E402
    GatewayThread,
    ServiceClient,
    ServiceConfig,
    TenantSpec,
)
from repro.service.wire import result_to_dict  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_service.json"


def _make_cohort(n_subjects: int, duration_minutes: float, seed: int):
    """Synthetic monitored cohort with per-subject parameter spread."""
    rng = np.random.default_rng(seed)
    recordings = {}
    for k in range(n_subjects):
        spec = TachogramSpec(
            mean_rr=float(rng.uniform(0.7, 1.0)),
            lf_frequency=float(rng.uniform(0.08, 0.12)),
            hf_frequency=float(rng.uniform(0.2, 0.3)),
            seed=seed + k,
        )
        recordings[f"subject-{k:02d}"] = generate_tachogram(
            spec, duration_minutes * 60.0
        )
    return recordings


def _rounds(recordings, burst_seconds: float):
    """Round-robin uplink rounds of ``(subject, lo, hi)`` beat bursts."""
    cursors = {subject: 0 for subject in recordings}
    edges = {subject: burst_seconds for subject in recordings}
    rounds = []
    while True:
        current = []
        for subject, rr in recordings.items():
            lo = cursors[subject]
            if lo >= rr.times.size:
                continue
            hi = int(np.searchsorted(rr.times, edges[subject], side="left"))
            hi = max(lo + 1, min(hi, rr.times.size))
            current.append((subject, lo, hi))
            cursors[subject] = hi
            edges[subject] += burst_seconds
        if not current:
            return rounds
        rounds.append(current)


def _latency_stats(latencies: list[float]) -> dict:
    if not latencies:
        return {"mean_ms": None, "p95_ms": None}
    arr = np.asarray(latencies)
    return {
        "mean_ms": float(arr.mean() * 1e3),
        "p95_ms": float(np.percentile(arr, 95.0) * 1e3),
    }


def _wire_view(result_frame: dict) -> dict:
    return {
        key: value
        for key, value in result_frame.items()
        if key not in ("op", "subject")
    }


def _run_inprocess(engine, recordings, rounds):
    """Replay through one hub in-process.

    Returns ``(wire_results, total_seconds, live_windows, latencies)``
    with results already in wire form so exactness is checked on the
    identical representation for both paths.
    """
    hub = engine.open_hub(count_ops=True)
    for subject in recordings:
        hub.open(subject)
    latencies: list[float] = []
    total = 0.0
    n_live = 0
    for current in rounds:
        start = time.perf_counter()
        for subject, lo, hi in current:
            rr = recordings[subject]
            hub.feed(subject, rr.times[lo:hi], rr.intervals[lo:hi])
        emitted = hub.flush()
        elapsed = time.perf_counter() - start
        total += elapsed
        count = sum(len(emissions) for emissions in emitted.values())
        if count:
            latencies.extend([elapsed / count] * count)
            n_live += count
    start = time.perf_counter()
    results = {
        subject: result_to_dict(result)
        for subject, result in hub.finalize_all().items()
    }
    total += time.perf_counter() - start
    hub.close()
    return results, total, n_live, latencies


def _run_gateway(config: ServiceConfig, recordings, rounds):
    """Replay through a localhost gateway, one framed client per subject.

    Returns ``(wire_results, total_seconds, live_windows, latencies,
    traffic)``.
    """
    with GatewayThread(config) as gateway:
        clients = {
            subject: ServiceClient(
                gateway.address, tenant="bench", token="bench-token"
            )
            for subject in recordings
        }
        try:
            for subject, client in clients.items():
                client.open(subject)
            latencies: list[float] = []
            total = 0.0
            n_live = 0
            for current in rounds:
                for subject, lo, hi in current:
                    rr = recordings[subject]
                    start = time.perf_counter()
                    pushed = clients[subject].feed(
                        rr.times[lo:hi], rr.intervals[lo:hi]
                    )
                    elapsed = time.perf_counter() - start
                    total += elapsed
                    if pushed:
                        latencies.extend(
                            [elapsed / len(pushed)] * len(pushed)
                        )
                        n_live += len(pushed)
            start = time.perf_counter()
            results = {
                subject: _wire_view(client.finalize())
                for subject, client in clients.items()
            }
            total += time.perf_counter() - start
            traffic = {
                "bytes_sent": sum(c.bytes_sent for c in clients.values()),
                "bytes_received": sum(
                    c.bytes_received for c in clients.values()
                ),
                "live_window_frames": sum(
                    len(c.windows) for c in clients.values()
                ),
            }
        finally:
            for client in clients.values():
                client.close()
    return results, total, n_live, latencies, traffic


def run_service_benchmark(
    n_subjects: int = 8,
    duration_minutes: float = 60.0,
    burst_seconds: float = 60.0,
    repeats: int = 3,
    seed: int = 2014,
) -> dict:
    """Benchmark framed gateway clients against the in-process hub.

    Returns the result document (see :func:`main`, which writes it to
    ``BENCH_service.json``).
    """
    recordings = _make_cohort(n_subjects, duration_minutes, seed)
    rounds = _rounds(recordings, burst_seconds)
    engine_config = EngineConfig()
    service_config = ServiceConfig(
        listen="127.0.0.1:0",
        tenants=(TenantSpec("bench", "bench-token", engine=engine_config),),
        count_ops=True,
    )
    with Engine(engine_config) as engine:
        reference = {
            subject: result_to_dict(engine.analyze(rr, count_ops=True))
            for subject, rr in recordings.items()
        }
        document_paths: dict[str, dict] = {}
        n_windows_total = sum(
            ref["n_windows"] for ref in reference.values()
        )
        best_traffic: dict | None = None
        for name in ("inprocess", "gateway"):
            best_total = float("inf")
            best_latencies: list[float] = []
            n_live = 0
            exact = True
            for _ in range(repeats):
                if name == "inprocess":
                    results, total, n_live, latencies = _run_inprocess(
                        engine, recordings, rounds
                    )
                    traffic = None
                else:
                    results, total, n_live, latencies, traffic = (
                        _run_gateway(service_config, recordings, rounds)
                    )
                exact = exact and all(
                    results[subject] == reference[subject]
                    for subject in recordings
                )
                if total < best_total:
                    best_total = total
                    best_latencies = latencies
                    if traffic is not None:
                        best_traffic = traffic
            document_paths[name] = {
                "total_seconds": best_total,
                "windows_per_sec": n_windows_total / best_total,
                "live_windows": n_live,
                "per_window_latency": _latency_stats(best_latencies),
                "bit_identical": exact,
            }
    gateway_entry = document_paths["gateway"]
    assert best_traffic is not None
    wire_bytes = (
        best_traffic["bytes_sent"] + best_traffic["bytes_received"]
    )
    gateway_entry["wire"] = {
        **best_traffic,
        "bytes_total": wire_bytes,
        "bytes_per_window": (
            wire_bytes / n_windows_total if n_windows_total else None
        ),
    }
    document = {
        "benchmark": (
            "network service layer: framed gateway vs in-process hub"
        ),
        "host": {"cpu_count": os.cpu_count()},
        "workload": {
            "n_subjects": n_subjects,
            "duration_minutes": duration_minutes,
            "burst_seconds": burst_seconds,
            "n_rounds": len(rounds),
            "n_beats_total": int(
                sum(rr.times.size for rr in recordings.values())
            ),
            "n_windows_total": int(n_windows_total),
            "repeats": repeats,
            "seed": seed,
        },
        "paths": document_paths,
        "slowdown_gateway_vs_inprocess": (
            document_paths["gateway"]["total_seconds"]
            / document_paths["inprocess"]["total_seconds"]
        ),
    }
    return document


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--subjects", type=int, default=8, help="cohort size (streams)"
    )
    parser.add_argument(
        "--minutes",
        type=float,
        default=60.0,
        help="recording length per subject",
    )
    parser.add_argument(
        "--burst-seconds",
        type=float,
        default=60.0,
        help="seconds of recording each subject uplinks per round",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repetitions (best-of)"
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help="where to write the JSON document",
    )
    args = parser.parse_args(argv)
    document = run_service_benchmark(
        n_subjects=args.subjects,
        duration_minutes=args.minutes,
        burst_seconds=args.burst_seconds,
        repeats=args.repeats,
    )
    args.output.write_text(json.dumps(document, indent=2) + "\n")
    print(json.dumps(document, indent=2))
    paths = document["paths"]
    wire = paths["gateway"]["wire"]
    print(
        f"\ninprocess {paths['inprocess']['windows_per_sec']:.0f} | "
        f"gateway {paths['gateway']['windows_per_sec']:.0f} windows/s "
        f"(gateway vs inprocess "
        f"{document['slowdown_gateway_vs_inprocess']:.2f}x slower, "
        f"{document['workload']['n_subjects']} subjects, "
        f"{wire['bytes_per_window'] / 1024.0:.1f} KiB wire/window)"
    )
    print(
        "bit-identical: "
        f"inprocess={paths['inprocess']['bit_identical']} "
        f"gateway={paths['gateway']['bit_identical']}"
    )


if __name__ == "__main__":
    main()
