"""Streaming-cohort benchmark: multiplexed hub vs independent sessions.

Simulates a ward of N subjects trickling beats concurrently — the
streaming-cohort serving pattern — and measures two ways of analysing
the exact same event sequence:

* ``independent`` — N plain :class:`StreamingSession`\\ s
  (``Engine.open_stream``), each analysing the windows its own feeds
  complete in its own (tiny) batches;
* ``hub``         — one :class:`StreamHub` (``Engine.open_hub``)
  multiplexing all N sessions, analysing the windows each feed *round*
  completes **across subjects** in one shared dense batch.

Beats are replayed in round-robin uplink rounds (``burst_seconds`` of
each subject's recording per round), so each round completes roughly
one window per subject — the hub turns N single-window calls into one
N-row batch.  Both paths are verified **bit-identical** (spectrogram
and executed op counts) to whole-recording ``Engine.analyze`` for every
subject on every run.

Reported per path: total ingest+analysis wall time, aggregate
windows/sec, and per-window emission latency (time inside the feed or
flush call that produced the window) — mean and p95.  A separate
``steady_state`` section replays the hub with the workspace arena on
vs off and reports per-window allocation churn (tracemalloc) and p95
flush latency for each — the zero-allocation-steady-state claim in
numbers.  A ``shedding`` section (``--slo``) replays the hub under a
deterministic synthetic overload with the SLO controller off vs on and
reports the steady-state p95, the fraction of windows analysed at
degraded quality, and the controller's step counts — the SLO-defense
claim in numbers.  Results land in ``BENCH_streaming.json`` at the
repository root.

Run with:  python benchmarks/bench_streaming.py [--subjects N]
           [--minutes M] [--burst-seconds S] [--jobs J] [--repeats R]

The test suite runs :func:`run_streaming_benchmark` on a tiny cohort as
a smoke test, so this script cannot rot.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.ecg.rr_synthesis import TachogramSpec, generate_tachogram  # noqa: E402
from repro.engine import Engine, EngineConfig  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_streaming.json"


def _make_cohort(n_subjects: int, duration_minutes: float, seed: int):
    """Synthetic monitored cohort with per-subject parameter spread."""
    rng = np.random.default_rng(seed)
    recordings = {}
    for k in range(n_subjects):
        spec = TachogramSpec(
            mean_rr=float(rng.uniform(0.7, 1.0)),
            lf_frequency=float(rng.uniform(0.08, 0.12)),
            hf_frequency=float(rng.uniform(0.2, 0.3)),
            seed=seed + k,
        )
        recordings[f"subject-{k:02d}"] = generate_tachogram(
            spec, duration_minutes * 60.0
        )
    return recordings


def _rounds(recordings, burst_seconds: float):
    """Round-robin uplink rounds: one burst per subject per round.

    Returns a list of rounds; each round is a list of
    ``(subject, lo, hi)`` beat-index bursts covering ``burst_seconds``
    of that subject's recording — the arrival pattern of a ward of
    wearables uplinking on a shared cadence.
    """
    cursors = {subject: 0 for subject in recordings}
    edges = {subject: burst_seconds for subject in recordings}
    rounds = []
    while True:
        current = []
        for subject, rr in recordings.items():
            lo = cursors[subject]
            if lo >= rr.times.size:
                continue
            hi = int(
                np.searchsorted(rr.times, edges[subject], side="left")
            )
            hi = max(lo + 1, min(hi, rr.times.size))
            current.append((subject, lo, hi))
            cursors[subject] = hi
            edges[subject] += burst_seconds
        if not current:
            return rounds
        rounds.append(current)


def _latency_stats(latencies: list[float]) -> dict:
    if not latencies:
        return {"mean_ms": None, "p95_ms": None}
    arr = np.asarray(latencies)
    return {
        "mean_ms": float(arr.mean() * 1e3),
        "p95_ms": float(np.percentile(arr, 95.0) * 1e3),
    }


def _run_independent(engine, recordings, rounds, count_ops=False):
    """Replay through N plain sessions.

    Returns ``(results, total_seconds, live_windows, latencies)``.
    """
    sessions = {
        subject: engine.open_stream(count_ops=count_ops)
        for subject in recordings
    }
    latencies: list[float] = []
    total = 0.0
    n_live = 0
    for current in rounds:
        for subject, lo, hi in current:
            rr = recordings[subject]
            start = time.perf_counter()
            emitted = sessions[subject].feed(
                rr.times[lo:hi], rr.intervals[lo:hi]
            )
            elapsed = time.perf_counter() - start
            total += elapsed
            if emitted:
                latencies.extend([elapsed / len(emitted)] * len(emitted))
                n_live += len(emitted)
    start = time.perf_counter()
    results = {
        subject: session.finalize()
        for subject, session in sessions.items()
    }
    total += time.perf_counter() - start
    return results, total, n_live, latencies


def _run_hub(engine, recordings, rounds, count_ops=False):
    """Replay through one multiplexed hub.

    Returns ``(results, total_seconds, live_windows, latencies)``.
    """
    hub = engine.open_hub(count_ops=count_ops)
    for subject in recordings:
        hub.open(subject)
    latencies: list[float] = []
    total = 0.0
    n_live = 0
    for current in rounds:
        start = time.perf_counter()
        for subject, lo, hi in current:
            rr = recordings[subject]
            hub.feed(subject, rr.times[lo:hi], rr.intervals[lo:hi])
        emitted = hub.flush()
        elapsed = time.perf_counter() - start
        total += elapsed
        count = sum(len(emissions) for emissions in emitted.values())
        if count:
            latencies.extend([elapsed / count] * count)
            n_live += count
    start = time.perf_counter()
    results = hub.finalize_all()
    total += time.perf_counter() - start
    return results, total, n_live, latencies


#: Hub-replay rounds skipped before steady-state metrics start: the
#: first flushes populate the arena pools (and the allocator's own
#: free lists), which is exactly the transient the arena exists to
#: amortise away.
STEADY_STATE_WARMUP_ROUNDS = 3


def _replay_hub_once(engine, recordings, rounds, trace_alloc: bool):
    """One hub replay; per-round flush latencies (and allocation churn).

    With ``trace_alloc`` the per-round peak-over-baseline tracemalloc
    delta is recorded around each flush (timing numbers from a traced
    replay are *not* comparable to untraced ones — callers run separate
    passes for latency and allocations).
    """
    import tracemalloc

    hub = engine.open_hub()
    for subject in recordings:
        hub.open(subject)
    flush_seconds: list[float] = []
    churn_bytes: list[int] = []
    round_windows: list[int] = []
    if trace_alloc:
        tracemalloc.start()
    try:
        for current in rounds:
            for subject, lo, hi in current:
                rr = recordings[subject]
                hub.feed(subject, rr.times[lo:hi], rr.intervals[lo:hi])
            if trace_alloc:
                before = tracemalloc.get_traced_memory()[0]
                tracemalloc.reset_peak()
            start = time.perf_counter()
            emitted = hub.flush()
            flush_seconds.append(time.perf_counter() - start)
            if trace_alloc:
                peak = tracemalloc.get_traced_memory()[1]
                churn_bytes.append(max(0, peak - before))
            round_windows.append(
                sum(len(emissions) for emissions in emitted.values())
            )
        hub.finalize_all()
    finally:
        if trace_alloc:
            tracemalloc.stop()
        hub.close()
    return flush_seconds, churn_bytes, round_windows


def _measure_steady_state(config, recordings, rounds) -> dict:
    """Steady-state per-window allocation churn and flush latency.

    Two separate replays through one engine: an untraced pass for flush
    latency, a tracemalloc pass for allocation churn — tracing skews
    timing, so the two must never share a pass.  The first
    :data:`STEADY_STATE_WARMUP_ROUNDS` rounds are excluded from both.
    """
    with Engine(config) as engine:
        flush_seconds, _, _ = _replay_hub_once(
            engine, recordings, rounds, trace_alloc=False
        )
        _, churn_bytes, round_windows = _replay_hub_once(
            engine, recordings, rounds, trace_alloc=True
        )
    skip = min(STEADY_STATE_WARMUP_ROUNDS, max(0, len(rounds) - 1))
    steady_windows = sum(round_windows[skip:])
    steady_churn = sum(churn_bytes[skip:])
    steady_latencies = _latency_stats(flush_seconds[skip:])
    return {
        "alloc_bytes_per_window": (
            steady_churn / steady_windows if steady_windows else None
        ),
        "alloc_bytes_total": int(steady_churn),
        "windows": int(steady_windows),
        "flush_latency_mean_ms": steady_latencies["mean_ms"],
        "flush_latency_p95_ms": steady_latencies["p95_ms"],
    }


#: Synthetic overload for the shedding leg: every flush "costs"
#: ``SHED_COST_MS`` per full-quality window times ``SHED_LOAD`` (a
#: saturated node), discounted ``SHED_DISCOUNT``-fold per degradation
#: level.  Injected through :class:`repro.testing.FlushLatencyFault`
#: under a :class:`FaultClock`, so both legs observe *exactly* the cost
#: model and nothing else — the comparison is deterministic.
SHED_COST_MS = 2.0
SHED_DISCOUNT = 0.4
SHED_LOAD = 6.0


def _replay_hub_overloaded(config, recordings, rounds):
    """One hub replay under the synthetic overload; per-flush stats.

    Returns ``(flush_cost_seconds, level_histograms)`` — the observed
    (injected) cost of every flush and each flush's
    ``{level: windows}`` histogram.
    """
    from repro.testing import FaultClock, FlushLatencyFault

    with Engine(config) as engine:
        hub = engine.open_hub()
        for subject in recordings:
            hub.open(subject)
        clock = FaultClock().install(hub)
        fault = FlushLatencyFault(
            per_window_ms=SHED_COST_MS,
            discount=SHED_DISCOUNT,
            load=(SHED_LOAD,),
        ).install(hub)
        histograms = []
        try:
            for current in rounds:
                for subject, lo, hi in current:
                    rr = recordings[subject]
                    hub.feed(subject, rr.times[lo:hi], rr.intervals[lo:hi])
                hub.flush()
                histograms.append(dict(hub.last_flush_levels))
            stats = hub.controller_stats() if config.slo else None
        finally:
            clock.uninstall()
            hub.close()
    return list(fault.history), histograms, stats


def _shed_leg_stats(costs, histograms) -> dict:
    """Summarise one shedding leg; steady-state = second half of flushes."""
    windows = sum(sum(h.values()) for h in histograms)
    shed = sum(
        count
        for h in histograms
        for level, count in h.items()
        if level > 0
    )
    steady = costs[len(costs) // 2 :]
    return {
        "flushes": len(costs),
        "windows": int(windows),
        "shed_windows": int(shed),
        "shed_percent": 100.0 * shed / windows if windows else None,
        "max_backlog_windows": (
            max(sum(h.values()) for h in histograms) if histograms else 0
        ),
        "p95_ms": _latency_stats(costs)["p95_ms"],
        "steady_p95_ms": _latency_stats(steady)["p95_ms"],
    }


def _measure_shedding(jobs, recordings, rounds, target_ms: float) -> dict:
    """The SLO-defense experiment: controller off vs on, same overload.

    Both legs replay the identical round sequence under the same
    deterministic saturated-node cost model; the only difference is the
    :class:`SLOSpec` armed on the second leg.  A defended SLO shows up
    as the ``controller_on`` steady-state p95 falling back toward (or
    under) the target while ``controller_off`` stays pinned at the full
    overload cost.
    """
    from repro.engine import SLOSpec

    slo = SLOSpec(
        target_p95_ms=target_ms,
        window=4,
        step_down_after=2,
        recover_after=4,
    )
    off_costs, off_hists, _ = _replay_hub_overloaded(
        EngineConfig(system="quality-scalable", jobs=jobs),
        recordings,
        rounds,
    )
    on_costs, on_hists, stats = _replay_hub_overloaded(
        EngineConfig(system="quality-scalable", jobs=jobs, slo=slo),
        recordings,
        rounds,
    )
    off = _shed_leg_stats(off_costs, off_hists)
    on = _shed_leg_stats(on_costs, on_hists)
    on.update(
        steps_down=stats["steps_down"],
        steps_up=stats["steps_up"],
        windows_by_level={
            str(level): count
            for level, count in stats["windows_by_level"].items()
        },
    )
    off_p95 = off["steady_p95_ms"]
    on_p95 = on["steady_p95_ms"]
    return {
        "slo": slo.to_dict(),
        "overload": {
            "cost_ms_per_full_window": SHED_COST_MS,
            "level_discount": SHED_DISCOUNT,
            "load_factor": SHED_LOAD,
        },
        "controller_off": off,
        "controller_on": on,
        "steady_p95_reduction_factor": (
            off_p95 / on_p95 if off_p95 and on_p95 else None
        ),
    }


def run_streaming_benchmark(
    n_subjects: int = 8,
    duration_minutes: float = 60.0,
    burst_seconds: float = 60.0,
    jobs: int = 1,
    repeats: int = 3,
    seed: int = 2014,
    slo_target_ms: float | None = None,
) -> dict:
    """Benchmark hub-multiplexed vs independent streaming sessions.

    Returns the result document (see :func:`main`, which writes it to
    ``BENCH_streaming.json``).
    """
    recordings = _make_cohort(n_subjects, duration_minutes, seed)
    rounds = _rounds(recordings, burst_seconds)
    config = EngineConfig(jobs=jobs)
    document_paths: dict[str, dict] = {}
    with Engine(config) as engine:
        # Exactness first: both replay paths must finalize bit-identical
        # to whole-recording analysis, op counts included.
        reference = {
            subject: engine.analyze(rr, count_ops=True)
            for subject, rr in recordings.items()
        }
        exact = {}
        for name, runner in (
            ("independent", _run_independent),
            ("hub", _run_hub),
        ):
            checked, _, _, _ = runner(
                engine, recordings, rounds, count_ops=True
            )
            max_rel_diff = 0.0
            counts_equal = True
            for subject, result in checked.items():
                ref = reference[subject]
                diff = float(
                    np.max(
                        np.abs(
                            result.welch.spectrogram
                            - ref.welch.spectrogram
                        )
                        / np.maximum(
                            np.abs(ref.welch.spectrogram), 1e-30
                        )
                    )
                )
                max_rel_diff = max(max_rel_diff, diff)
                counts_equal = counts_equal and (
                    result.counts == ref.counts
                )
            exact[name] = {
                "max_rel_diff_spectrogram": max_rel_diff,
                "op_counts_equal": counts_equal,
            }

        n_windows_total = sum(
            ref.welch.n_windows for ref in reference.values()
        )
        for name, runner in (
            ("independent", _run_independent),
            ("hub", _run_hub),
        ):
            best_total = float("inf")
            best_latencies: list[float] = []
            n_live = 0
            for _ in range(repeats):
                _, total, n_live, latencies = runner(
                    engine, recordings, rounds
                )
                if total < best_total:
                    best_total = total
                    best_latencies = latencies
            document_paths[name] = {
                "total_seconds": best_total,
                "windows_per_sec": n_windows_total / best_total,
                "live_windows": n_live,
                "per_window_latency": _latency_stats(best_latencies),
                **exact[name],
            }
    document_paths["speedup_hub_vs_independent"] = (
        document_paths["independent"]["total_seconds"]
        / document_paths["hub"]["total_seconds"]
    )
    steady_arena = _measure_steady_state(
        EngineConfig(jobs=jobs, arena=True), recordings, rounds
    )
    steady_plain = _measure_steady_state(
        EngineConfig(jobs=jobs, arena=False), recordings, rounds
    )
    per_window_on = steady_arena["alloc_bytes_per_window"]
    per_window_off = steady_plain["alloc_bytes_per_window"]
    steady_state = {
        "warmup_rounds_skipped": STEADY_STATE_WARMUP_ROUNDS,
        "arena": steady_arena,
        "no_arena": steady_plain,
        "alloc_reduction_factor": (
            per_window_off / per_window_on
            if per_window_on and per_window_off
            else None
        ),
    }
    shedding = (
        _measure_shedding(jobs, recordings, rounds, slo_target_ms)
        if slo_target_ms is not None
        else None
    )
    document = {
        "benchmark": (
            "streaming cohort: multiplexed hub vs independent sessions"
        ),
        "host": {"cpu_count": os.cpu_count(), "jobs": jobs},
        "workload": {
            "n_subjects": n_subjects,
            "duration_minutes": duration_minutes,
            "burst_seconds": burst_seconds,
            "n_rounds": len(rounds),
            "n_beats_total": int(
                sum(rr.times.size for rr in recordings.values())
            ),
            "n_windows_total": int(n_windows_total),
            "repeats": repeats,
            "seed": seed,
        },
        "paths": document_paths,
        "steady_state": steady_state,
    }
    if shedding is not None:
        document["shedding"] = shedding
    return document


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--subjects", type=int, default=8, help="cohort size (streams)"
    )
    parser.add_argument(
        "--minutes",
        type=float,
        default=60.0,
        help="recording length per subject",
    )
    parser.add_argument(
        "--burst-seconds",
        type=float,
        default=60.0,
        help="seconds of recording each subject uplinks per round",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the hub's shared batches",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repetitions (best-of)"
    )
    parser.add_argument(
        "--slo",
        type=float,
        default=30.0,
        metavar="TARGET_MS",
        help="target p95 for the SLO-defense shedding leg "
        "(controller on vs off under a deterministic synthetic "
        "overload; 0 skips the leg)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help="where to write the JSON document",
    )
    args = parser.parse_args(argv)
    document = run_streaming_benchmark(
        n_subjects=args.subjects,
        duration_minutes=args.minutes,
        burst_seconds=args.burst_seconds,
        jobs=args.jobs,
        repeats=args.repeats,
        slo_target_ms=args.slo if args.slo > 0 else None,
    )
    args.output.write_text(json.dumps(document, indent=2) + "\n")
    print(json.dumps(document, indent=2))
    paths = document["paths"]
    print(
        f"\nindependent {paths['independent']['windows_per_sec']:.0f} | "
        f"hub {paths['hub']['windows_per_sec']:.0f} windows/s "
        f"(hub vs independent "
        f"{paths['speedup_hub_vs_independent']:.2f}x, "
        f"{document['workload']['n_subjects']} subjects)"
    )
    steady = document["steady_state"]
    factor = steady["alloc_reduction_factor"]
    if factor:
        print(
            f"steady-state alloc/window: "
            f"{steady['arena']['alloc_bytes_per_window']:.0f} B with arena "
            f"vs {steady['no_arena']['alloc_bytes_per_window']:.0f} B "
            f"without ({factor:.1f}x fewer); flush p95 "
            f"{steady['arena']['flush_latency_p95_ms']:.2f} ms vs "
            f"{steady['no_arena']['flush_latency_p95_ms']:.2f} ms"
        )
    shedding = document.get("shedding")
    if shedding:
        on = shedding["controller_on"]
        off = shedding["controller_off"]
        print(
            f"SLO defense (target "
            f"{shedding['slo']['target_p95_ms']:.0f} ms): steady p95 "
            f"{on['steady_p95_ms']:.1f} ms with controller vs "
            f"{off['steady_p95_ms']:.1f} ms without "
            f"({shedding['steady_p95_reduction_factor']:.1f}x lower, "
            f"{on['shed_percent']:.0f}% of windows degraded, "
            f"{on['steps_down']} step-downs)"
        )


if __name__ == "__main__":
    main()
