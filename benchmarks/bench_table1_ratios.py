"""Table I: average LFP/HFP ratio under static and dynamic pruning.

Paper values (averaged over cardiac samples):

    static : 0.45 | 0.465 | 0.465 | 0.483 | 0.492
    dynamic: 0.45 | 0.465 | 0.467 | 0.470 | 0.471

plus the Section VI.A cohort claim: ~4.9 % average ratio error over 16
patients with the arrhythmia detected in every case.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro import (
    ConventionalPSA,
    PruningSpec,
    QualityScalablePSA,
    SinusArrhythmiaDetector,
    calibrate,
)
from repro.analysis import format_percent, format_table


def _mode_grid(calibration):
    static = [
        ("1st stage band drop", PruningSpec.band_only()),
        ("band + Set1", PruningSpec.paper_mode(1)),
        ("band + Set2", PruningSpec.paper_mode(2)),
        ("band + Set3", PruningSpec.paper_mode(3)),
    ]
    dynamic = [
        ("1st stage band drop", PruningSpec.band_only()),
        ("band + Set1", calibration.pruning_spec(1, dynamic=True)),
        ("band + Set2", calibration.pruning_spec(2, dynamic=True)),
        ("band + Set3", calibration.pruning_spec(3, dynamic=True)),
    ]
    return static, dynamic


def test_table1_ratio_grid(benchmark, rsa_recordings, calibration_corpus):
    calibration = calibrate(calibration_corpus)
    recordings = rsa_recordings
    conventional = ConventionalPSA()
    references = [conventional.analyze(rr).lf_hf for rr in recordings]
    original = float(np.mean(references))

    static, dynamic = _mode_grid(calibration)

    def run_grid():
        grid = {}
        for flavour, modes in (("static", static), ("dynamic", dynamic)):
            values = []
            for _label, spec in modes:
                system = QualityScalablePSA(pruning=spec)
                ratios = [system.analyze(rr).lf_hf for rr in recordings]
                values.append(float(np.mean(ratios)))
            grid[flavour] = values
        return grid

    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    headers = ["pruning", "orig. FFT", "band drop", "Set1", "Set2", "Set3"]
    rows = [
        ["static", f"{original:.3f}"] + [f"{v:.3f}" for v in grid["static"]],
        ["dynamic", f"{original:.3f}"] + [f"{v:.3f}" for v in grid["dynamic"]],
    ]
    emit(
        "table1_ratios",
        format_table(
            headers,
            rows,
            title="Table I — average LFP/HFP ratio "
            "(paper static: 0.45/0.465/0.465/0.483/0.492; "
            "dynamic: 0.45/0.465/0.467/0.47/0.471)",
        ),
    )

    # Shape: every approximated ratio stays well below 1 (detection intact)
    # and within ~15 % of the conventional value.
    for flavour in ("static", "dynamic"):
        for value in grid[flavour]:
            assert value < 1.0
            assert abs(value - original) / original < 0.15


def test_table1_cohort_error_and_detection(benchmark, rsa_recordings, cohort):
    """Section VI.A: ~4.9 % average ratio error over 16 patients; the
    sinus-arrhythmia condition identified in all cases."""
    conventional = ConventionalPSA()
    proposed = QualityScalablePSA(pruning=PruningSpec.paper_mode(3))
    detector = SinusArrhythmiaDetector()

    def evaluate_cohort():
        errors, decisions = [], []
        for rr in rsa_recordings:
            reference = conventional.analyze(rr)
            approximate = proposed.analyze(rr)
            errors.append(
                abs(approximate.lf_hf - reference.lf_hf) / reference.lf_hf
            )
            decisions.append(
                detector.agreement(reference.detection, approximate.detection)
                and approximate.detection.is_arrhythmia
            )
        return errors, decisions

    errors, decisions = benchmark.pedantic(
        evaluate_cohort, rounds=1, iterations=1
    )
    healthy = [
        p.rr_series(duration=600.0)
        for p in cohort
        if not p.patient_id.startswith("rsa")
    ]
    healthy_ok = [
        not proposed.analyze(rr).detection.is_arrhythmia for rr in healthy
    ]

    mean_error = float(np.mean(errors))
    emit(
        "table1_cohort",
        "\n".join(
            [
                "Section VI.A — cohort evaluation (paper: 4.9% average error, "
                "detection preserved in all samples)",
                f"patients evaluated      : {len(errors)} RSA + {len(healthy)} healthy",
                f"mean LF/HF ratio error  : {format_percent(mean_error)}",
                f"max LF/HF ratio error   : {format_percent(float(np.max(errors)))}",
                f"RSA detected correctly  : {sum(decisions)}/{len(decisions)}",
                f"healthy screened clean  : {sum(healthy_ok)}/{len(healthy_ok)}",
            ]
        ),
    )
    assert mean_error < 0.10  # paper: 4.9 %
    assert all(decisions)
    assert all(healthy_ok)
