"""End-to-end ingestion benchmark: raw ECG in, quality-flagged spectra out.

Measures the full sensor path the ingestion layer (:mod:`repro.ingest`)
adds — ECG samples through streaming QRS detection, incremental
artifact preprocessing and the streaming hub, against the one-shot
batch path (:func:`~repro.ingest.ecg_record_to_rr` +
:meth:`Engine.analyze`) — under **both** PSA systems:

* ``conventional``     — the exact Welch-Lomb reference pipeline;
* ``quality_scalable`` — the paper's pruned system (mode ``set3``).

For each system the two paths process the *identical* rendered ECG
records, and the streamed result is verified **bit-identical** to the
batch result on every run — spectrogram, operation counts, per-window
time-domain metrics and quality flags — so the throughput numbers can
never drift away from the exactness contract they advertise.

Reported per system and path: wall time, ECG samples/sec, beats/sec,
windows/sec, plus the streaming:batch throughput ratio (the cost of
incrementality).  Results land in ``BENCH_ingest.json`` at the
repository root.

Run with:  python benchmarks/bench_ingest.py [--subjects N]
           [--minutes M] [--frame SAMPLES] [--repeats R]

The test suite runs :func:`run_ingest_benchmark` on a tiny workload as
a smoke test, so this script cannot rot.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.ecg import make_cohort, synthesize_ecg  # noqa: E402
from repro.engine import Engine, EngineConfig  # noqa: E402
from repro.ingest import ECGSource, ecg_frames, ecg_record_to_rr  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_ingest.json"
SAMPLING_RATE = 250.0

SYSTEMS = {
    "conventional": "exact",
    "quality_scalable": "set3",
}


def _make_records(n_subjects: int, duration_minutes: float):
    """Rendered ECG traces for the first *n_subjects* cohort patients."""
    records = {}
    for index, patient in enumerate(list(make_cohort())[:n_subjects]):
        rr = patient.rr_series(duration=duration_minutes * 60.0)
        t, ecg = synthesize_ecg(
            rr.times, sampling_rate=SAMPLING_RATE, seed=index
        )
        records[patient.patient_id] = (t, ecg)
    return records


def _results_identical(streamed, reference) -> bool:
    return (
        np.array_equal(streamed.welch.spectrogram, reference.welch.spectrogram)
        and np.array_equal(
            streamed.welch.window_times, reference.welch.window_times
        )
        and streamed.counts == reference.counts
        and streamed.window_metrics == reference.window_metrics
    )


def _run_batch(engine, records):
    """Whole-record path: detect + clean + analyze in one shot each."""
    started = time.perf_counter()
    results = {}
    for subject, (t, ecg) in records.items():
        rr = ecg_record_to_rr(t, ecg, sampling_rate=SAMPLING_RATE)
        results[subject] = (rr, engine.analyze(rr, count_ops=True))
    return time.perf_counter() - started, results


def _run_streaming(engine, records, frame_samples: int):
    """Frame-by-frame path: ECGSource events through the streaming hub."""
    started = time.perf_counter()
    hub = engine.open_hub(count_ops=True)
    for subject, (t, ecg) in records.items():
        source = ECGSource(
            subject,
            ecg_frames(t, ecg, frame_samples=frame_samples),
            sampling_rate=SAMPLING_RATE,
        )
        for event_subject, times, values, corrected in source:
            hub.feed(event_subject, times, values, corrected)
    results = hub.finalize_all()
    return time.perf_counter() - started, results


def run_ingest_benchmark(
    n_subjects: int = 4,
    duration_minutes: float = 10.0,
    frame_samples: int = 512,
    repeats: int = 3,
) -> dict:
    """The benchmark document (see module docstring)."""
    records = _make_records(n_subjects, duration_minutes)
    n_samples = sum(t.size for t, _ in records.values())

    systems = {}
    for system_name, mode in SYSTEMS.items():
        config = EngineConfig.for_mode(mode, jobs=1)
        batch_seconds = []
        stream_seconds = []
        identical = True
        n_beats = n_windows = 0
        with Engine(config) as engine:
            for _ in range(repeats):
                seconds, batch_results = _run_batch(engine, records)
                batch_seconds.append(seconds)
                seconds, stream_results = _run_streaming(
                    engine, records, frame_samples
                )
                stream_seconds.append(seconds)
                n_beats = sum(
                    rr.n_beats for rr, _ in batch_results.values()
                )
                n_windows = sum(
                    result.welch.n_windows
                    for result in stream_results.values()
                )
                identical = identical and all(
                    _results_identical(
                        stream_results[subject], batch_results[subject][1]
                    )
                    for subject in records
                )
        best_batch = min(batch_seconds)
        best_stream = min(stream_seconds)
        systems[system_name] = {
            "mode": mode,
            "bit_identical": identical,
            "n_beats": n_beats,
            "n_windows": n_windows,
            "batch": {
                "seconds": best_batch,
                "samples_per_sec": n_samples / best_batch,
                "beats_per_sec": n_beats / best_batch,
                "windows_per_sec": n_windows / best_batch,
            },
            "streaming": {
                "seconds": best_stream,
                "samples_per_sec": n_samples / best_stream,
                "beats_per_sec": n_beats / best_stream,
                "windows_per_sec": n_windows / best_stream,
            },
            "streaming_overhead_factor": best_stream / best_batch,
        }

    return {
        "benchmark": "ingest",
        "workload": {
            "n_subjects": n_subjects,
            "duration_minutes": duration_minutes,
            "sampling_rate_hz": SAMPLING_RATE,
            "frame_samples": frame_samples,
            "n_ecg_samples": n_samples,
            "repeats": repeats,
        },
        "systems": systems,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--subjects", type=int, default=4)
    parser.add_argument("--minutes", type=float, default=10.0)
    parser.add_argument("--frame", type=int, default=512)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    args = parser.parse_args(argv)

    document = run_ingest_benchmark(
        n_subjects=args.subjects,
        duration_minutes=args.minutes,
        frame_samples=args.frame,
        repeats=args.repeats,
    )
    for name, entry in document["systems"].items():
        print(
            f"{name:>18}: batch "
            f"{entry['batch']['samples_per_sec'] / 1e3:8.0f} kilosamples/s, "
            f"streaming "
            f"{entry['streaming']['samples_per_sec'] / 1e3:8.0f} "
            f"kilosamples/s "
            f"({entry['streaming']['windows_per_sec']:.1f} windows/s), "
            f"identical={entry['bit_identical']}"
        )
        if not entry["bit_identical"]:
            print(f"ERROR: {name} streamed result diverged from batch")
            return 1
    pathlib.Path(args.output).write_text(json.dumps(document, indent=2))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
