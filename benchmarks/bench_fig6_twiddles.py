"""Fig. 6: magnitude distribution of the modified twiddle factors.

The A diagonal decreases, the C diagonal increases, many factors are
near zero, and magnitude thresholds carve out the paper's three pruning
sets.  The bench prints the pooled histogram (the paper's bar plot) and
the set boundaries.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.analysis import bar_chart, format_table, twiddle_histogram


def test_fig6_histogram(benchmark):
    hist = benchmark(twiddle_histogram, 512, "haar", 15)

    labels = [
        f"{lo:.2f}-{hi:.2f}"
        for lo, hi in zip(hist.bin_edges[:-1], hist.bin_edges[1:])
    ]
    chart = bar_chart(labels, [float(c) for c in hist.counts], width=40)
    thresholds = format_table(
        ["set", "pruned fraction", "magnitude threshold"],
        [
            ["Set1", "20%", f"{hist.set_thresholds[1]:.4f}"],
            ["Set2", "40%", f"{hist.set_thresholds[2]:.4f}"],
            ["Set3", "60%", f"{hist.set_thresholds[3]:.4f}"],
        ],
    )
    emit(
        "fig6_twiddles",
        "Fig 6 — |A| and |C| twiddle magnitudes, N=512, Haar "
        "(paper: many factors near zero; 3 sets by magnitude)\n\n"
        + chart
        + "\n\n"
        + thresholds,
    )

    # Shape: A decreasing, C increasing, thresholds ordered.
    assert np.all(np.diff(hist.a_magnitudes) <= 1e-12)
    assert np.all(np.diff(hist.c_magnitudes) >= -1e-12)
    assert hist.set_thresholds[1] < hist.set_thresholds[2] < hist.set_thresholds[3]
    # Many near-zero factors: at least 10 % below 0.25.
    pooled = np.concatenate([hist.a_magnitudes, hist.c_magnitudes])
    assert np.mean(pooled < 0.25) > 0.10
