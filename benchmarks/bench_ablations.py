"""Ablations beyond the paper's headline experiments (DESIGN.md §7).

* fixed-point datapath: does the pruning conclusion survive Q15?
* wavelet-stage depth: the full Fig. 4 recursion vs the hybrid kernel,
* extended bases (Db6/Db8): the basis trade-off beyond the paper's three.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.analysis import format_percent, format_table
from repro.core.calibration import extract_calibration_windows
from repro.ffts import PruningSpec, WaveletFFT, split_radix_counts
from repro.fixedpoint import FixedPointWaveletFFT, Q15, Q31, Q1_14, sqnr_db


def test_ablation_fixed_point(benchmark, rsa_recordings, config):
    """Quantisation ablation: SQNR of the integer kernels per mode."""
    window = extract_calibration_windows(
        rsa_recordings[:1], config, packed=True
    )[0]
    scale = 0.9 / np.max(np.abs([window.real, window.imag]))
    window = window * scale

    def sweep():
        rows = []
        for fmt_name, fmt in (("Q15", Q15), ("Q1.14", Q1_14), ("Q31", Q31)):
            for label, spec in (
                ("exact", PruningSpec.none()),
                ("band drop", PruningSpec.band_only()),
                ("band + 60%", PruningSpec.paper_mode(3)),
            ):
                float_plan = WaveletFFT(512, pruning=spec)
                fixed_plan = FixedPointWaveletFFT(512, "haar", fmt, pruning=spec)
                reference = float_plan.transform(window)
                quantized = fixed_plan.transform(window).values
                rows.append(
                    [fmt_name, label, f"{sqnr_db(reference, quantized):.1f} dB"]
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_fixed_point",
        format_table(
            ["format", "mode", "SQNR vs float kernel"],
            rows,
            title="Ablation — fixed-point datapath fidelity "
            "(quantisation noise must not mask pruning behaviour)",
        ),
    )
    sqnrs = {(r[0], r[1]): float(r[2].split()[0]) for r in rows}
    assert sqnrs[("Q15", "exact")] > 35
    assert sqnrs[("Q31", "exact")] > 100
    # The pruned kernel is as faithful to its float twin as the exact one.
    assert sqnrs[("Q15", "band + 60%")] > 30


def test_ablation_wavelet_stage_depth(benchmark):
    """Deeper packet recursion (Fig. 4) raises cost — the reason the
    production kernel keeps one wavelet stage plus fast sub-DFTs."""

    def sweep():
        baseline = split_radix_counts(512)
        rows = []
        for levels in (1, 2, 3, 4):
            counts = WaveletFFT(512, levels=levels).static_counts()
            rows.append(
                [
                    str(levels),
                    str(counts.total),
                    format_percent(counts.savings_vs(baseline), signed=True),
                ]
            )
        return rows

    rows = benchmark(sweep)
    emit(
        "ablation_depth",
        format_table(
            ["wavelet levels", "total ops", "savings vs split-radix"],
            rows,
            title="Ablation — wavelet-stage depth (exact kernel, N=512)",
        ),
    )
    totals = [int(r[1]) for r in rows]
    assert totals == sorted(totals)


def test_ablation_extended_bases(benchmark):
    """Db6/Db8 continue the basis trend: longer filters cost more in the
    DWT stage than their extra twiddle sparsity recovers."""

    def sweep():
        baseline = split_radix_counts(512)
        rows = []
        for basis in ("haar", "db2", "db4", "db6", "db8"):
            counts = WaveletFFT(
                512, basis=basis, pruning=PruningSpec.band_only()
            ).static_counts()
            rows.append(
                [
                    basis,
                    str(counts.total),
                    format_percent(counts.savings_vs(baseline), signed=True),
                ]
            )
        return rows

    rows = benchmark(sweep)
    emit(
        "ablation_bases",
        format_table(
            ["basis", "total ops (band drop)", "savings vs split-radix"],
            rows,
            title="Ablation — extended wavelet bases, N=512",
        ),
    )
    totals = [int(r[1]) for r in rows]
    assert totals == sorted(totals)  # haar cheapest ... db8 dearest
