"""Shared fixtures and reporting plumbing for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper.
The numeric tables are printed (visible with ``pytest -s``) **and**
written to ``benchmarks/results/<name>.txt`` so the committed logs carry
the reproduction evidence; timing comes from pytest-benchmark.
"""

from __future__ import annotations

import pathlib

import pytest

from repro import PSAConfig, make_cohort

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


@pytest.fixture(scope="session")
def config() -> PSAConfig:
    """The paper's pipeline configuration."""
    return PSAConfig()


@pytest.fixture(scope="session")
def cohort():
    """The standard synthetic cohort (16 RSA + 8 healthy patients)."""
    return make_cohort()


@pytest.fixture(scope="session")
def rsa_recordings(cohort):
    """Ten-minute RR recordings of every sinus-arrhythmia patient."""
    return [
        patient.rr_series(duration=600.0)
        for patient in cohort
        if patient.patient_id.startswith("rsa")
    ]


@pytest.fixture(scope="session")
def calibration_corpus(rsa_recordings):
    """First half of the RSA cohort, reserved for threshold calibration."""
    return rsa_recordings[: len(rsa_recordings) // 2]
