"""Setuptools shim.

This environment has no ``wheel`` package and no network access, so PEP 517
editable installs (which must build an editable wheel) cannot work.  Keeping
a ``setup.py`` lets ``pip install -e . --no-build-isolation`` take the legacy
``setup.py develop`` path with nothing but setuptools.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
