"""Setuptools shim.

This environment has no ``wheel`` package and no network access, so PEP 517
editable installs (which must build an editable wheel) cannot work.  Keeping
a ``setup.py`` lets ``pip install -e . --no-build-isolation`` take the legacy
``setup.py develop`` path with nothing but setuptools.

scipy is deliberately an *extra*, not a hard dependency: the FFT
execution-provider registry (``repro.ffts.providers``) auto-skips the
scipy provider when the import fails, so the core library runs on numpy
alone.  ``pip install .[fast]`` pulls scipy in and unlocks the
multi-threaded ``scipy.fft`` provider.
"""

from setuptools import find_packages, setup

setup(
    name="repro-hrv-psa",
    version="0.3.0",
    description=(
        "Reproduction of 'A quality-scalable and energy-efficient approach "
        "for spectral analysis of heart rate variability' (DATE 2014)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        # Optional fast FFT execution provider (see repro.ffts.providers);
        # everything works without it, on numpy's pocketfft.
        "fast": ["scipy"],
    },
)
