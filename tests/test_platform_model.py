"""Tests for the ISA/energy/VFS/node models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PlatformError
from repro.ffts import OpCounts, PruningSpec, WaveletFFT, split_radix_counts
from repro.platform import (
    DvfsTable,
    EnergyModel,
    InstructionClass,
    InstructionSet,
    KernelExpansion,
    OperatingPoint,
    SensorNodeModel,
    alpha_power_frequency,
    profile_blocks,
)


class TestInstructionSet:
    def test_default_costs_positive(self):
        isa = InstructionSet()
        for cls in InstructionClass:
            assert isa.cost(cls) > 0

    def test_load_costs_more_than_alu(self):
        isa = InstructionSet()
        assert isa.cost(InstructionClass.LOAD) > isa.cost(InstructionClass.ALU)

    def test_missing_class_rejected(self):
        with pytest.raises(PlatformError):
            InstructionSet(cycles={InstructionClass.ALU: 1.0})

    def test_nonpositive_cost_rejected(self):
        bad = {cls: 1.0 for cls in InstructionClass}
        bad[InstructionClass.MUL] = 0.0
        with pytest.raises(PlatformError):
            InstructionSet(cycles=bad)


class TestKernelExpansion:
    def test_cycles_scale_linearly(self):
        expansion = KernelExpansion()
        isa = InstructionSet()
        one = expansion.cycles(OpCounts(mults=1, adds=1), isa)
        many = expansion.cycles(OpCounts(mults=10, adds=10), isa)
        assert np.isclose(many, 10 * one)

    def test_compare_includes_branch(self):
        expansion = KernelExpansion()
        mix = expansion.instruction_counts(OpCounts(compares=5))
        assert mix[InstructionClass.COMPARE] == 5
        assert mix[InstructionClass.BRANCH] == 5

    def test_empty_counts_cost_nothing(self):
        assert KernelExpansion().cycles(OpCounts(), InstructionSet()) == 0.0


class TestEnergyModel:
    def test_dynamic_energy_quadratic_in_voltage(self):
        model = EnergyModel()
        e_full = model.dynamic_energy_per_cycle(1.0)
        e_half = model.dynamic_energy_per_cycle(0.5)
        assert np.isclose(e_half, e_full * 0.25)

    def test_leakage_decreases_with_voltage(self):
        model = EnergyModel()
        assert model.leakage_power(0.6) < model.leakage_power(1.0)

    def test_energy_composition(self):
        model = EnergyModel()
        dyn_only = model.energy(1000, 1.0, 0.0)
        with_leak = model.energy(1000, 1.0, 1e-3)
        assert with_leak > dyn_only
        assert np.isclose(dyn_only, 1000 * model.energy_per_cycle_nominal)

    def test_validation(self):
        model = EnergyModel()
        with pytest.raises(PlatformError):
            model.energy(-1, 1.0, 0.0)
        with pytest.raises(Exception):
            EnergyModel(nominal_voltage=-1.0)


class TestVfs:
    def test_alpha_power_monotone(self):
        voltages = np.linspace(0.3, 1.0, 15)
        fracs = [alpha_power_frequency(v) for v in voltages]
        assert all(b >= a for a, b in zip(fracs, fracs[1:]))
        assert np.isclose(alpha_power_frequency(1.0), 1.0)

    def test_below_threshold_zero(self):
        assert alpha_power_frequency(0.2) == 0.0

    def test_default_table_ordering(self):
        table = DvfsTable()
        assert table.nominal.voltage == 1.0
        assert table.nominal.frequency == pytest.approx(100e6)

    def test_scale_for_cycles_picks_lowest_feasible(self):
        table = DvfsTable()
        point = table.scale_for_cycles(0.58)
        assert point.voltage == pytest.approx(0.6)
        point_full = table.scale_for_cycles(1.0)
        assert point_full.voltage == 1.0

    def test_scale_for_cycles_validation(self):
        table = DvfsTable()
        with pytest.raises(Exception):
            table.scale_for_cycles(1.5)

    def test_energy_minimising_point_respects_deadline(self):
        table = DvfsTable()
        model = EnergyModel()
        cycles = 1e5
        deadline = cycles / 100e6  # exactly nominal time
        point = table.energy_minimising_point(cycles, model, deadline)
        assert point.voltage == 1.0  # nothing slower fits

    def test_energy_minimising_point_scales_down(self):
        table = DvfsTable()
        model = EnergyModel()
        cycles = 5e4
        deadline = 1e5 / 100e6  # slack of 2x
        point = table.energy_minimising_point(cycles, model, deadline)
        assert point.voltage < 1.0

    def test_infeasible_deadline_raises(self):
        table = DvfsTable()
        model = EnergyModel()
        with pytest.raises(PlatformError):
            table.energy_minimising_point(1e9, model, deadline=1e-6)

    def test_invalid_tables_rejected(self):
        with pytest.raises(PlatformError):
            DvfsTable(points=())
        with pytest.raises(PlatformError):
            DvfsTable(
                points=(
                    OperatingPoint(0.8, 50e6),
                    OperatingPoint(1.0, 100e6),
                )
            )


class TestSensorNodeModel:
    def test_execute_at_nominal(self):
        node = SensorNodeModel()
        report = node.execute(OpCounts(mults=100, adds=100))
        assert report.cycles > 0
        assert report.energy > 0
        assert report.operating_point.voltage == 1.0

    def test_paper_energy_saving_shape(self):
        """Fig. 9 shape: static savings grow with pruning; VFS amplifies;
        the maximum approaches the paper's 82 %."""
        node = SensorNodeModel()
        baseline = split_radix_counts(512)
        static, vfs = [], []
        for mode in (1, 2, 3):
            counts = WaveletFFT(
                512, pruning=PruningSpec.paper_mode(mode)
            ).static_counts()
            static.append(
                node.evaluate_against_baseline(
                    counts, baseline, apply_vfs=False
                ).energy_savings
            )
            vfs.append(
                node.evaluate_against_baseline(
                    counts, baseline, apply_vfs=True
                ).energy_savings
            )
        assert static[0] < static[1] < static[2]
        assert all(v > s for v, s in zip(vfs, static))
        assert 0.30 < static[2] < 0.55   # paper: up to 51 % static
        assert 0.65 < vfs[2] < 0.88      # paper: up to 82 % with VFS

    def test_dynamic_pruning_energy_overhead(self):
        """Dynamic pruning costs ~10 % extra energy vs static (Fig. 9)."""
        node = SensorNodeModel()
        baseline = split_radix_counts(512)
        static_counts = WaveletFFT(
            512, pruning=PruningSpec.paper_mode(3)
        ).static_counts()
        dynamic_counts = WaveletFFT(
            512, pruning=PruningSpec.paper_mode(3, dynamic=True)
        ).static_counts()
        s = node.evaluate_against_baseline(static_counts, baseline).energy_savings
        d = node.evaluate_against_baseline(dynamic_counts, baseline).energy_savings
        assert d < s
        assert 0.03 < s - d < 0.25

    def test_vfs_never_hurts(self):
        node = SensorNodeModel()
        baseline = split_radix_counts(512)
        counts = WaveletFFT(512, pruning=PruningSpec.band_only()).static_counts()
        static = node.evaluate_against_baseline(counts, baseline, apply_vfs=False)
        vfs = node.evaluate_against_baseline(counts, baseline, apply_vfs=True)
        assert vfs.energy_savings >= static.energy_savings

    def test_slower_kernel_pins_to_nominal(self):
        node = SensorNodeModel()
        baseline = OpCounts(mults=100, adds=100)
        bloated = OpCounts(mults=200, adds=200)
        report = node.evaluate_against_baseline(bloated, baseline, apply_vfs=True)
        assert not report.vfs_applied
        assert report.energy_savings < 0

    def test_sustainable_window_rate(self):
        node = SensorNodeModel()
        rate = node.sustainable_window_rate(split_radix_counts(512))
        # ~44k cycles at 100 MHz -> thousands of windows per second.
        assert rate > 1000


class TestProfiler:
    def test_profile_shares_sum_to_one(self):
        breakdown = {
            "fft": OpCounts(mults=3000, adds=12000),
            "extirpolation": OpCounts(mults=3000, adds=1000),
            "lomb": OpCounts(mults=2300, adds=900),
        }
        profiles = profile_blocks(breakdown)
        assert np.isclose(sum(p.cycle_share for p in profiles), 1.0)
        assert np.isclose(sum(p.energy_share for p in profiles), 1.0)

    def test_sorted_by_energy_share(self):
        breakdown = {
            "small": OpCounts(adds=10),
            "large": OpCounts(mults=1000, adds=1000),
        }
        profiles = profile_blocks(breakdown)
        assert profiles[0].name == "large"

    def test_empty_breakdown_rejected(self):
        with pytest.raises(PlatformError):
            profile_blocks({})

    def test_fig1b_fft_dominates(self, rng):
        """End-to-end: the FFT is the biggest block of a PSA window."""
        from repro.lomb import FastLomb

        rr = 0.85 + 0.02 * rng.standard_normal(140)
        t = np.cumsum(rr)
        t -= t[0]
        breakdown = FastLomb(max_frequency=0.4).count_breakdown(t, rr)
        profiles = profile_blocks(breakdown)
        assert profiles[0].name == "fft"
        assert profiles[0].energy_share > 0.5
