"""Tests for the direct Lomb periodogram and extirpolation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.signal import lombscargle

from repro.errors import SignalError
from repro.lomb import (
    extirpolate,
    extirpolation_weights,
    lomb_frequency_grid,
    lomb_periodogram,
)


def _uneven_times(rng, n, duration=120.0):
    gaps = 0.7 + 0.4 * rng.random(n)
    t = np.cumsum(gaps)
    return (t - t[0]) * (duration / (t[-1] - t[0]))


class TestFrequencyGrid:
    def test_grid_spacing(self):
        grid = lomb_frequency_grid(duration=120.0, n_samples=100, oversample=2.0)
        assert np.isclose(grid[0], 1.0 / 240.0)
        assert np.allclose(np.diff(grid), grid[0])

    def test_max_frequency_respected(self):
        grid = lomb_frequency_grid(120.0, 100, 2.0, max_frequency=0.4)
        assert grid[-1] <= 0.4

    def test_invalid_inputs(self):
        with pytest.raises(SignalError):
            lomb_frequency_grid(-1.0, 10)
        with pytest.raises(SignalError):
            lomb_frequency_grid(10.0, 10, oversample=0.5)
        with pytest.raises(SignalError):
            lomb_frequency_grid(10.0, 10, max_frequency=1e-6)


class TestDirectLomb:
    def test_matches_scipy(self, rng):
        t = _uneven_times(rng, 80)
        x = np.sin(2 * np.pi * 0.1 * t) + 0.3 * rng.standard_normal(t.size)
        freqs, power = lomb_periodogram(t, x, max_frequency=0.45)
        reference = lombscargle(t, x - x.mean(), 2 * np.pi * freqs)
        np.testing.assert_allclose(
            power, reference / np.var(x, ddof=1), rtol=1e-8
        )

    def test_recovers_tone_frequency(self, rng):
        t = _uneven_times(rng, 150)
        f0 = 0.25
        x = 0.05 * np.sin(2 * np.pi * f0 * t) + 0.9
        x += 0.002 * rng.standard_normal(t.size)
        freqs, power = lomb_periodogram(t, x, max_frequency=0.45)
        assert abs(freqs[np.argmax(power)] - f0) < 0.01

    def test_time_shift_invariance(self, rng):
        """The tau offset makes the periodogram shift-invariant (eq. 1)."""
        t = _uneven_times(rng, 60)
        x = np.sin(2 * np.pi * 0.2 * t) + 0.1 * rng.standard_normal(t.size)
        freqs = np.linspace(0.05, 0.4, 40)
        _, p0 = lomb_periodogram(t, x, frequencies=freqs)
        _, p1 = lomb_periodogram(t + 1234.5, x, frequencies=freqs)
        np.testing.assert_allclose(p0, p1, rtol=1e-6)

    def test_power_nonnegative(self, rng):
        t = _uneven_times(rng, 50)
        x = rng.standard_normal(t.size)
        _, power = lomb_periodogram(t, x, max_frequency=0.4)
        assert np.all(power >= 0)

    def test_rejects_bad_input(self, rng):
        with pytest.raises(SignalError):
            lomb_periodogram([0.0, 1.0, 0.5], [1.0, 2.0, 3.0])
        with pytest.raises(SignalError):
            lomb_periodogram([0.0, 1.0], [1.0])
        with pytest.raises(SignalError):
            lomb_periodogram([0.0, 1.0, 2.0], [1.0, 1.0, 1.0])  # zero variance
        t = _uneven_times(rng, 10)
        with pytest.raises(SignalError):
            lomb_periodogram(t, rng.standard_normal(10), frequencies=[-0.1])

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_scaling_invariance_property(self, seed):
        """Normalised Lomb power is invariant to affine data scaling."""
        rng = np.random.default_rng(seed)
        t = _uneven_times(rng, 40)
        x = rng.standard_normal(40)
        freqs = np.linspace(0.05, 0.3, 20)
        _, p0 = lomb_periodogram(t, x, frequencies=freqs)
        _, p1 = lomb_periodogram(t, 5.0 * x + 3.0, frequencies=freqs)
        np.testing.assert_allclose(p0, p1, rtol=1e-7)


class TestExtirpolation:
    def test_integer_positions_are_exact(self):
        out = extirpolate([2.0, 3.0], [4.0, 10.0], 16)
        assert out[4] == 2.0 and out[10] == 3.0
        assert np.count_nonzero(out) == 2

    def test_mass_preserved(self, rng):
        """Lagrange weights sum to 1: total mass is conserved."""
        values = rng.random(50) + 0.5
        positions = rng.random(50) * 200.0
        out = extirpolate(values, positions, 256)
        assert np.isclose(out.sum(), values.sum(), rtol=1e-9)

    def test_moment_preserved(self, rng):
        """First moment (centroid) is preserved by order-4 spreading."""
        values = rng.random(30) + 0.5
        positions = 20.0 + rng.random(30) * 100.0
        out = extirpolate(values, positions, 256)
        lhs = float(values @ positions)
        rhs = float(out @ np.arange(256))
        assert np.isclose(lhs, rhs, rtol=1e-8)

    def test_trig_sums_approximated(self, rng):
        """The defining property: FFT-compatible sums match direct sums.

        The order-4 Lagrange error grows with the harmonic index m (the
        Press-Rybicki accuracy limit), so the tolerance scales with m.
        """
        n, size = 80, 512
        values = rng.standard_normal(n)
        positions = rng.random(n) * (size / 2.0)
        out = extirpolate(values, positions, size)
        for m, tol in ((1, 1e-5), (5, 1e-4), (20, 5e-3), (60, 5e-2)):
            direct = np.sum(values * np.exp(-2j * np.pi * positions * m / size))
            gridded = np.sum(out * np.exp(-2j * np.pi * np.arange(size) * m / size))
            assert abs(direct - gridded) < tol * max(1.0, abs(direct))

    def test_weights_match_vectorised_path(self, rng):
        pos = 7.3
        cells, weights = extirpolation_weights(pos, 64)
        dense = extirpolate([1.0], [pos], 64)
        np.testing.assert_allclose(dense[cells], weights, atol=1e-12)
        assert np.isclose(weights.sum(), 1.0, rtol=1e-12)

    def test_edge_clamping(self):
        out_low = extirpolate([1.0], [0.4], 32)
        out_high = extirpolate([1.0], [31.2], 32)
        assert np.isclose(out_low.sum(), 1.0)
        assert np.isclose(out_high.sum(), 1.0)
        assert np.count_nonzero(out_low[:4]) > 0
        assert np.count_nonzero(out_high[-4:]) > 0

    def test_invalid_inputs(self):
        with pytest.raises(SignalError):
            extirpolate([1.0], [40.0], 32)
        with pytest.raises(SignalError):
            extirpolate([1.0], [-0.1], 32)
        with pytest.raises(SignalError):
            extirpolate([1.0, 2.0], [1.0], 32)
        with pytest.raises(SignalError):
            extirpolation_weights(1.5, 64, order=1)
