"""Tests for the synthetic ECG/data substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecg import (
    Condition,
    EcgMorphology,
    QrsDetector,
    SyntheticCohort,
    TachogramSpec,
    generate_tachogram,
    make_cohort,
    synthesize_ecg,
)
from repro.errors import ConfigurationError, SignalError
from repro.hrv import lf_hf_ratio
from repro.lomb import FastLomb


class TestTachogramSpec:
    def test_defaults_valid(self):
        spec = TachogramSpec()
        assert spec.expected_lf_hf_ratio == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TachogramSpec(mean_rr=0.1)
        with pytest.raises(ConfigurationError):
            TachogramSpec(lf_frequency=0.3)
        with pytest.raises(ConfigurationError):
            TachogramSpec(hf_frequency=0.1)
        with pytest.raises(ConfigurationError):
            TachogramSpec(jitter=-0.01)
        with pytest.raises(ConfigurationError):
            TachogramSpec(lf_amplitude=0.3, hf_amplitude=0.3)

    def test_with_seed(self):
        spec = TachogramSpec(seed=1)
        assert spec.with_seed(7).seed == 7
        assert spec.seed == 1  # original unchanged


class TestGenerateTachogram:
    def test_duration_respected(self):
        series = generate_tachogram(TachogramSpec(seed=3), duration=300.0)
        assert series.times[-1] <= 300.0
        assert series.times[-1] > 280.0

    def test_beat_count_near_expected(self):
        spec = TachogramSpec(mean_rr=0.8, seed=5)
        series = generate_tachogram(spec, duration=240.0)
        assert abs(series.n_beats - 300) < 20

    def test_deterministic_by_seed(self):
        a = generate_tachogram(TachogramSpec(seed=11), 120.0)
        b = generate_tachogram(TachogramSpec(seed=11), 120.0)
        np.testing.assert_array_equal(a.intervals, b.intervals)
        c = generate_tachogram(TachogramSpec(seed=12), 120.0)
        assert not np.array_equal(a.intervals, c.intervals)

    def test_spectral_ground_truth(self):
        """The measured LF/HF ratio tracks the spec's sinusoid powers."""
        from repro.lomb import WelchLomb

        spec = TachogramSpec(
            lf_amplitude=0.02, hf_amplitude=0.04, drift_amplitude=0.0,
            jitter=0.001, seed=21,
        )
        series = generate_tachogram(spec, duration=600.0)
        result = WelchLomb(FastLomb(max_frequency=0.45)).analyze(
            series.times, series.intervals
        )
        measured = lf_hf_ratio(result.averaged_spectrum())
        assert measured == pytest.approx(spec.expected_lf_hf_ratio, rel=0.5)

    def test_hf_peak_at_respiratory_frequency(self):
        spec = TachogramSpec(hf_frequency=0.3, lf_amplitude=0.005, seed=2)
        series = generate_tachogram(spec, duration=300.0)
        window = series.slice_time(0.0, 120.0)
        spectrum = FastLomb(max_frequency=0.45).periodogram(
            window.times, window.intervals
        )
        hf_zone = spectrum.frequencies > 0.15
        peak = spectrum.frequencies[hf_zone][
            np.argmax(spectrum.power[hf_zone])
        ]
        assert abs(peak - 0.3) < 0.03

    def test_ectopics_injected(self):
        spec = TachogramSpec(ectopic_rate=0.05, seed=9)
        series = generate_tachogram(spec, duration=600.0)
        from repro.hrv import detect_ectopic_mask

        flagged = detect_ectopic_mask(series.intervals)
        assert np.count_nonzero(flagged) > 5

    def test_too_short_duration_rejected(self):
        with pytest.raises(SignalError):
            generate_tachogram(TachogramSpec(), duration=2.0)


class TestEcgSynthesisAndQrs:
    def test_waveform_has_r_peaks(self):
        beats = np.cumsum(np.full(20, 0.8))
        t, ecg = synthesize_ecg(beats, noise_std=0.0, baseline_wander=0.0)
        for beat in beats[2:-2]:
            window = (t > beat - 0.05) & (t < beat + 0.05)
            assert ecg[window].max() > 0.8  # R wave present

    def test_morphology_waves(self):
        waves = EcgMorphology().waves()
        assert len(waves) == 5
        amplitudes = [w[0] for w in waves]
        assert max(amplitudes) == 1.0  # R wave dominates

    def test_invalid_beats_rejected(self):
        with pytest.raises(SignalError):
            synthesize_ecg([0.0, 0.5, 0.4])

    def test_qrs_recovers_beats(self):
        """Round trip: generator beats -> ECG -> detector -> same beats."""
        spec = TachogramSpec(seed=4)
        series = generate_tachogram(spec, duration=120.0)
        beats = np.concatenate([[series.times[0] - series.intervals[0]],
                                series.times])
        t, ecg = synthesize_ecg(beats, sampling_rate=250.0, seed=1)
        result = QrsDetector(sampling_rate=250.0).detect(t, ecg)
        # Match detected beats to true beats within 30 ms.
        matched = 0
        for beat in beats[1:-1]:
            if np.min(np.abs(result.beat_times - beat)) < 0.03:
                matched += 1
        assert matched / (beats.size - 2) > 0.95

    def test_qrs_rr_intervals_close(self):
        spec = TachogramSpec(seed=6, jitter=0.002)
        series = generate_tachogram(spec, duration=90.0)
        beats = np.concatenate([[0.0], series.times])
        t, ecg = synthesize_ecg(beats, seed=2)
        result = QrsDetector().detect(t, ecg)
        # Mean RR recovered within 2 %.
        assert result.rr.intervals.mean() == pytest.approx(
            series.intervals.mean(), rel=0.02
        )

    def test_qrs_validation(self):
        detector = QrsDetector()
        with pytest.raises(SignalError):
            detector.detect([0.0, 0.1], [1.0, 2.0])
        with pytest.raises(SignalError):
            QrsDetector(sampling_rate=50.0)
        with pytest.raises(SignalError):
            QrsDetector(band=(20.0, 10.0))


class TestCohort:
    def test_default_cohort_composition(self):
        cohort = make_cohort()
        assert len(cohort) == 24
        assert len(cohort.by_condition(Condition.SINUS_ARRHYTHMIA)) == 16
        assert len(cohort.by_condition(Condition.HEALTHY)) == 8

    def test_cohort_deterministic(self):
        a, b = make_cohort(seed=99), make_cohort(seed=99)
        for pa, pb in zip(a, b):
            assert pa.spec == pb.spec

    def test_patient_lookup(self):
        cohort = make_cohort()
        assert cohort.get("rsa-00").condition is Condition.SINUS_ARRHYTHMIA
        with pytest.raises(ConfigurationError):
            cohort.get("nope")

    def test_conditions_separate_in_lf_hf(self):
        """RSA patients sit below 1, controls above — the detection premise."""
        from repro.lomb import WelchLomb

        cohort = make_cohort(n_arrhythmia=4, n_healthy=4)
        welch = WelchLomb(FastLomb(max_frequency=0.45))
        for patient in cohort:
            rr = patient.rr_series(duration=300.0)
            result = welch.analyze(rr.times, rr.intervals)
            ratio = lf_hf_ratio(result.averaged_spectrum())
            if patient.condition is Condition.SINUS_ARRHYTHMIA:
                assert ratio < 1.0, patient.patient_id
            else:
                assert ratio > 1.0, patient.patient_id

    def test_empty_cohort_rejected(self):
        with pytest.raises(ConfigurationError):
            make_cohort(n_arrhythmia=0, n_healthy=0)
        with pytest.raises(ConfigurationError):
            SyntheticCohort(patients=())

    def test_duplicate_ids_rejected(self):
        cohort = make_cohort(n_arrhythmia=1, n_healthy=0)
        with pytest.raises(ConfigurationError):
            SyntheticCohort(patients=(cohort.patients[0], cohort.patients[0]))
