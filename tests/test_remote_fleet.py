"""Tests for the cross-machine fleet: transport codec, daemon, scheduler.

The load-bearing claim mirrors :mod:`tests.test_fleet`'s, extended over
the socket: a cohort scheduled onto localhost worker daemons must
reproduce the in-process batched path **bit-for-bit** — same
spectrograms, same Welch averages, same operation counts — under both
PSA systems, every pruning mode and every registered provider, because
the daemon rebuilds the identical engine from the serialized config and
runs the same :func:`~repro.lomb.welch.analyze_spans` choke point under
the scheduler's resolved provider/chunk pins.  Fault tolerance rides on
the same invariant: a shard re-run after a worker death merges to the
identical result, so killing a daemon mid-run must not change a single
bit of the output.
"""

from __future__ import annotations

import os
import re
import signal
import socket
import struct
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.ecg.rr_synthesis import TachogramSpec, generate_tachogram
from repro.engine import Engine, EngineConfig
from repro.engine.engine import build_system
from repro.errors import ConfigurationError, TransportError
from repro.ffts.opcount import OpCounts
from repro.ffts.providers.registry import available_providers
from repro.fleet import (
    FleetRunner,
    FrameStream,
    RemoteTaskError,
    RemoteWorker,
    WorkerDaemon,
    format_address,
    parse_address,
)
from repro.fleet.remote import PROTOCOL_VERSION
from repro.fleet.transport import MAX_FRAME_BYTES, decode_value, encode_value


def _cohort(n=3, seconds=600.0):
    return [
        generate_tachogram(TachogramSpec(seed=seed), seconds)
        for seed in range(1, n + 1)
    ]


def _providers():
    return sorted(
        name for name, ok in available_providers().items() if ok
    )


_MODES = ("exact", "band", "set1", "set2", "set3")


def _assert_identical(reference, results):
    assert len(reference) == len(results)
    for ref, got in zip(reference, results):
        np.testing.assert_array_equal(ref.spectrogram, got.spectrogram)
        np.testing.assert_array_equal(ref.frequencies, got.frequencies)
        np.testing.assert_array_equal(ref.averaged, got.averaged)
        assert ref.counts == got.counts


# ----------------------------------------------------------------------
# Wire codec
# ----------------------------------------------------------------------


class TestCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -17,
            2**62,
            2**100,  # beyond int64: decimal-text encoding
            -(2**100),
            3.14159,
            float("inf"),
            "hello",
            "καρδιά",  # non-ASCII
            b"\x00\xffraw",
            (1, 2, 3),
            [1, "two", 3.0, None],
            {"a": 1, "b": [True, {"c": ()}]},
            OpCounts(mults=12, adds=34, compares=56),
        ],
    )
    def test_scalar_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    @pytest.mark.parametrize(
        "array",
        [
            np.arange(7, dtype=np.float64),
            np.arange(6, dtype=np.int64).reshape(2, 3),
            np.array([], dtype=np.float64),
            np.linspace(0, 1, 9, dtype=np.float32).reshape(3, 3),
            np.array([1 + 2j, 3 - 4j], dtype=np.complex128),
        ],
    )
    def test_array_roundtrip(self, array):
        decoded = decode_value(encode_value(array))
        assert decoded.dtype == array.dtype
        assert decoded.shape == array.shape
        np.testing.assert_array_equal(decoded, array)

    def test_array_roundtrip_is_bit_exact(self, rng):
        array = rng.standard_normal(513)
        decoded = decode_value(encode_value(array))
        assert decoded.tobytes() == array.tobytes()

    def test_nested_structure_with_arrays(self):
        packed = {
            "groups": [
                (5, np.arange(3.0), np.ones((3, 5)), None),
            ],
            "counts": (OpCounts(1, 2, 3), None),
        }
        decoded = decode_value(encode_value(packed))
        assert decoded["counts"] == (OpCounts(1, 2, 3), None)
        np.testing.assert_array_equal(
            decoded["groups"][0][2], np.ones((3, 5))
        )

    def test_noncontiguous_array_roundtrip(self):
        base = np.arange(24, dtype=np.float64).reshape(4, 6)
        view = base[::2, ::3]
        decoded = decode_value(encode_value(view))
        np.testing.assert_array_equal(decoded, view)

    def test_truncated_payload_is_transport_error(self):
        payload = encode_value({"a": np.arange(8.0)})
        with pytest.raises(TransportError):
            decode_value(payload[: len(payload) - 3])

    def test_unknown_tag_is_transport_error(self):
        with pytest.raises(TransportError):
            decode_value(b"Z")

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(TransportError):
            encode_value({1: "a"})

    def test_unencodable_type_rejected(self):
        with pytest.raises(TransportError):
            encode_value(object())


class TestAddresses:
    def test_roundtrip(self):
        assert parse_address("10.0.0.5:9100") == ("10.0.0.5", 9100)
        assert format_address("10.0.0.5", 9100) == "10.0.0.5:9100"

    @pytest.mark.parametrize(
        "bad", ["nohost", ":9100", "host:", "host:abc", "host:0", "host:70000"]
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            parse_address(bad)

    def test_ephemeral_port_allowed_for_listen(self):
        assert parse_address("0.0.0.0:0", allow_ephemeral=True) == (
            "0.0.0.0",
            0,
        )


class TestFrameStream:
    def _pair(self):
        server, client = socket.socketpair()
        return FrameStream(server), FrameStream(client)

    def test_send_recv_roundtrip(self, rng):
        a, b = self._pair()
        try:
            payload = {"key": 3, "data": rng.standard_normal(100)}
            a.send("array", payload)
            kind, decoded = b.recv()
            assert kind == "array"
            assert decoded["key"] == 3
            assert (
                decoded["data"].tobytes() == payload["data"].tobytes()
            )
            assert a.bytes_sent == b.bytes_received > 800
        finally:
            a.close()
            b.close()

    def test_peer_close_is_connection_error(self):
        a, b = self._pair()
        a.close()
        with pytest.raises(ConnectionError):
            b.recv()
        b.close()

    def test_bad_magic_is_transport_error(self):
        server, client = socket.socketpair()
        a, b = FrameStream(server), FrameStream(client)
        try:
            server.sendall(b"BAAD" + struct.pack("!Q", 4) + b"oops")
            with pytest.raises(TransportError):
                b.recv()
        finally:
            a.close()
            b.close()

    def test_oversized_frame_is_transport_error(self):
        server, client = socket.socketpair()
        a, b = FrameStream(server), FrameStream(client)
        try:
            server.sendall(b"RPF1" + struct.pack("!Q", MAX_FRAME_BYTES + 1))
            with pytest.raises(TransportError):
                b.recv()
        finally:
            a.close()
            b.close()


# ----------------------------------------------------------------------
# Daemon protocol
# ----------------------------------------------------------------------


class TestWorkerDaemon:
    def test_handshake_and_info(self):
        config = EngineConfig()
        resolved = config.resolve()
        with WorkerDaemon() as daemon:
            daemon.start()
            worker = RemoteWorker(daemon.address, timeout=10.0)
            info = worker.connect(
                {
                    "config": config.to_dict(),
                    "provider": resolved.provider,
                    "chunk_windows": resolved.chunk_windows,
                }
            )
            assert info["provider"] == resolved.provider
            assert info["chunk_windows"] == resolved.chunk_windows
            assert info["version"] == PROTOCOL_VERSION
            worker.close()

    def test_version_mismatch_refused(self):
        config = EngineConfig()
        resolved = config.resolve()
        with WorkerDaemon() as daemon:
            daemon.start()
            sock = socket.create_connection(
                (daemon.host, daemon.port), timeout=5.0
            )
            stream = FrameStream(sock)
            stream.settimeout(5.0)
            try:
                stream.send(
                    "hello",
                    {
                        "version": PROTOCOL_VERSION + 1,
                        "config": config.to_dict(),
                        "provider": resolved.provider,
                        "chunk_windows": resolved.chunk_windows,
                    },
                )
                kind, payload = stream.recv()
                assert kind == "error"
                assert "version" in payload["message"]
            finally:
                stream.close()

    def test_unknown_provider_refused(self):
        config = EngineConfig()
        resolved = config.resolve()
        with WorkerDaemon() as daemon:
            daemon.start()
            worker = RemoteWorker(daemon.address, timeout=10.0)
            with pytest.raises(ConfigurationError, match="not available"):
                worker.connect(
                    {
                        "config": config.to_dict(),
                        "provider": "no-such-provider",
                        "chunk_windows": resolved.chunk_windows,
                    }
                )

    def test_task_with_unknown_array_key_is_task_error(self):
        config = EngineConfig()
        resolved = config.resolve()
        with WorkerDaemon() as daemon:
            daemon.start()
            worker = RemoteWorker(daemon.address, timeout=10.0)
            worker.connect(
                {
                    "config": config.to_dict(),
                    "provider": resolved.provider,
                    "chunk_windows": resolved.chunk_windows,
                }
            )
            with pytest.raises(RemoteTaskError):
                worker.run_task(0, 0, 1, [(0, 8)], False)
            worker.close()

    def test_unreachable_worker_is_connection_error(self):
        # Bind-then-close guarantees a dead port.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        worker = RemoteWorker(f"127.0.0.1:{port}", timeout=2.0)
        with pytest.raises(ConnectionError):
            worker.connect({"config": EngineConfig().to_dict(),
                            "provider": "numpy", "chunk_windows": 64})


# ----------------------------------------------------------------------
# Bit-identity across transports (the flagship matrix)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def shared_daemon():
    with WorkerDaemon() as daemon:
        daemon.start()
        yield daemon


class TestRemoteBitIdentity:
    @pytest.mark.parametrize("provider", _providers())
    @pytest.mark.parametrize("mode", _MODES)
    def test_remote_equals_in_process(self, shared_daemon, mode, provider):
        """Localhost daemon == in-process, all modes × providers.

        ``mode="exact"`` runs the conventional system, every other mode
        the quality-scalable one, so both PSA systems are covered.
        """
        config = EngineConfig.for_mode(mode, provider=provider, jobs=1)
        welch = build_system(config).welch
        cohort = _cohort(2)
        reference = FleetRunner.from_config(config, welch=welch).run(
            cohort, count_ops=True
        )
        runner = FleetRunner.from_config(
            config.replace(workers=(shared_daemon.address,)), welch=welch
        )
        with runner:
            report = runner.run_report(cohort, count_ops=True)
        assert report.n_remote_workers == 1
        _assert_identical(reference, report.results)

    def test_remote_equals_shm_pool(self, shared_daemon):
        """The three transports agree: in-process == shm pool == socket."""
        config = EngineConfig.for_mode("set3", jobs=1)
        welch = build_system(config).welch
        cohort = _cohort(3)
        reference = FleetRunner.from_config(config, welch=welch).run(
            cohort, count_ops=True
        )
        with FleetRunner.from_config(
            config.replace(jobs=2), welch=welch
        ) as pool_runner:
            pool_results = pool_runner.run(cohort, count_ops=True)
        with FleetRunner.from_config(
            config.replace(jobs=2, workers=(shared_daemon.address,)),
            welch=welch,
        ) as mixed_runner:
            mixed = mixed_runner.run_report(cohort, count_ops=True)
        _assert_identical(reference, pool_results)
        _assert_identical(reference, mixed.results)

    def test_engine_facade_distributed_cohort(self, shared_daemon):
        """EngineConfig(workers=[...]) routes analyze_cohort remotely."""
        cohort = _cohort(2)
        with Engine(EngineConfig.for_mode("set2", jobs=1)) as local:
            reference = local.analyze_cohort(cohort, count_ops=True)
        config = EngineConfig.for_mode(
            "set2", jobs=1, workers=(shared_daemon.address,)
        )
        with Engine(config) as engine:
            distributed = engine.analyze_cohort(cohort, count_ops=True)
        assert len(reference) == len(distributed)
        for ref, got in zip(reference, distributed):
            np.testing.assert_array_equal(
                ref.welch.spectrogram, got.welch.spectrogram
            )
            assert ref.counts == got.counts
            assert ref.lf_hf == got.lf_hf

    def test_streaming_hub_dispatches_to_remote(self, shared_daemon):
        """run_spans (the hub flush path) is bit-identical over the wire."""
        config = EngineConfig.for_mode("set3", jobs=1)
        welch = build_system(config).welch
        rr = _cohort(1, seconds=1800.0)[0]
        plan = welch.plan_windows(rr.times, rr.intervals)
        reference, ref_metrics = FleetRunner.from_config(
            config, welch=welch
        ).run_spans(plan.times, plan.values, plan.spans, count_ops=True)
        runner = FleetRunner.from_config(
            config.replace(workers=(shared_daemon.address,)), welch=welch
        )
        with runner:
            remote, remote_metrics = runner.run_spans(
                plan.times, plan.values, plan.spans, count_ops=True
            )
        assert len(reference) == len(remote)
        assert ref_metrics == remote_metrics
        for ref, got in zip(reference, remote):
            np.testing.assert_array_equal(ref.power, got.power)
            np.testing.assert_array_equal(ref.frequencies, got.frequencies)
            assert ref.counts == got.counts

    def test_second_run_reuses_connection(self, shared_daemon):
        """Persistent connections reset array keys between runs."""
        config = EngineConfig(jobs=1, workers=(shared_daemon.address,))
        welch = build_system(config).welch
        reference_runner = FleetRunner.from_config(
            config.replace(workers=()), welch=welch
        )
        with FleetRunner.from_config(config, welch=welch) as runner:
            first_cohort = _cohort(2)
            second_cohort = _cohort(2, seconds=900.0)
            first = runner.run_report(first_cohort, count_ops=True)
            second = runner.run_report(second_cohort, count_ops=True)
            stats = runner.transport_stats()
        _assert_identical(
            reference_runner.run(first_cohort, count_ops=True),
            first.results,
        )
        _assert_identical(
            reference_runner.run(second_cohort, count_ops=True),
            second.results,
        )
        assert stats[shared_daemon.address]["bytes_sent"] > 0
        assert stats[shared_daemon.address]["bytes_received"] > 0


# ----------------------------------------------------------------------
# Fault tolerance
# ----------------------------------------------------------------------


class _DyingDaemon(WorkerDaemon):
    """A daemon that drops the connection mid-task after N completions.

    Deterministic worker death: completing ``die_after`` tasks, the next
    task's connection is severed *without a reply* — exactly what the
    scheduler observes when a remote host is powered off mid-shard.
    """

    def __init__(self, die_after: int = 1, **kwargs):
        super().__init__(**kwargs)
        self.die_after = die_after
        self._completed = 0

    def _run_task(self, stream, payload, state) -> None:
        if self._completed >= self.die_after:
            stream.close()  # vanish without an answer
            return
        self._completed += 1
        super()._run_task(stream, payload, state)


class TestFaultTolerance:
    def test_worker_death_mid_run_reassigns_shards(self):
        """A daemon dying after its first task never fails the cohort."""
        config = EngineConfig.for_mode("set3", jobs=1)
        welch = build_system(config).welch
        cohort = _cohort(4)
        reference = FleetRunner.from_config(config, welch=welch).run(
            cohort, count_ops=True
        )
        with _DyingDaemon(die_after=1) as daemon:
            daemon.start()
            runner = FleetRunner.from_config(
                config.replace(workers=(daemon.address,)),
                welch=welch,
                min_windows_per_shard=1,
            )
            with runner:
                report = runner.run_report(cohort, count_ops=True)
        assert report.n_shards > 2  # the death actually left work behind
        _assert_identical(reference, report.results)

    def test_first_connect_failure_is_configuration_error(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        config = EngineConfig(jobs=1, workers=(f"127.0.0.1:{port}",))
        runner = FleetRunner.from_config(config)
        with pytest.raises(ConfigurationError, match="unreachable"):
            runner.run(_cohort(1))

    def test_previously_healthy_worker_death_degrades_gracefully(self):
        """A worker that served run 1 but is gone for run 2 is skipped."""
        config = EngineConfig.for_mode("band", jobs=1)
        welch = build_system(config).welch
        cohort = _cohort(2)
        reference = FleetRunner.from_config(config, welch=welch).run(
            cohort, count_ops=True
        )
        daemon = WorkerDaemon()
        daemon.start()
        runner = FleetRunner.from_config(
            config.replace(workers=(daemon.address,)), welch=welch
        )
        with runner:
            first = runner.run_report(cohort, count_ops=True)
            assert first.n_remote_workers == 1
            daemon.close()  # the host goes away between runs
            second = runner.run_report(cohort, count_ops=True)
            assert second.n_remote_workers == 0
        _assert_identical(reference, first.results)
        _assert_identical(reference, second.results)

    def test_sigkill_subprocess_daemon_mid_run(self):
        """Kill -9 a real daemon process mid-cohort: run still completes."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = proc.stdout.readline()
            address = re.search(r"listening on (\S+)", banner).group(1)
            config = EngineConfig.for_mode("set3", jobs=1)
            welch = build_system(config).welch
            cohort = _cohort(4)
            reference = FleetRunner.from_config(config, welch=welch).run(
                cohort, count_ops=True
            )
            runner = FleetRunner.from_config(
                config.replace(workers=(address,)),
                welch=welch,
                min_windows_per_shard=1,
                worker_timeout=5.0,
            )
            killer = threading.Timer(
                0.15, lambda: proc.send_signal(signal.SIGKILL)
            )
            killer.start()
            try:
                with runner:
                    report = runner.run_report(cohort, count_ops=True)
            finally:
                killer.cancel()
            _assert_identical(reference, report.results)
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10)
            proc.stdout.close()


# ----------------------------------------------------------------------
# Config surface
# ----------------------------------------------------------------------


class TestWorkersConfig:
    def test_workers_roundtrip_through_json(self):
        config = EngineConfig(workers=("10.0.0.1:9100", "10.0.0.2:9100"))
        assert EngineConfig.from_json(config.to_json()) == config

    def test_workers_resolution_chain(self):
        config = EngineConfig(workers=("10.0.0.1:9100",))
        resolved = config.resolve()
        assert resolved.workers == ("10.0.0.1:9100",)
        assert resolved.workers_source == "config"
        explicit = config.resolve(workers=("10.0.0.9:9200",))
        assert explicit.workers == ("10.0.0.9:9200",)
        assert explicit.workers_source == "explicit"
        assert EngineConfig().resolve().workers_source == "default"

    def test_malformed_worker_address_rejected(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(workers=("not-an-address",))
        with pytest.raises(ConfigurationError):
            EngineConfig.from_dict({"workers": "10.0.0.1:9100"})

    def test_runner_requires_config_for_workers(self):
        with pytest.raises(ConfigurationError, match="config"):
            FleetRunner(n_jobs=1, workers=("127.0.0.1:9100",))
