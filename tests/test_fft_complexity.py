"""Operation-count shape tests against the paper's Fig. 5 / Section V.

We do not chase the paper's absolute numbers (its counting conventions are
not fully specified) but pin the *shape*: orderings, signs of savings, and
the headline percentages within a few points.  The tolerances below encode
the measured values of this implementation so regressions are caught.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ffts import (
    PruningSpec,
    WaveletFFT,
    direct_dft_counts,
    radix2_counts,
    split_radix_counts,
)


def _savings(basis: str, spec: PruningSpec, n: int = 512) -> float:
    plan = WaveletFFT(n, basis=basis, pruning=spec)
    return plan.static_counts().savings_vs(split_radix_counts(n))


class TestUnprunedOverhead:
    """Paper: wavelet FFT costs +36 % (Haar), +49 % (Db2), +76 % (Db4)."""

    def test_wavelet_fft_more_expensive_than_split_radix(self, paper_basis):
        assert _savings(paper_basis, PruningSpec.none()) < 0

    def test_overhead_ordering_haar_db2_db4(self):
        overheads = [-_savings(b, PruningSpec.none()) for b in ("haar", "db2", "db4")]
        assert overheads[0] < overheads[1] < overheads[2]

    def test_overhead_magnitudes(self):
        # Measured: +46.5 / +63.2 / +89.8 %; paper +36 / +49 / +76 %.
        assert 0.30 < -_savings("haar", PruningSpec.none()) < 0.60
        assert 0.45 < -_savings("db2", PruningSpec.none()) < 0.80
        assert 0.65 < -_savings("db4", PruningSpec.none()) < 1.05


class TestBandDropSavings:
    """Paper: band drop beats split radix by 28 / 21 / 8 % (Haar/Db2/Db4)."""

    @pytest.mark.parametrize(
        "basis,expected", [("haar", 0.28), ("db2", 0.21), ("db4", 0.08)]
    )
    def test_savings_close_to_paper(self, basis, expected):
        measured = _savings(basis, PruningSpec.band_only())
        assert measured == pytest.approx(expected, abs=0.05)

    def test_savings_ordering(self):
        savings = [_savings(b, PruningSpec.band_only()) for b in ("haar", "db2", "db4")]
        assert savings[0] > savings[1] > savings[2] > 0

    def test_band_drop_halves_sub_fft_work(self):
        full = WaveletFFT(512, pruning=PruningSpec.none())
        dropped = WaveletFFT(512, pruning=PruningSpec.band_only())
        assert dropped._sub_counts().total * 2 == full._sub_counts().total


class TestPaperModes:
    """Paper Section V.B: Haar band drop + 60 % twiddle pruning gives
    52 % fewer adds and 17 % fewer mults than split radix."""

    def test_mode3_add_savings(self):
        plan = WaveletFFT(512, basis="haar", pruning=PruningSpec.paper_mode(3))
        baseline = split_radix_counts(512)
        add_savings = 1.0 - plan.static_counts().adds / baseline.adds
        assert add_savings == pytest.approx(0.52, abs=0.06)

    def test_mode3_mult_savings(self):
        plan = WaveletFFT(512, basis="haar", pruning=PruningSpec.paper_mode(3))
        baseline = split_radix_counts(512)
        mult_savings = 1.0 - plan.static_counts().mults / baseline.mults
        assert mult_savings == pytest.approx(0.17, abs=0.06)

    def test_modes_monotone_in_savings(self, paper_basis):
        totals = [
            WaveletFFT(512, basis=paper_basis, pruning=PruningSpec.paper_mode(s))
            .static_counts()
            .total
            for s in (1, 2, 3)
        ]
        assert totals[0] > totals[1] > totals[2]

    def test_haar_has_lowest_complexity_of_bases(self):
        """Section V.B: Haar was chosen because it is the cheapest."""
        for mode in (1, 2, 3):
            totals = {
                b: WaveletFFT(512, basis=b, pruning=PruningSpec.paper_mode(mode))
                .static_counts()
                .total
                for b in ("haar", "db2", "db4")
            }
            assert totals["haar"] == min(totals.values())

    def test_savings_grow_with_transform_order(self):
        """Section V.B: N=1024 gives additional savings over N=512."""
        def mult_savings(n):
            plan = WaveletFFT(n, basis="haar", pruning=PruningSpec.paper_mode(3))
            return 1.0 - plan.static_counts().mults / split_radix_counts(n).mults

        def total_savings(n):
            plan = WaveletFFT(n, basis="haar", pruning=PruningSpec.paper_mode(3))
            return plan.static_counts().savings_vs(split_radix_counts(n))

        assert mult_savings(1024) > mult_savings(512)
        assert total_savings(1024) >= total_savings(512) - 1e-9
        assert total_savings(2048) > total_savings(512)


class TestDynamicOverhead:
    def test_dynamic_costs_more_than_static(self):
        static = WaveletFFT(
            512, pruning=PruningSpec.paper_mode(3)
        ).static_counts()
        dynamic = WaveletFFT(
            512, pruning=PruningSpec.paper_mode(3, dynamic=True)
        ).static_counts()
        assert dynamic.total > static.total
        assert dynamic.compares > 0 == static.compares

    def test_dynamic_overhead_moderate(self):
        """The run-time checks must not erase the pruning benefit."""
        baseline = split_radix_counts(512)
        dynamic = WaveletFFT(
            512, pruning=PruningSpec.paper_mode(3, dynamic=True)
        ).static_counts()
        assert dynamic.total < baseline.total  # still a net win


class TestCountsConsistency:
    def test_transform_counts_match_static_counts(self, paper_basis, rng):
        """For static configurations the executed counts equal the plan."""
        for spec in (
            PruningSpec.none(),
            PruningSpec.band_only(),
            PruningSpec.paper_mode(2),
        ):
            plan = WaveletFFT(128, basis=paper_basis, pruning=spec)
            x = rng.standard_normal(128) + 1j * rng.standard_normal(128)
            _, executed = plan.transform_with_counts(x)
            assert executed == plan.static_counts()

    def test_breakdown_sums_to_total(self, rng):
        plan = WaveletFFT(256, pruning=PruningSpec.paper_mode(1))
        x = rng.standard_normal(256)
        breakdown = plan.count_breakdown(x)
        total = sum(breakdown.values())
        _, executed = plan.transform_with_counts(x)
        assert total == executed
        assert set(breakdown) == {"dwt", "sub_fft", "twiddle"}

    def test_dynamic_breakdown_has_checks(self, rng):
        plan = WaveletFFT(256, pruning=PruningSpec.paper_mode(1, dynamic=True))
        x = rng.standard_normal(256)
        breakdown = plan.count_breakdown(x)
        assert "pruning_checks" in breakdown
        assert breakdown["pruning_checks"].compares > 0

    def test_kernel_hierarchy(self):
        """Direct DFT >> radix-2 > split radix at N=512."""
        assert (
            direct_dft_counts(512).total
            > radix2_counts(512).total
            > split_radix_counts(512).total
        )

    def test_deeper_levels_increase_ops(self):
        """Full packet recursion (Fig. 4) costs more than the hybrid —
        the reason the paper's implementation keeps one wavelet stage."""
        shallow = WaveletFFT(256, levels=1).static_counts()
        deep = WaveletFFT(256, levels=6).static_counts()
        assert deep.total > shallow.total
