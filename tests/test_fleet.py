"""Tests for the fleet execution engine (sharding, shm, runner, merge).

The load-bearing claim is exactness: a sharded multiprocess cohort run
must reproduce the single-process batched path **bit-for-bit** — same
spectrograms, same Welch averages, same operation counts — because the
per-window kernels are composition-independent and the merge reuses the
single-process assembly back end.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.core.system import ConventionalPSA, QualityScalablePSA
from repro.ecg.rr_synthesis import TachogramSpec, generate_tachogram
from repro.errors import ConfigurationError, SignalError
from repro.ffts.pruning import PruningSpec
from repro.fleet import (
    FleetRunner,
    SharedRecordingStore,
    attach_array,
    plan_shards,
)
from repro.lomb.fast import FastLomb
from repro.lomb.welch import WelchLomb


def _cohort(n=3, seconds=900.0):
    return [
        generate_tachogram(TachogramSpec(seed=seed), seconds)
        for seed in range(1, n + 1)
    ]


class TestPlanShards:
    def test_small_recordings_one_shard_each(self):
        shards = plan_shards([40, 50, 60], n_jobs=4)
        assert [(s.recording, s.lo, s.hi) for s in shards] == [
            (0, 0, 40),
            (1, 0, 50),
            (2, 0, 60),
        ]

    def test_oversized_recording_splits_contiguously(self):
        shards = plan_shards([1000], n_jobs=4, min_windows_per_shard=32)
        assert len(shards) > 1
        assert shards[0].lo == 0 and shards[-1].hi == 1000
        for left, right in zip(shards, shards[1:]):
            assert left.hi == right.lo
        assert sum(s.n_windows for s in shards) == 1000

    def test_min_windows_floor(self):
        # 100 windows with a floor of 60 cannot make 4 shards.
        shards = plan_shards(
            [100], n_jobs=4, min_windows_per_shard=60, oversubscription=1
        )
        assert all(s.n_windows >= 40 for s in shards)
        assert sum(s.n_windows for s in shards) == 100

    def test_zero_window_recording_skipped(self):
        shards = plan_shards([0, 10], n_jobs=2)
        assert [s.recording for s in shards] == [1]

    def test_all_zero_window_recordings_yield_no_shards(self):
        assert plan_shards([0, 0, 0], n_jobs=4) == []

    def test_zero_window_recordings_interleaved(self):
        # Zero-window entries anywhere in the cohort keep every other
        # recording's index and coverage intact.
        shards = plan_shards([0, 40, 0, 50, 0], n_jobs=2)
        assert [(s.recording, s.lo, s.hi) for s in shards] == [
            (1, 0, 40),
            (3, 0, 50),
        ]

    def test_cohort_smaller_than_jobs(self):
        # Two tiny recordings over eight workers: one shard each (never
        # split below the per-shard floor), every window exactly once.
        shards = plan_shards([40, 50], n_jobs=8)
        assert [(s.recording, s.lo, s.hi) for s in shards] == [
            (0, 0, 40),
            (1, 0, 50),
        ]

    def test_one_recording_dominates_the_cohort(self):
        # One recording larger than every other shard combined still
        # splits finely enough that the pool can balance it.
        counts = [4000, 10, 12, 8]
        shards = plan_shards(counts, n_jobs=4)
        giant = [s for s in shards if s.recording == 0]
        assert len(giant) > 1
        assert giant[0].lo == 0 and giant[-1].hi == 4000
        for left, right in zip(giant, giant[1:]):
            assert left.hi == right.lo
        # Small recordings remain one shard each, coverage is exact.
        for recording in (1, 2, 3):
            own = [s for s in shards if s.recording == recording]
            assert [(s.lo, s.hi) for s in own] == [(0, counts[recording])]
        assert sum(s.n_windows for s in shards) == sum(counts)

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            plan_shards([10], n_jobs=0)
        with pytest.raises(ConfigurationError):
            plan_shards([10], n_jobs=1, min_windows_per_shard=0)
        with pytest.raises(ConfigurationError):
            plan_shards([-1], n_jobs=1)


class TestSharedRecordingStore:
    def test_roundtrip_and_cleanup(self, rng):
        data = rng.standard_normal(257)
        store = SharedRecordingStore()
        ref = store.put(data)
        assert ref.length == 257
        block, view = attach_array(ref)
        try:
            np.testing.assert_array_equal(view, data)
            assert not view.flags.writeable
        finally:
            block.close()
        store.close()
        with pytest.raises(FileNotFoundError):
            attach_array(ref)

    def test_context_manager_unlinks(self, rng):
        with SharedRecordingStore() as store:
            ref = store.put(rng.standard_normal(16))
        with pytest.raises(FileNotFoundError):
            attach_array(ref)


class TestFleetRunnerInProcess:
    """jobs=1 exercises the full shard/pack/merge pipeline without a pool."""

    def test_matches_single_process_batched(self):
        recordings = _cohort()
        welch = WelchLomb()
        runner = FleetRunner(welch=welch, n_jobs=1)
        fleet_results = runner.run(recordings, count_ops=True)
        for rr, fleet in zip(recordings, fleet_results):
            single = welch.analyze(rr.times, rr.intervals, count_ops=True)
            np.testing.assert_array_equal(
                fleet.spectrogram, single.spectrogram
            )
            np.testing.assert_array_equal(fleet.averaged, single.averaged)
            np.testing.assert_array_equal(
                fleet.window_times, single.window_times
            )
            np.testing.assert_array_equal(
                fleet.frequencies, single.frequencies
            )
            assert fleet.counts == single.counts
            assert fleet.skipped_windows == single.skipped_windows

    def test_accepts_time_value_pairs(self):
        rr = _cohort(n=1)[0]
        runner = FleetRunner(n_jobs=1)
        by_series = runner.run([rr])[0]
        by_pair = runner.run([(rr.times, rr.intervals)])[0]
        np.testing.assert_array_equal(
            by_series.spectrogram, by_pair.spectrogram
        )

    def test_empty_cohort_rejected(self):
        with pytest.raises(SignalError):
            FleetRunner(n_jobs=1).run([])

    def test_unanalysable_recording_rejected(self):
        times = np.linspace(0.0, 20.0, 24)
        values = 0.8 + 0.01 * np.sin(times)
        with pytest.raises(SignalError):
            FleetRunner(n_jobs=1).run([(times, values)])

    def test_bad_n_jobs(self):
        with pytest.raises(ConfigurationError):
            FleetRunner(n_jobs=0)

    def test_report_geometry(self):
        recordings = _cohort()
        report = FleetRunner(
            welch=WelchLomb(), n_jobs=1, min_windows_per_shard=4
        ).run_report(recordings)
        assert report.n_jobs == 1
        assert report.start_method is None
        assert report.n_shards >= len(recordings)
        assert report.chunk_windows >= 1
        assert len(report.results) == len(recordings)


@pytest.mark.slow
class TestFleetRunnerMultiprocess:
    def test_pool_matches_single_process_batched(self):
        recordings = _cohort()
        welch = WelchLomb()
        with FleetRunner(
            welch=welch, n_jobs=2, min_windows_per_shard=4
        ) as runner:
            report = runner.run_report(recordings, count_ops=True)
        assert report.n_jobs == 2
        assert report.start_method is not None
        for rr, fleet in zip(recordings, report.results):
            single = welch.analyze(rr.times, rr.intervals, count_ops=True)
            np.testing.assert_array_equal(
                fleet.spectrogram, single.spectrogram
            )
            np.testing.assert_array_equal(fleet.averaged, single.averaged)
            assert fleet.counts == single.counts

    def test_window_shards_of_one_huge_recording(self):
        # One recording, forced into several window-range shards.
        rr = generate_tachogram(TachogramSpec(seed=9), 3600.0)
        welch = WelchLomb()
        with FleetRunner(
            welch=welch, n_jobs=2, min_windows_per_shard=8, oversubscription=2
        ) as runner:
            report = runner.run_report([rr])
            # The persistent pool makes repeated runs (the serving
            # pattern) reuse the forked workers.
            again = runner.run([rr])[0]
        assert report.n_shards > 1
        single = welch.analyze(rr.times, rr.intervals)
        np.testing.assert_array_equal(
            report.results[0].spectrogram, single.spectrogram
        )
        np.testing.assert_array_equal(again.spectrogram, single.spectrogram)

    def test_wavelet_dynamic_pruning_counts_identical(self):
        # Dynamic pruning makes executed counts data-dependent — the
        # sharded path must reproduce them exactly.
        rr = generate_tachogram(TachogramSpec(seed=4), 900.0)
        system = QualityScalablePSA(
            pruning=PruningSpec.paper_mode(3, dynamic=True)
        )
        welch = system.welch
        single = welch.analyze(rr.times, rr.intervals, count_ops=True)
        with FleetRunner(
            welch=welch, n_jobs=2, min_windows_per_shard=4
        ) as runner:
            fleet = runner.run([rr], count_ops=True)[0]
        np.testing.assert_array_equal(fleet.spectrogram, single.spectrogram)
        assert fleet.counts == single.counts

    def test_analyze_cohort_matches_analyze(self):
        recordings = _cohort(n=2, seconds=600.0)
        system = ConventionalPSA()
        cohort = system.analyze_cohort(recordings, jobs=2)
        for rr, fleet in zip(recordings, cohort):
            single = system.analyze(rr)
            assert fleet.lf_hf == single.lf_hf
            np.testing.assert_array_equal(
                fleet.window_ratios, single.window_ratios
            )
            assert (
                fleet.detection.is_arrhythmia == single.detection.is_arrhythmia
            )

    def test_custom_chunk_pin_does_not_change_results(self):
        recordings = _cohort(n=2, seconds=600.0)
        welch = WelchLomb(FastLomb(scaling="denormalized"))
        with FleetRunner(welch=welch, n_jobs=2) as runner:
            baseline = runner.run(recordings)
        with FleetRunner(welch=welch, n_jobs=2, chunk_windows=7) as runner:
            pinned = runner.run(recordings)
        for a, b in zip(baseline, pinned):
            np.testing.assert_array_equal(a.spectrogram, b.spectrogram)


def _boom(task):  # must be module-level: pool pickles it by reference
    raise ValueError("injected shard failure")


class TestAttachConcurrency:
    def test_threaded_attaches_leave_tracker_intact(self, rng):
        """Concurrent attaches must not corrupt the resource tracker.

        The pre-3.13 attach fallback swaps ``resource_tracker.register``
        process-globally; unlocked, two racing attaches (a multiplexed
        hub's bread and butter) could leave the no-op installed forever
        or restore the hook mid-attach and register a sibling's block.
        The module lock makes the swap atomic: after any number of
        concurrent attaches the canonical hook must be back.
        """
        import threading
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        data = rng.standard_normal(4096)
        errors: list[Exception] = []
        with SharedRecordingStore() as store:
            ref = store.put(data)

            def worker():
                try:
                    for _ in range(50):
                        block, view = attach_array(ref)
                        try:
                            assert view[0] == data[0]
                            assert view[-1] == data[-1]
                        finally:
                            block.close()
                except Exception as exc:  # pragma: no cover - regression
                    errors.append(exc)

            threads = [threading.Thread(target=worker) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert errors == []
        assert resource_tracker.register is original_register


class TestRunSpans:
    def test_in_process_matches_analyze_spans(self):
        from repro.ffts.providers.registry import set_default_provider
        from repro.lomb.welch import analyze_spans

        rr = _cohort(n=1, seconds=900.0)[0]
        welch = WelchLomb(FastLomb(scaling="denormalized"))
        plan = welch.plan_windows(rr.times, rr.intervals)
        runner = FleetRunner(welch=welch, n_jobs=1, provider="numpy")
        spectra, metrics = runner.run_spans(
            plan.times, plan.values, plan.spans, count_ops=True
        )
        set_default_provider("numpy")
        try:
            reference = analyze_spans(
                welch.analyzer, plan.times, plan.values, plan.spans, True
            )
        finally:
            set_default_provider(None)
        assert len(spectra) == len(reference)
        assert len(metrics) == len(reference)
        for got, want in zip(spectra, reference):
            np.testing.assert_array_equal(got.power, want.power)
            np.testing.assert_array_equal(got.frequencies, want.frequencies)
            assert got.counts == want.counts

    def test_empty_spans_short_circuit(self):
        rr = _cohort(n=1, seconds=600.0)[0]
        runner = FleetRunner(n_jobs=1, provider="numpy")
        assert runner.run_spans(rr.times, rr.intervals, []) == ([], ())


@pytest.mark.slow
class TestRunSpansMultiprocess:
    def test_pool_dispatch_bit_identical(self):
        rr = _cohort(n=1, seconds=2400.0)[0]
        welch = WelchLomb(FastLomb(scaling="denormalized"))
        plan = welch.plan_windows(rr.times, rr.intervals)
        assert plan.n_windows >= 16  # enough to split across workers
        single = FleetRunner(welch=welch, n_jobs=1, provider="numpy")
        reference, ref_metrics = single.run_spans(
            plan.times, plan.values, plan.spans, count_ops=True
        )
        with FleetRunner(
            welch=welch, n_jobs=2, provider="numpy"
        ) as runner:
            spectra, metrics = runner.run_spans(
                plan.times, plan.values, plan.spans, count_ops=True
            )
            # The persistent pool stays up for the next batch.
            assert runner._pool is not None
            again, _ = runner.run_spans(
                plan.times, plan.values, plan.spans[:5]
            )
        assert len(again) == 5
        assert len(spectra) == len(reference)
        assert metrics == ref_metrics
        for got, want in zip(spectra, reference):
            np.testing.assert_array_equal(got.power, want.power)
            assert got.counts == want.counts


@pytest.mark.slow
class TestPoolLifecycle:
    def test_failure_clears_pool_and_key_then_recovers(self, monkeypatch):
        recordings = _cohort(n=2, seconds=600.0)
        runner = FleetRunner(n_jobs=2)
        try:
            with monkeypatch.context() as patch:
                patch.setattr("repro.fleet.runner.run_shard", _boom)
                with pytest.raises(ValueError, match="injected"):
                    runner.run(recordings)
            # The failure path must clear *both* pool handles — a stale
            # key next to a fresh pool would claim the wrong settings.
            assert runner._pool is None
            assert runner._pool_key is None
            assert runner._pool_finalizer is None
            results = runner.run(recordings)  # pool rebuilt cleanly
            assert len(results) == 2
        finally:
            runner.close()

    def test_close_clears_key_and_finalizer(self):
        recordings = _cohort(n=2, seconds=600.0)
        runner = FleetRunner(n_jobs=2)
        runner.run(recordings)
        assert runner._pool is not None
        assert runner._pool_key is not None
        assert runner._pool_finalizer is not None
        runner.close()
        assert runner._pool is None
        assert runner._pool_key is None
        assert runner._pool_finalizer is None
        runner.close()  # idempotent

    def test_abandoned_runner_reaps_workers(self):
        """Dropping an un-closed runner must not strand live workers."""
        import gc
        import os
        import time

        def alive(pid: int) -> bool:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return False
            except PermissionError:  # pragma: no cover - other owner
                return True
            return True

        recordings = _cohort(n=2, seconds=600.0)
        runner = FleetRunner(n_jobs=2)
        runner.run(recordings)
        pids = [worker.pid for worker in runner._pool._pool]
        assert pids and all(alive(pid) for pid in pids)
        del runner
        gc.collect()
        deadline = time.monotonic() + 10.0
        while any(alive(pid) for pid in pids):
            if time.monotonic() > deadline:  # pragma: no cover - hang
                raise AssertionError(
                    f"stranded workers after gc: "
                    f"{[p for p in pids if alive(p)]}"
                )
            time.sleep(0.05)


def _die_holding_first_shard(task):
    """Fork-inherited stand-in for ``run_shard`` that kills its worker.

    The worker claiming shard 0 reports the task start, gives the
    progress queue's feeder thread a moment to flush, then hard-exits —
    the parent must turn the silent loss into a diagnostic RuntimeError.
    """
    from repro.fleet import worker as worker_module
    from repro.fleet.worker import run_shard

    if task.shard_id == 0:
        worker_module._report_task_start(task.shard_id)
        time.sleep(0.3)
        os._exit(3)
    return run_shard(task)


class TestPoolWorkerDeath:
    def test_dead_worker_raises_with_exit_code_and_task(self, monkeypatch):
        """A worker dying mid-shard names its pid, exit code and task.

        Without the watchdog, ``multiprocessing.Pool`` would simply
        never deliver the lost shard's result and the run would hang.
        """
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method required to inherit the stand-in")
        from repro.fleet import runner as runner_module

        monkeypatch.setattr(
            runner_module, "run_shard", _die_holding_first_shard
        )
        with FleetRunner(n_jobs=2, start_method="fork") as runner:
            with pytest.raises(RuntimeError) as excinfo:
                runner.run(_cohort(3))
        message = str(excinfo.value)
        assert "exit code 3" in message
        assert "while running task 0" in message
        # The broken pool was discarded so the next run starts clean.
        assert runner._pool is None
