"""Tests for the HRV substrate (containers, bands, metrics, detection)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SignalError
from repro.hrv import (
    HF_BAND,
    LF_BAND,
    STANDARD_BANDS,
    FrequencyBand,
    RRSeries,
    SinusArrhythmiaDetector,
    band_power,
    band_powers,
    detect_ectopic_mask,
    filter_artifacts,
    lf_hf_ratio,
    pnn50,
    ratio_error,
    rmssd,
    sdnn,
    time_domain_summary,
)


def _series(rng, n=200, mean=0.85, jitter=0.02):
    rr = mean + jitter * rng.standard_normal(n)
    return RRSeries.from_intervals(rr)


class TestRRSeries:
    def test_from_intervals_cumulative_times(self):
        series = RRSeries.from_intervals([0.8, 0.9, 1.0])
        np.testing.assert_allclose(series.times, [0.8, 1.7, 2.7])

    def test_from_beat_times(self):
        series = RRSeries.from_beat_times([0.0, 0.8, 1.7, 2.7])
        np.testing.assert_allclose(series.intervals, [0.8, 0.9, 1.0])
        assert series.n_beats == 3

    def test_properties(self, rng):
        series = _series(rng, n=100, mean=0.8, jitter=0.0)
        assert series.n_beats == 100
        assert np.isclose(series.mean_heart_rate, 75.0)
        assert np.isclose(series.duration, 99 * 0.8)

    def test_plausibility_fraction(self):
        series = RRSeries.from_intervals([0.8, 0.85, 5.0, 0.9])
        assert np.isclose(series.plausibility_fraction(), 0.75)

    def test_slice_time(self, rng):
        series = _series(rng, n=300)
        window = series.slice_time(60.0, 120.0)
        assert window.times[0] >= 60.0
        assert window.times[-1] < 120.0

    def test_head(self, rng):
        series = _series(rng)
        assert series.head(10).n_beats == 10

    def test_validation_errors(self):
        with pytest.raises(SignalError):
            RRSeries(times=np.array([1.0, 0.5]), intervals=np.array([1.0, 0.5]))
        with pytest.raises(SignalError):
            RRSeries(times=np.array([1.0, 2.0]), intervals=np.array([1.0, -0.5]))
        with pytest.raises(SignalError):
            RRSeries(times=np.array([1.0, 2.0, 3.0]), intervals=np.array([1.0, 1.0]))
        with pytest.raises(SignalError):
            RRSeries.from_intervals([0.8, 0.9]).slice_time(5.0, 4.0)


class TestBands:
    def test_standard_bands_partition(self):
        """ULF/VLF/LF/HF tile [0, 0.4) without gaps or overlaps."""
        edges = []
        for band in STANDARD_BANDS:
            edges.append((band.low, band.high))
        for (_, hi), (lo, _) in zip(edges, edges[1:]):
            assert hi == lo
        assert edges[0][0] == 0.0
        assert edges[-1][1] == pytest.approx(0.40)

    def test_paper_band_edges(self):
        assert (LF_BAND.low, LF_BAND.high) == (0.04, 0.15)
        assert (HF_BAND.low, HF_BAND.high) == (0.15, 0.40)

    def test_band_power_rectangle_rule(self):
        freqs = np.linspace(0.01, 0.5, 100)
        power = np.ones(100)
        df = freqs[1] - freqs[0]
        expected = np.count_nonzero(LF_BAND.contains(freqs)) * df
        assert np.isclose(band_power(power, LF_BAND, frequencies=freqs), expected)

    def test_band_powers_keys(self):
        freqs = np.linspace(0.001, 0.45, 200)
        power = np.ones(200)
        result = band_powers(power, frequencies=freqs)
        assert set(result) == {"ULF", "VLF", "LF", "HF"}

    def test_invalid_band(self):
        with pytest.raises(SignalError):
            FrequencyBand("bad", 0.2, 0.1)

    def test_spectrum_object_accepted(self, rng):
        from repro.lomb import FastLomb

        series = _series(rng, n=300)
        spectrum = FastLomb(max_frequency=0.4).periodogram(
            series.times, series.intervals
        )
        assert band_power(spectrum, HF_BAND) >= 0


class TestMetrics:
    def test_lf_hf_ratio_synthetic_spectrum(self):
        freqs = np.linspace(0.005, 0.45, 500)
        power = np.where((freqs >= 0.04) & (freqs < 0.15), 2.0, 0.0)
        power += np.where((freqs >= 0.15) & (freqs < 0.40), 1.0, 0.0)
        ratio = lf_hf_ratio(power, frequencies=freqs)
        # LF: 2.0 over 0.11 Hz; HF: 1.0 over 0.25 Hz -> ratio ~ 0.88.
        assert ratio == pytest.approx(2.0 * 0.11 / 0.25, rel=0.05)

    def test_ratio_error(self):
        assert ratio_error(0.465, 0.45) == pytest.approx(1.0 / 30.0, rel=1e-6)
        with pytest.raises(SignalError):
            ratio_error(1.0, 0.0)

    def test_sdnn_rmssd_known_values(self):
        series = RRSeries.from_intervals([0.8, 0.9, 0.8, 0.9, 0.8])
        assert sdnn(series) == pytest.approx(
            np.std([800, 900, 800, 900, 800], ddof=1)
        )
        assert rmssd(series) == pytest.approx(100.0)

    def test_pnn50(self):
        series = RRSeries.from_intervals([0.8, 0.9, 0.91, 0.92])
        # diffs: 100 ms, 10 ms, 10 ms -> 1 of 3 above 50 ms.
        assert pnn50(series) == pytest.approx(1.0 / 3.0)

    def test_pnn20(self):
        from repro.hrv import pnn20

        series = RRSeries.from_intervals([0.8, 0.9, 0.91, 0.94])
        # diffs: 100 ms, 10 ms, 30 ms -> 2 of 3 above 20 ms.
        assert pnn20(series) == pytest.approx(2.0 / 3.0)
        # pNN20's threshold is laxer, so it can only ever be >= pNN50.
        assert pnn20(series) >= pnn50(series)

    def test_summary_keys(self, rng):
        summary = time_domain_summary(_series(rng))
        assert set(summary) == {
            "mean_rr_ms", "mean_hr_bpm", "sdnn_ms", "rmssd_ms", "sdsd_ms",
            "pnn50", "pnn20",
        }

    def test_window_metrics_batch_flags(self):
        from repro.hrv.metrics import (
            FLAG_ARTIFACT_RUN,
            FLAG_FEW_BEATS,
            FLAG_HIGH_CORRECTED,
            WindowMetrics,
            window_metrics_batch,
        )

        rng = np.random.default_rng(5)
        rr = 0.8 + 0.01 * rng.standard_normal(200)
        corrected = np.zeros(200)
        corrected[100:104] = 1.0  # a 4-beat artifact run
        spans = [(0, 80), (80, 120), (120, 140)]
        metrics = window_metrics_batch(rr, spans, corrected=corrected)
        assert len(metrics) == 3
        assert all(isinstance(m, WindowMetrics) for m in metrics)
        # First window: 80 clean beats, no flags.
        assert metrics[0].flags == 0
        assert metrics[0].n_beats == 80
        # Second window: 40 beats (few), 10% corrected, run of 4.
        assert metrics[1].flags & FLAG_FEW_BEATS
        assert metrics[1].flags & FLAG_HIGH_CORRECTED
        assert metrics[1].flags & FLAG_ARTIFACT_RUN
        assert metrics[1].corrected_fraction == pytest.approx(0.1)
        assert set(metrics[1].flag_names) == {
            "few_beats", "high_corrected", "artifact_run",
        }
        # Round trip through the wire form is exact.
        assert (
            WindowMetrics.from_dict(metrics[1].to_dict()) == metrics[1]
        )

    def test_window_metrics_none_mask_equals_zero_mask(self):
        from repro.hrv.metrics import window_metrics_batch

        rng = np.random.default_rng(9)
        rr = 0.8 + 0.01 * rng.standard_normal(150)
        spans = [(0, 100), (50, 150)]
        assert window_metrics_batch(rr, spans) == window_metrics_batch(
            rr, spans, corrected=np.zeros(150)
        )

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        scale=st.floats(min_value=0.5, max_value=2.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_sdnn_scales_linearly(self, seed, scale):
        rng = np.random.default_rng(seed)
        rr = 0.8 + 0.05 * rng.random(50)
        a = sdnn(RRSeries.from_intervals(rr))
        b = sdnn(RRSeries.from_intervals(rr * scale))
        assert np.isclose(b, a * scale, rtol=1e-9)


class TestPreprocessing:
    def test_clean_series_untouched(self, rng):
        series = _series(rng, jitter=0.01)
        report = filter_artifacts(series)
        assert report.fraction_corrected == 0.0
        np.testing.assert_allclose(report.series.intervals, series.intervals)

    def test_ectopic_detected_and_fixed(self, rng):
        rr = 0.85 + 0.01 * rng.standard_normal(100)
        rr[40] = 0.5   # early ectopic
        rr[41] = 1.2   # compensatory pause
        series = RRSeries.from_intervals(rr)
        mask = detect_ectopic_mask(series.intervals)
        assert mask[40] and mask[41]
        report = filter_artifacts(series)
        assert 40 in report.corrected_indices
        assert abs(report.series.intervals[40] - 0.85) < 0.05

    def test_too_many_artifacts_rejected(self, rng):
        rr = np.where(np.arange(60) % 2 == 0, 0.5, 1.2)
        series = RRSeries.from_intervals(rr + 0.01 * rng.random(60))
        with pytest.raises(SignalError, match="rejected"):
            filter_artifacts(series)

    def test_invalid_parameters(self, rng):
        series = _series(rng)
        with pytest.raises(SignalError):
            detect_ectopic_mask(series.intervals, window=4)
        with pytest.raises(SignalError):
            detect_ectopic_mask(series.intervals[:5], window=11)

    def test_filtering_reduces_hf_leakage(self, rng):
        """Removing ectopics lowers spurious broadband power."""
        from repro.lomb import FastLomb

        rr = 0.85 + 0.02 * np.sin(2 * np.pi * 0.1 * np.arange(200) * 0.85)
        rr = rr + 0.003 * rng.standard_normal(200)
        corrupted = rr.copy()
        for idx in (50, 90, 130):
            corrupted[idx] = 0.45
            corrupted[idx + 1] = 1.3
        clean = filter_artifacts(RRSeries.from_intervals(corrupted)).series
        engine = FastLomb(max_frequency=0.4)
        hf_dirty = engine.periodogram(
            *(lambda s: (s.times, s.intervals))(RRSeries.from_intervals(corrupted))
        ).band_power(0.15, 0.4)
        hf_clean = engine.periodogram(clean.times, clean.intervals).band_power(
            0.15, 0.4
        )
        assert hf_clean < hf_dirty


class TestDetection:
    def _spectrum(self, ratio):
        freqs = np.linspace(0.005, 0.45, 500)
        power = np.where((freqs >= 0.15) & (freqs < 0.40), 1.0, 0.0)
        lf_level = ratio * 0.25 / 0.11
        power += np.where((freqs >= 0.04) & (freqs < 0.15), lf_level, 0.0)
        return freqs, power

    def test_classify_arrhythmia(self):
        freqs, power = self._spectrum(ratio=0.45)
        detector = SinusArrhythmiaDetector()
        result = detector.classify_spectrum(power, frequencies=freqs)
        assert result.is_arrhythmia
        assert result.margin < 0

    def test_classify_healthy(self):
        freqs, power = self._spectrum(ratio=2.5)
        result = SinusArrhythmiaDetector().classify_spectrum(
            power, frequencies=freqs
        )
        assert not result.is_arrhythmia

    def test_agreement(self):
        detector = SinusArrhythmiaDetector()
        freqs, power = self._spectrum(0.4)
        a = detector.classify_spectrum(power, frequencies=freqs)
        freqs, power = self._spectrum(0.47)  # approximated ratio, same side
        b = detector.classify_spectrum(power, frequencies=freqs)
        assert detector.agreement(a, b)

    def test_classify_windows(self, rng):
        from repro.lomb import FastLomb, WelchLomb
        from repro.ecg import make_cohort, Condition

        patient = make_cohort(n_arrhythmia=1, n_healthy=0).patients[0]
        rr = patient.rr_series(duration=480.0)
        result = WelchLomb(FastLomb(max_frequency=0.45)).analyze(
            rr.times, rr.intervals
        )
        decision = SinusArrhythmiaDetector().classify_windows(result)
        assert decision.is_arrhythmia
        assert decision.window_ratios.size == result.n_windows

    def test_threshold_validation(self):
        with pytest.raises(Exception):
            SinusArrhythmiaDetector(threshold=-1.0)
