"""Tests for the fixed-point substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FixedPointError
from repro.ffts import PruningSpec, WaveletFFT
from repro.fixedpoint import (
    ComplexFixed,
    FixedPointContext,
    FixedPointWaveletFFT,
    Q15,
    Q31,
    Q1_14,
    QFormat,
    complex_multiply,
    fixed_point_dwt_level,
    fixed_point_fft,
    sqnr_db,
)


class TestQFormat:
    def test_q15_ranges(self):
        assert Q15.total_bits == 16
        assert Q15.max_int == 32767
        assert Q15.min_int == -32768
        assert Q15.resolution == pytest.approx(1.0 / 32768.0)

    def test_quantize_roundtrip_within_lsb(self, rng):
        x = rng.uniform(-0.99, 0.99, 100)
        back = Q15.to_float(Q15.quantize(x))
        assert np.max(np.abs(back - x)) <= Q15.resolution / 2 + 1e-12

    def test_saturation(self):
        raw = Q15.quantize([2.0, -2.0])
        assert raw[0] == Q15.max_int
        assert raw[1] == Q15.min_int

    def test_overflow_raise_mode(self):
        with pytest.raises(FixedPointError, match="overflows"):
            Q15.quantize([1.5], overflow="raise")

    def test_truncate_vs_nearest(self):
        value = 0.7 + Q15.resolution * 0.9
        nearest = Q15.quantize(value, rounding="nearest")
        truncated = Q15.quantize(value, rounding="truncate")
        assert nearest == truncated + 1

    def test_invalid_formats(self):
        with pytest.raises(FixedPointError):
            QFormat(integer_bits=-1, fraction_bits=15)
        with pytest.raises(FixedPointError):
            QFormat(integer_bits=0, fraction_bits=0)
        with pytest.raises(FixedPointError):
            QFormat(integer_bits=40, fraction_bits=40)

    def test_unknown_modes(self):
        with pytest.raises(FixedPointError):
            Q15.quantize([0.1], rounding="stochastic")
        with pytest.raises(FixedPointError):
            Q15.handle_overflow(np.array([1]), overflow="wrap")

    @given(
        value=st.floats(min_value=-0.95, max_value=0.95),
        frac=st.integers(min_value=8, max_value=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_quantize_error_bounded_property(self, value, frac):
        # Values stay away from the format edge so saturation never bites.
        fmt = QFormat(integer_bits=0, fraction_bits=frac)
        back = float(fmt.to_float(fmt.quantize(value)))
        assert abs(back - value) <= fmt.resolution / 2 + 1e-15

    @given(value=st.floats(min_value=-0.9, max_value=0.9))
    @settings(max_examples=30, deadline=None)
    def test_quantize_idempotent_property(self, value):
        once = Q15.quantize(value)
        twice = Q15.quantize(Q15.to_float(once))
        assert int(once) == int(twice)


class TestArithmetic:
    def test_add_saturates_and_counts(self):
        ctx = FixedPointContext(fmt=Q15)
        result = ctx.add([Q15.max_int], [100])
        assert result[0] == Q15.max_int
        assert ctx.saturations == 1
        assert ctx.saturation_rate > 0

    def test_multiply_matches_float(self, rng):
        ctx = FixedPointContext(fmt=Q15)
        a, b = rng.uniform(-0.9, 0.9, 50), rng.uniform(-0.9, 0.9, 50)
        product = Q15.to_float(ctx.multiply(Q15.quantize(a), Q15.quantize(b)))
        assert np.max(np.abs(product - a * b)) < 3 * Q15.resolution

    def test_multiply_rounding_symmetry(self):
        """Round-to-nearest must be symmetric in sign."""
        ctx = FixedPointContext(fmt=Q15)
        a = Q15.quantize(0.3)
        b = Q15.quantize(0.31)
        pos = ctx.multiply(a, b)
        neg = ctx.multiply(-a, b)
        assert int(pos) == -int(neg)

    def test_shift_right_rounds(self):
        ctx = FixedPointContext(fmt=Q15)
        assert ctx.shift_right(np.array([5]), 1)[0] == 3  # 2.5 -> 3
        assert ctx.shift_right(np.array([-5]), 1)[0] == -3
        with pytest.raises(FixedPointError):
            ctx.shift_right(np.array([1]), -1)

    def test_complex_multiply(self, rng):
        ctx = FixedPointContext(fmt=Q31)
        a = 0.4 * (rng.uniform(-1, 1, 20) + 1j * rng.uniform(-1, 1, 20))
        b = 0.4 * (rng.uniform(-1, 1, 20) + 1j * rng.uniform(-1, 1, 20))
        qa = ComplexFixed.from_complex(a, Q31)
        qb = ComplexFixed.from_complex(b, Q31)
        result = complex_multiply(ctx, qa, qb).to_complex(Q31)
        np.testing.assert_allclose(result, a * b, atol=1e-8)

    def test_complex_shape_mismatch(self):
        with pytest.raises(FixedPointError):
            ComplexFixed(real=np.zeros(3), imag=np.zeros(4))


class TestKernels:
    def test_dwt_level_accuracy(self, rng):
        from repro.wavelets import dwt_level

        x = 0.2 * rng.standard_normal(128)
        lo, hi = fixed_point_dwt_level(x, "haar", Q15)
        flo, fhi = dwt_level(x, "haar")
        assert sqnr_db(flo, lo.values) > 60
        assert sqnr_db(fhi + 1e-12, hi.values + 1e-12) > 30

    def test_dwt_level_db4(self, rng):
        from repro.wavelets import dwt_level

        x = 0.2 * rng.standard_normal(128)
        lo, _ = fixed_point_dwt_level(x, "db4", Q15)
        flo, _ = dwt_level(x, "db4")
        assert sqnr_db(flo, lo.values) > 55

    def test_fft_q15_sqnr(self, rng):
        z = 0.2 * (rng.standard_normal(256) + 1j * rng.standard_normal(256))
        result = fixed_point_fft(z, Q15)
        assert sqnr_db(np.fft.fft(z), result.values) > 40
        assert result.saturations == 0

    def test_fft_q31_much_better(self, rng):
        z = 0.2 * (rng.standard_normal(256) + 1j * rng.standard_normal(256))
        q15 = sqnr_db(np.fft.fft(z), fixed_point_fft(z, Q15).values)
        q31 = sqnr_db(np.fft.fft(z), fixed_point_fft(z, Q31).values)
        assert q31 > q15 + 60

    def test_fft_never_saturates_with_stage_scaling(self, rng):
        """Unity-headroom scaling: even full-scale input cannot clip."""
        z = 0.99 * np.exp(2j * np.pi * rng.random(128))
        result = fixed_point_fft(z, Q15)
        assert result.saturations == 0

    def test_wavelet_fft_q15(self, rng):
        z = 0.2 * (rng.standard_normal(256) + 1j * rng.standard_normal(256))
        result = FixedPointWaveletFFT(256, "haar", Q15).transform(z)
        assert sqnr_db(np.fft.fft(z), result.values) > 40

    def test_wavelet_fft_matches_float_pruned(self, rng):
        """Quantisation noise, not pruning, is the only difference."""
        z = 0.2 * (rng.standard_normal(128) + 1j * rng.standard_normal(128))
        for spec in (PruningSpec.band_only(), PruningSpec.paper_mode(3)):
            float_out = WaveletFFT(128, pruning=spec).transform(z)
            fixed_out = FixedPointWaveletFFT(128, "haar", Q15, pruning=spec)
            assert sqnr_db(float_out, fixed_out.transform(z).values) > 38

    def test_pruning_conclusion_survives_quantisation(self, rng):
        """Ablation: band-drop error dominates Q15 noise, so the paper's
        quality ordering is unchanged on the integer datapath."""
        t = np.arange(256) / 256.0
        x = 0.3 * np.sin(2 * np.pi * 5 * t) + 0.02 * rng.standard_normal(256)
        exact = np.fft.fft(x)
        q_exact = FixedPointWaveletFFT(256, "haar", Q15).transform(x).values
        q_banddrop = (
            FixedPointWaveletFFT(256, "haar", Q15, pruning=PruningSpec.band_only())
            .transform(x)
            .values
        )
        err_exact = float(np.mean(np.abs(q_exact - exact) ** 2))
        err_pruned = float(np.mean(np.abs(q_banddrop - exact) ** 2))
        assert err_exact < err_pruned  # pruning, not quantisation, dominates

    def test_q1_14_headroom(self, rng):
        """The 1-integer-bit format tolerates sqrt(2)-gain intermediates."""
        z = 0.6 * (rng.standard_normal(64) + 1j * rng.standard_normal(64))
        result = FixedPointWaveletFFT(64, "haar", Q1_14).transform(z)
        assert sqnr_db(np.fft.fft(z), result.values) > 35

    def test_dynamic_pruning_rejected(self):
        with pytest.raises(FixedPointError, match="dynamic"):
            FixedPointWaveletFFT(
                64, pruning=PruningSpec.paper_mode(1, dynamic=True)
            )

    def test_wrong_length_rejected(self, rng):
        plan = FixedPointWaveletFFT(64)
        with pytest.raises(FixedPointError):
            plan.transform(rng.standard_normal(32))

    def test_sqnr_helpers(self):
        with pytest.raises(FixedPointError):
            sqnr_db(np.zeros(4), np.zeros(3))
        assert sqnr_db(np.ones(4), np.ones(4)) == float("inf")
        with pytest.raises(FixedPointError):
            sqnr_db(np.zeros(4), np.ones(4))
