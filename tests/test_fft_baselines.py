"""Tests for the conventional FFT kernels (DFT, radix-2, split radix)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.ffts import (
    OpCounts,
    bit_reverse_permutation,
    direct_dft,
    direct_dft_counts,
    radix2_counts,
    radix2_fft,
    split_radix_counts,
    split_radix_fft,
)


def _random_complex(rng, n):
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


class TestOpCounts:
    def test_add_and_scale(self):
        a = OpCounts(mults=2, adds=3, compares=1)
        b = OpCounts(mults=1, adds=1)
        assert (a + b) == OpCounts(mults=3, adds=4, compares=1)
        assert a.scaled(3) == OpCounts(mults=6, adds=9, compares=3)

    def test_sum_builtin(self):
        parts = [OpCounts(mults=1), OpCounts(adds=2), OpCounts(compares=3)]
        assert sum(parts, OpCounts()) == OpCounts(1, 2, 3)
        assert sum(parts) == OpCounts(1, 2, 3)

    def test_total_and_dict(self):
        c = OpCounts(mults=4, adds=2, compares=1)
        assert c.total == 7
        assert c.arithmetic == 6
        assert c.as_dict()["total"] == 7

    def test_savings_vs(self):
        baseline = OpCounts(mults=50, adds=50)
        cheap = OpCounts(mults=20, adds=30)
        assert np.isclose(cheap.savings_vs(baseline), 0.5)
        assert cheap.savings_vs(baseline) > 0 > baseline.savings_vs(cheap)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            OpCounts(mults=1).scaled(-1)


class TestDirectDft:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 17, 64])
    def test_matches_numpy(self, n, rng):
        x = _random_complex(rng, n)
        np.testing.assert_allclose(direct_dft(x), np.fft.fft(x), atol=1e-8)

    def test_counts_quadratic(self):
        c16, c32 = direct_dft_counts(16), direct_dft_counts(32)
        assert 3.5 < c32.total / c16.total < 4.5


class TestRadix2:
    @pytest.mark.parametrize("n", [2, 4, 8, 64, 512])
    def test_matches_numpy(self, n, rng):
        x = _random_complex(rng, n)
        np.testing.assert_allclose(radix2_fft(x), np.fft.fft(x), atol=1e-8)

    def test_bit_reverse_is_involution(self):
        perm = bit_reverse_permutation(64)
        assert np.array_equal(perm[perm], np.arange(64))

    def test_counts_n8(self):
        # N=8 stages (span 1, 2, 4) have 0, 0 and 2 generic complex mults;
        # each stage performs 8 complex adds, plus 2 real adds per generic mult.
        counts = radix2_counts(8)
        assert counts.mults == 2 * 4
        assert counts.adds == 3 * 16 + 2 * 2

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigurationError):
            radix2_fft(np.ones(12))


class TestSplitRadix:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 128, 512, 1024])
    def test_matches_numpy(self, n, rng):
        x = _random_complex(rng, n)
        np.testing.assert_allclose(split_radix_fft(x), np.fft.fft(x), atol=1e-7)

    def test_real_input_hermitian_output(self, rng):
        x = rng.standard_normal(64)
        spectrum = split_radix_fft(x)
        np.testing.assert_allclose(
            spectrum[1:], np.conj(spectrum[1:][::-1]), atol=1e-9
        )

    @pytest.mark.parametrize(
        "n,mults,adds",
        [(2, 0, 4), (4, 0, 16), (8, 4, 52), (16, 20, 148), (512, 3076, 12292),
         (1024, 7172, 27652)],
    )
    def test_closed_form_counts(self, n, mults, adds):
        counts = split_radix_counts(n)
        assert counts.mults == mults
        assert counts.adds == adds

    def test_split_radix_beats_radix2(self):
        """The baseline choice in the paper: split radix is the cheaper FFT."""
        assert split_radix_counts(512).total < radix2_counts(512).total

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        log_n=st.integers(min_value=0, max_value=9),
    )
    @settings(max_examples=30, deadline=None)
    def test_linearity_property(self, seed, log_n):
        rng = np.random.default_rng(seed)
        n = 1 << log_n
        x, y = _random_complex(rng, n), _random_complex(rng, n)
        lhs = split_radix_fft(x + 2.0 * y)
        rhs = split_radix_fft(x) + 2.0 * split_radix_fft(y)
        np.testing.assert_allclose(lhs, rhs, atol=1e-7)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_parseval_property(self, seed):
        rng = np.random.default_rng(seed)
        x = _random_complex(rng, 256)
        spectrum = split_radix_fft(x)
        energy_time = float(np.sum(np.abs(x) ** 2))
        energy_freq = float(np.sum(np.abs(spectrum) ** 2)) / 256
        assert np.isclose(energy_time, energy_freq, rtol=1e-9)
