"""Smoke test: the service benchmark script must keep running.

Runs :func:`run_service_benchmark` on a tiny cohort and checks the
document structure the full run commits to ``BENCH_service.json`` —
including the exactness guarantee both paths carry (results
bit-identical to whole-recording analysis in wire form).
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

import pytest

BENCHMARKS = pathlib.Path(__file__).parent.parent / "benchmarks"


def _load_module():
    spec = importlib.util.spec_from_file_location(
        "bench_service", BENCHMARKS / "bench_service.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_service", module)
    spec.loader.exec_module(module)
    return module


@pytest.mark.slow
def test_service_benchmark_smoke(tmp_path):
    bench = _load_module()
    document = bench.run_service_benchmark(
        n_subjects=2,
        duration_minutes=8.0,
        burst_seconds=60.0,
        repeats=1,
    )
    workload = document["workload"]
    assert workload["n_subjects"] == 2
    assert workload["n_windows_total"] >= 6
    paths = document["paths"]
    assert set(paths) == {"inprocess", "gateway"}
    for name in ("inprocess", "gateway"):
        entry = paths[name]
        assert entry["windows_per_sec"] > 0
        # A tiny replay can finish feeding before any window frame
        # comes back down the socket, so live windows (and their
        # latencies) may be empty on the gateway path.
        assert entry["live_windows"] >= 0
        if entry["live_windows"]:
            assert entry["per_window_latency"]["mean_ms"] > 0
        # The service layer's core promise, checked on every run.
        assert entry["bit_identical"] is True
    assert paths["inprocess"]["live_windows"] > 0
    wire = paths["gateway"]["wire"]
    assert wire["bytes_sent"] > 0
    assert wire["bytes_received"] > wire["bytes_sent"]  # windows + results
    assert wire["bytes_per_window"] > 0
    assert wire["live_window_frames"] > 0
    assert document["slowdown_gateway_vs_inprocess"] > 0
    # document must round-trip through JSON (what main() writes)
    out = tmp_path / "BENCH_service.json"
    out.write_text(json.dumps(document, indent=2))
    assert json.loads(out.read_text()) == document


@pytest.mark.slow
def test_service_benchmark_main_writes_json(tmp_path, capsys):
    bench = _load_module()
    out = tmp_path / "bench.json"
    bench.main(
        [
            "--subjects", "2",
            "--minutes", "6",
            "--burst-seconds", "90",
            "--repeats", "1",
            "--output", str(out),
        ]
    )
    document = json.loads(out.read_text())
    assert document["workload"]["n_subjects"] == 2
    assert "windows/s" in capsys.readouterr().out
