"""Legacy call paths: kept working, delegating, and warning exactly once.

PR 4 moved execution kwargs onto the declarative
:class:`~repro.engine.EngineConfig`.  The historical spellings —
``analyze_cohort(jobs=, provider=)`` and ``WelchLomb.analyze(batched=)``
— remain thin wrappers over the facade: same results, exactly one
:class:`DeprecationWarning` per call, and **no** warning when the moved
kwargs are not used.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import ConventionalPSA, Engine, EngineConfig, QualityScalablePSA
from repro.ecg.database import make_cohort
from repro.ffts.pruning import PruningSpec
from repro.lomb.fast import FastLomb
from repro.lomb.welch import WelchLomb


@pytest.fixture(scope="module")
def recording():
    return make_cohort().get("rsa-03").rr_series(duration=420.0)


def _deprecations(record):
    return [w for w in record if issubclass(w.category, DeprecationWarning)]


class TestWelchAnalyzeBatchedShim:
    @pytest.mark.parametrize("batched", [True, False])
    def test_warns_exactly_once_and_matches_facade(self, recording, batched):
        welch = WelchLomb(FastLomb(max_frequency=0.4, scaling="denormalized"))
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            legacy = welch.analyze(
                recording.times, recording.intervals, batched=batched
            )
        assert len(_deprecations(record)) == 1
        assert "batched" in str(_deprecations(record)[0].message)
        modern = welch.analyze_windows(
            recording.times, recording.intervals, batched=batched
        )
        assert np.array_equal(legacy.spectrogram, modern.spectrogram)
        assert np.array_equal(legacy.frequencies, modern.frequencies)

    def test_no_warning_without_kwarg(self, recording):
        welch = WelchLomb(FastLomb(max_frequency=0.4, scaling="denormalized"))
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            welch.analyze(recording.times, recording.intervals)
        assert _deprecations(record) == []

    def test_system_analyze_batched_warns(self, recording):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            legacy = ConventionalPSA().analyze(recording, batched=False)
        assert len(_deprecations(record)) == 1
        modern = ConventionalPSA().analyze(recording)
        assert np.array_equal(
            legacy.welch.spectrogram, modern.welch.spectrogram
        )


class TestAnalyzeCohortShim:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"jobs": 1},
            {"provider": "numpy"},
            {"jobs": 1, "provider": "numpy"},
        ],
    )
    def test_warns_exactly_once_and_matches_facade(self, recording, kwargs):
        system = QualityScalablePSA(pruning=PruningSpec.paper_mode(3))
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            legacy = system.analyze_cohort([recording], **kwargs)
        assert len(_deprecations(record)) == 1
        assert "EngineConfig" in str(_deprecations(record)[0].message)

        config = EngineConfig.for_mode(
            "set3",
            provider=kwargs.get("provider"),
            jobs=kwargs.get("jobs", 1),
        )
        with Engine(config) as engine:
            facade = engine.analyze_cohort([recording])
        assert len(legacy) == len(facade) == 1
        assert np.array_equal(
            legacy[0].welch.spectrogram, facade[0].welch.spectrogram
        )
        assert legacy[0].lf_hf == facade[0].lf_hf
        assert legacy[0].band_powers == facade[0].band_powers

    def test_no_warning_without_moved_kwargs(self, recording):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            results = ConventionalPSA().analyze_cohort(
                [recording], count_ops=True
            )
        assert _deprecations(record) == []
        single = ConventionalPSA().analyze(recording, count_ops=True)
        assert np.array_equal(
            results[0].welch.spectrogram, single.welch.spectrogram
        )
        assert results[0].counts == single.counts

    def test_still_validates_recordings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.errors import SignalError

            with pytest.raises(SignalError, match="RRSeries"):
                ConventionalPSA().analyze_cohort([(1, 2, 3)], jobs=1)
