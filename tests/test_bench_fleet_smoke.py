"""Smoke test: the fleet benchmark script must keep running.

Runs :func:`run_fleet_benchmark` on a tiny two-patient cohort with two
workers and checks the document structure the full run commits to
``BENCH_fleet.json`` — including the engine's exactness guarantees
(bit-identical spectrograms, equal operation counts).
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

import pytest

BENCHMARKS = pathlib.Path(__file__).parent.parent / "benchmarks"


def _load_module():
    spec = importlib.util.spec_from_file_location(
        "bench_fleet", BENCHMARKS / "bench_fleet.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_fleet", module)
    spec.loader.exec_module(module)
    return module


@pytest.mark.slow
def test_fleet_benchmark_smoke(tmp_path):
    bench = _load_module()
    document = bench.run_fleet_benchmark(
        n_patients=2, duration_hours=0.2, jobs=2, repeats=1, workers=1
    )
    assert document["workload"]["n_windows_total"] >= 6
    assert document["host"]["cpu_count"] >= 1
    assert document["host"]["jobs"] == 2
    systems = document["systems"]
    assert set(systems) == {
        "conventional_split_radix",
        "quality_scalable_wavelet_mode3",
    }
    for entry in systems.values():
        assert entry["sequential_windows_per_sec"] > 0
        assert entry["batched_windows_per_sec"] > 0
        assert entry["sharded_windows_per_sec"] > 0
        # the sharded engine must reproduce the batched path bit-exactly
        assert entry["max_rel_diff_spectrogram"] == 0.0
        assert entry["op_counts_equal"] is True
        assert entry["n_shards"] >= 1
    distributed = document["distributed"]
    assert distributed["n_workers"] == 1
    assert set(distributed["systems"]) == set(systems)
    for entry in distributed["systems"].values():
        # localhost daemons must reproduce the batched path bit-exactly
        assert entry["max_rel_diff_spectrogram"] == 0.0
        assert entry["op_counts_equal"] is True
        assert entry["n_remote_workers"] == 1
        assert entry["wire_bytes_per_window"] > 0
    # document must round-trip through JSON (what main() writes)
    out = tmp_path / "BENCH_fleet.json"
    out.write_text(json.dumps(document, indent=2))
    assert json.loads(out.read_text()) == document


@pytest.mark.slow
def test_fleet_benchmark_main_writes_json(tmp_path, capsys):
    bench = _load_module()
    out = tmp_path / "bench.json"
    bench.main(
        [
            "--patients", "2",
            "--hours", "0.2",
            "--jobs", "2",
            "--repeats", "1",
            "--workers", "0",
            "--output", str(out),
        ]
    )
    document = json.loads(out.read_text())
    assert document["workload"]["n_patients"] == 2
    assert "distributed" not in document
    assert "windows/s" in capsys.readouterr().out
