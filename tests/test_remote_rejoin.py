"""Remote-worker rejoin and the configurable worker timeout.

Satellite coverage of PR 8's robustness work on the socket transport:
:meth:`RemoteWorker.reconnect` (bounded exponential backoff with
deterministic jitter, cumulative ``reconnects``/``connect_failures``
counters, refusals not retried), scheduler re-admission after an
injected mid-run death, and the ``worker_timeout`` resolution chain
(explicit → config → ``REPRO_WORKER_TIMEOUT`` env pin → default).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Engine, EngineConfig
from repro.envpins import WORKER_TIMEOUT_ENV_VAR, worker_timeout_env_pin
from repro.errors import ConfigurationError
from repro.fleet.remote import (
    DEFAULT_TIMEOUT,
    RECONNECT_ATTEMPTS,
    RemoteWorker,
    WorkerDaemon,
    run_worker_daemon,
)
from repro.testing import WorkerDeathTrigger


@pytest.fixture(scope="module")
def shared_daemon():
    with WorkerDaemon() as daemon:
        daemon.start()
        yield daemon


def make_hello(config=None):
    config = config or EngineConfig()
    resolved = config.resolve()
    return {
        "config": config.to_dict(),
        "provider": resolved.provider,
        "chunk_windows": resolved.chunk_windows,
    }


class TestReconnect:
    def test_rejoins_after_connection_drop(self, shared_daemon):
        worker = RemoteWorker(shared_daemon.address, timeout=10.0)
        hello = make_hello()
        worker.connect(hello)
        assert worker.reconnects == 0
        worker._drop()  # the wire dies; the daemon survives
        info = worker.reconnect(hello, base_delay=0.001)
        assert info["provider"] == hello["provider"]
        assert worker.reconnects == 1
        assert worker.connect_failures == 0
        worker.reset_arrays()  # ping/pong works on the new session
        worker.close()

    def test_gives_up_after_bounded_attempts(self):
        worker = RemoteWorker("127.0.0.1:9", timeout=0.25)
        with pytest.raises(ConnectionError, match="2 reconnect attempts"):
            worker.reconnect(
                make_hello(), attempts=2, base_delay=0.001, max_delay=0.002
            )
        assert worker.connect_failures == 2
        assert worker.reconnects == 0

    def test_refusal_is_not_retried(self, shared_daemon):
        """A daemon that *answers* and refuses fails fast, no backoff."""
        worker = RemoteWorker(shared_daemon.address, timeout=10.0)
        hello = make_hello()
        hello["provider"] = "no-such-provider"
        with pytest.raises(ConfigurationError, match="not available"):
            worker.reconnect(hello, base_delay=0.001)
        worker.close()

    def test_default_attempt_budget_is_bounded(self):
        assert 1 <= RECONNECT_ATTEMPTS <= 10

    def test_jitter_is_deterministic_per_address(self):
        """Same address+attempt always sleeps the same; addresses differ."""
        import zlib

        def jitter(address, attempt):
            seed = zlib.crc32(f"{address}#{attempt}".encode())
            return 0.5 * (seed % 1000) / 1000.0

        assert jitter("a:1", 0) == jitter("a:1", 0)
        assert jitter("a:1", 0) != jitter("b:1", 0)


@pytest.mark.slow
class TestSchedulerReadmission:
    def test_flush_survives_injected_death_and_rejoins(self, shared_daemon):
        rng = np.random.default_rng(11)
        warm_rr = 0.8 + 0.05 * rng.standard_normal(3000)
        warm_t = np.cumsum(warm_rr)
        rr = 0.8 + 0.05 * rng.standard_normal(6000)
        t2 = float(warm_t[-1]) + np.cumsum(rr)
        config = EngineConfig(system="quality-scalable", jobs=1)
        with Engine(config) as local:
            stream = local.open_stream()
            reference = stream.feed(warm_t, warm_rr)
            reference += stream.feed(t2, rr)
        remote_config = config.replace(workers=(shared_daemon.address,))
        with Engine(remote_config) as engine:
            hub = engine.open_hub()
            session = hub.open("chaos")
            session.feed(warm_t, warm_rr)
            hub.flush()
            runner = engine._ensure_fleet()
            worker = runner._remote_registry[shared_daemon.address]
            baseline = worker.reconnects
            trigger = WorkerDeathTrigger(worker, after_tasks=0)
            session.feed(t2, rr)
            hub.flush()
            trigger.cancel()
            assert trigger.deaths == 1
            stats = runner.transport_stats()[shared_daemon.address]
            assert stats["reconnects"] >= baseline + 1
            # The death-interrupted run emitted the same spectra the
            # in-process engine computes for the identical history.
            emissions = session.emissions
            assert len(emissions) == len(reference)
            for got, want in zip(emissions, reference):
                assert np.array_equal(
                    got.spectrum.power, want.spectrum.power
                )


class TestWorkerTimeoutResolution:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(WORKER_TIMEOUT_ENV_VAR, raising=False)
        resolved = EngineConfig().resolve()
        assert resolved.worker_timeout == DEFAULT_TIMEOUT
        assert resolved.worker_timeout_source == "default"

    def test_config_field(self, monkeypatch):
        monkeypatch.setenv(WORKER_TIMEOUT_ENV_VAR, "99")
        resolved = EngineConfig(worker_timeout=3.5).resolve()
        assert resolved.worker_timeout == 3.5
        assert resolved.worker_timeout_source == "config"

    def test_explicit_beats_config(self):
        resolved = EngineConfig(worker_timeout=3.5).resolve(
            worker_timeout=2.0
        )
        assert resolved.worker_timeout == 2.0
        assert resolved.worker_timeout_source == "explicit"

    def test_env_pin(self, monkeypatch):
        monkeypatch.setenv(WORKER_TIMEOUT_ENV_VAR, "7.5")
        resolved = EngineConfig().resolve()
        assert resolved.worker_timeout == 7.5
        assert resolved.worker_timeout_source == "env"

    def test_env_pin_helper_validates(self, monkeypatch):
        monkeypatch.setenv(WORKER_TIMEOUT_ENV_VAR, "not-a-number")
        with pytest.raises(ConfigurationError, match=WORKER_TIMEOUT_ENV_VAR):
            worker_timeout_env_pin()
        monkeypatch.setenv(WORKER_TIMEOUT_ENV_VAR, "0")
        with pytest.raises(ConfigurationError, match=WORKER_TIMEOUT_ENV_VAR):
            worker_timeout_env_pin()
        monkeypatch.setenv(WORKER_TIMEOUT_ENV_VAR, "")
        assert worker_timeout_env_pin() is None
        monkeypatch.delenv(WORKER_TIMEOUT_ENV_VAR)
        assert worker_timeout_env_pin() is None

    @pytest.mark.parametrize("bad", [0, -1.0, "soon"])
    def test_config_rejects_bad_timeout(self, bad):
        with pytest.raises(ConfigurationError, match="worker_timeout"):
            EngineConfig(worker_timeout=bad)

    def test_resolve_rejects_bad_explicit(self):
        with pytest.raises(ConfigurationError, match="worker_timeout"):
            EngineConfig().resolve(worker_timeout=0.0)

    def test_round_trips_through_dict(self):
        config = EngineConfig(worker_timeout=4.25)
        assert EngineConfig.from_dict(config.to_dict()).worker_timeout == 4.25

    def test_engine_passes_timeout_to_fleet(self):
        with Engine(EngineConfig(worker_timeout=6.0, jobs=1)) as engine:
            assert engine.resolved.worker_timeout == 6.0
            assert engine._ensure_fleet().worker_timeout == 6.0


class TestDaemonHeartbeatOption:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ConfigurationError, match="heartbeat"):
            run_worker_daemon("127.0.0.1:0", heartbeat_interval=0.0)

    def test_daemon_carries_interval(self):
        with WorkerDaemon(heartbeat_interval=0.25) as daemon:
            assert daemon.heartbeat_interval == 0.25
