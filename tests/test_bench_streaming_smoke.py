"""Smoke test: the streaming benchmark script must keep running.

Runs :func:`run_streaming_benchmark` on a tiny three-subject cohort and
checks the document structure the full run commits to
``BENCH_streaming.json`` — including the exactness guarantees both
replay paths carry (bit-identical spectrograms, equal operation
counts vs whole-recording analysis).
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

import pytest

BENCHMARKS = pathlib.Path(__file__).parent.parent / "benchmarks"


def _load_module():
    spec = importlib.util.spec_from_file_location(
        "bench_streaming", BENCHMARKS / "bench_streaming.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_streaming", module)
    spec.loader.exec_module(module)
    return module


@pytest.mark.slow
def test_streaming_benchmark_smoke(tmp_path):
    bench = _load_module()
    document = bench.run_streaming_benchmark(
        n_subjects=3,
        duration_minutes=8.0,
        burst_seconds=60.0,
        repeats=1,
        slo_target_ms=30.0,
    )
    workload = document["workload"]
    assert workload["n_subjects"] == 3
    assert workload["n_windows_total"] >= 9
    assert workload["n_rounds"] >= 8
    paths = document["paths"]
    assert set(paths) == {"independent", "hub", "speedup_hub_vs_independent"}
    for name in ("independent", "hub"):
        entry = paths[name]
        assert entry["windows_per_sec"] > 0
        assert entry["live_windows"] > 0
        assert entry["per_window_latency"]["mean_ms"] > 0
        assert entry["per_window_latency"]["p95_ms"] > 0
        # Both replay paths must reproduce batch analysis bit-exactly.
        assert entry["max_rel_diff_spectrogram"] == 0.0
        assert entry["op_counts_equal"] is True
    assert paths["speedup_hub_vs_independent"] > 0
    steady = document["steady_state"]
    assert set(steady) == {
        "warmup_rounds_skipped",
        "arena",
        "no_arena",
        "alloc_reduction_factor",
    }
    for variant in ("arena", "no_arena"):
        entry = steady[variant]
        assert entry["windows"] > 0
        assert entry["alloc_bytes_per_window"] >= 0
        assert entry["flush_latency_p95_ms"] > 0
    # The arena must cut steady-state allocation churn (the committed
    # full-size run shows the headline factor; the tiny smoke cohort
    # just has to show a real reduction).
    assert steady["alloc_reduction_factor"] > 1.0
    # The SLO-defense leg: under the same deterministic overload the
    # controller must shed quality and pull the steady-state p95 below
    # the uncontrolled replay's.
    shedding = document["shedding"]
    off, on = shedding["controller_off"], shedding["controller_on"]
    assert off["windows"] == on["windows"] > 0
    assert off["shed_windows"] == 0
    assert on["steps_down"] >= 1
    assert on["shed_percent"] > 0
    assert on["steady_p95_ms"] < off["steady_p95_ms"]
    assert shedding["steady_p95_reduction_factor"] > 1.0
    # document must round-trip through JSON (what main() writes)
    out = tmp_path / "BENCH_streaming.json"
    out.write_text(json.dumps(document, indent=2))
    assert json.loads(out.read_text()) == document


@pytest.mark.slow
def test_streaming_benchmark_main_writes_json(tmp_path, capsys):
    bench = _load_module()
    out = tmp_path / "bench.json"
    bench.main(
        [
            "--subjects", "2",
            "--minutes", "6",
            "--burst-seconds", "90",
            "--repeats", "1",
            "--output", str(out),
        ]
    )
    document = json.loads(out.read_text())
    assert document["workload"]["n_subjects"] == 2
    assert "windows/s" in capsys.readouterr().out
