"""Tests for Fast-Lomb (Press-Rybicki) and the Welch-Lomb wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, SignalError
from repro.ffts import PruningSpec, SplitRadixFFT, WaveletFFT
from repro.lomb import FastLomb, WelchLomb, iter_windows, lomb_periodogram


def _rr_series(rng, minutes=2.0, hf_amp=0.05, lf_amp=0.02, mean_rr=0.85):
    """Synthetic RR tachogram with LF (0.1 Hz) and HF (0.25 Hz) tones."""
    n = int(minutes * 60.0 / mean_rr) + 8
    beat_clock = np.cumsum(np.full(n, mean_rr))
    rr = (
        mean_rr
        + lf_amp * np.sin(2 * np.pi * 0.1 * beat_clock)
        + hf_amp * np.sin(2 * np.pi * 0.25 * beat_clock)
        + 0.003 * rng.standard_normal(n)
    )
    times = np.cumsum(rr)
    return times - times[0], rr


class TestFastLomb:
    def test_agrees_with_direct_lomb(self, rng):
        times, rr = _rr_series(rng)
        engine = FastLomb(workspace_size=512, max_frequency=0.45)
        spectrum = engine.periodogram(times, rr)
        _, direct = lomb_periodogram(times, rr, frequencies=spectrum.frequencies)
        # Agreement at all bins carrying meaningful power.
        significant = direct > 0.05 * direct.max()
        rel = np.abs(spectrum.power - direct)[significant] / direct[significant]
        assert np.max(rel) < 0.05

    def test_finds_hf_peak(self, rng):
        times, rr = _rr_series(rng, hf_amp=0.06, lf_amp=0.01)
        spectrum = FastLomb(max_frequency=0.45).periodogram(times, rr)
        peak = spectrum.frequencies[np.argmax(spectrum.power)]
        assert abs(peak - 0.25) < 0.02

    def test_paper_geometry_fills_half_workspace(self, rng):
        """117 beats / 2 min / ofac 2 -> data occupy ~256 of 512 cells."""
        from repro.lomb.extirpolation import extirpolate

        times, rr = _rr_series(rng)
        engine = FastLomb(workspace_size=512, oversample=2.0)
        duration = times[-1] - times[0]
        fac = 512 / (2.0 * duration)
        positions = (times - times[0]) * fac
        assert positions.max() <= 256.0 + 1e-9
        workspace = extirpolate(rr - rr.mean(), positions, 512)
        assert np.count_nonzero(np.abs(workspace[300:]) > 1e-12) == 0

    def test_wavelet_backend_exact_matches_conventional(self, rng):
        times, rr = _rr_series(rng)
        conv = FastLomb(backend=SplitRadixFFT(512), max_frequency=0.4)
        prop = FastLomb(backend=WaveletFFT(512, basis="haar"), max_frequency=0.4)
        p_conv = conv.periodogram(times, rr)
        p_prop = prop.periodogram(times, rr)
        np.testing.assert_allclose(p_prop.power, p_conv.power, rtol=1e-6)

    def test_pruned_backend_small_band_error(self, rng):
        times, rr = _rr_series(rng)
        conv = FastLomb(backend=SplitRadixFFT(512), max_frequency=0.4)
        pruned = FastLomb(
            backend=WaveletFFT(512, pruning=PruningSpec.paper_mode(3)),
            max_frequency=0.4,
        )
        p_conv = conv.periodogram(times, rr)
        p_pruned = pruned.periodogram(times, rr)
        lf_err = abs(
            p_pruned.band_power(0.04, 0.15) - p_conv.band_power(0.04, 0.15)
        ) / p_conv.band_power(0.04, 0.15)
        hf_err = abs(
            p_pruned.band_power(0.15, 0.4) - p_conv.band_power(0.15, 0.4)
        ) / p_conv.band_power(0.15, 0.4)
        assert lf_err < 0.30
        assert hf_err < 0.35

    def test_counts_include_fft_and_blocks(self, rng):
        times, rr = _rr_series(rng)
        engine = FastLomb(max_frequency=0.4)
        spectrum = engine.periodogram(times, rr, count_ops=True)
        assert spectrum.counts is not None
        breakdown = engine.count_breakdown(times, rr)
        assert set(breakdown) == {
            "extirpolation", "moments", "unpack", "lomb_combine", "fft",
        }
        assert sum(breakdown.values()).total == spectrum.counts.total

    def test_fft_dominates_window_cost(self, rng):
        """The Fig. 1(b) premise: the FFT is the dominant block."""
        times, rr = _rr_series(rng)
        breakdown = FastLomb(max_frequency=0.4).count_breakdown(times, rr)
        total = sum(breakdown.values()).total
        assert breakdown["fft"].total / total > 0.5

    def test_band_power_and_errors(self, rng):
        times, rr = _rr_series(rng)
        spectrum = FastLomb(max_frequency=0.4).periodogram(times, rr)
        assert spectrum.band_power(0.15, 0.4) > 0
        with pytest.raises(SignalError):
            spectrum.band_power(0.4, 0.15)

    def test_configuration_errors(self):
        with pytest.raises(ConfigurationError):
            FastLomb(workspace_size=500)
        with pytest.raises(ConfigurationError):
            FastLomb(oversample=0.5)
        with pytest.raises(ConfigurationError):
            FastLomb(scaling="psd")
        with pytest.raises(ConfigurationError):
            FastLomb(max_frequency=-0.1)
        with pytest.raises(ConfigurationError):
            FastLomb(workspace_size=512, backend=SplitRadixFFT(256))

    def test_signal_errors(self, rng):
        engine = FastLomb()
        with pytest.raises(SignalError):
            engine.periodogram([0, 1, 2, 3], [1, 1, 1, 1])  # zero variance
        with pytest.raises(SignalError):
            engine.periodogram([0, 2, 1, 3], [1, 2, 3, 4])  # not increasing

    def test_denormalized_scaling(self, rng):
        times, rr = _rr_series(rng)
        std = FastLomb(max_frequency=0.4, scaling="standard").periodogram(times, rr)
        den = FastLomb(max_frequency=0.4, scaling="denormalized").periodogram(
            times, rr
        )
        expected = std.power * 2.0 * std.variance / std.n_samples
        np.testing.assert_allclose(den.power, expected, rtol=1e-9)


class TestWindowing:
    def test_window_layout(self):
        times = np.arange(0.0, 600.0, 1.0)
        spans = iter_windows(times, window_seconds=120.0, overlap=0.5)
        assert len(spans) >= 8
        starts = [times[a] for a, _ in spans]
        assert np.allclose(np.diff(starts), 60.0)

    def test_no_overlap(self):
        times = np.arange(0.0, 600.0, 1.0)
        spans = iter_windows(times, window_seconds=120.0, overlap=0.0)
        for (a0, s0), (a1, _s1) in zip(spans, spans[1:]):
            assert a1 >= s0 - 1

    def test_invalid_parameters(self):
        times = np.arange(0.0, 100.0, 1.0)
        with pytest.raises(ConfigurationError):
            iter_windows(times, -5.0, 0.5)
        with pytest.raises(ConfigurationError):
            iter_windows(times, 120.0, 1.0)


class TestWelchLomb:
    def _long_recording(self, rng, minutes=20.0):
        return _rr_series(rng, minutes=minutes)

    def test_spectrogram_shape(self, rng):
        times, rr = self._long_recording(rng)
        result = WelchLomb(FastLomb(max_frequency=0.4)).analyze(times, rr)
        assert result.spectrogram.shape == (
            result.n_windows,
            result.frequencies.size,
        )
        assert result.window_times.size == result.n_windows
        # 20 minutes, 2-minute windows, 50 % overlap -> about 19 windows.
        assert 15 <= result.n_windows <= 21

    def test_average_is_row_mean(self, rng):
        times, rr = self._long_recording(rng)
        result = WelchLomb(FastLomb(max_frequency=0.4)).analyze(times, rr)
        np.testing.assert_allclose(
            result.averaged, result.spectrogram.mean(axis=0), rtol=1e-12
        )

    def test_averaging_reduces_variance(self, rng):
        """Welch's point: averaging suppresses estimator noise.

        Uses a tone-free (white) tachogram so that across-bin spread
        measures estimator variance rather than deterministic leakage.
        """
        n = 2200  # ~30 minutes of beats
        rr = 0.85 + 0.02 * rng.standard_normal(n)
        times = np.cumsum(rr)
        times -= times[0]
        result = WelchLomb(FastLomb(max_frequency=0.4)).analyze(times, rr)
        single = result.spectrogram[0]
        assert np.std(result.averaged) < 0.5 * np.std(single)

    def test_counts_accumulate(self, rng):
        times, rr = self._long_recording(rng, minutes=10.0)
        result = WelchLomb(FastLomb(max_frequency=0.4)).analyze(
            times, rr, count_ops=True
        )
        per_window = result.window_spectra[0].counts
        assert result.counts.total >= per_window.total * result.n_windows * 0.8

    def test_averaged_spectrum_view(self, rng):
        times, rr = self._long_recording(rng, minutes=10.0)
        result = WelchLomb(FastLomb(max_frequency=0.4)).analyze(times, rr)
        view = result.averaged_spectrum()
        np.testing.assert_allclose(view.power, result.averaged)
        assert view.band_power(0.15, 0.4) > 0

    def test_short_recording_rejected(self, rng):
        with pytest.raises(SignalError):
            WelchLomb().analyze([0.0, 1.0, 2.0], [0.8, 0.9, 0.85])

    def test_default_analyzer_denormalized(self):
        assert WelchLomb().analyzer.scaling == "denormalized"
