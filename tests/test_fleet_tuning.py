"""Tests for per-host chunk auto-tuning and its wiring into Fast-Lomb."""

from __future__ import annotations

import pathlib

import pytest

from repro.errors import ConfigurationError
from repro.fleet.tuning import (
    DEFAULT_CHUNK_WINDOWS,
    MAX_CHUNK_WINDOWS,
    MIN_CHUNK_WINDOWS,
    _parse_cache_size,
    autotune_chunk_windows,
    chunk_windows_for_cache,
    detect_cache_bytes,
    measure_chunk_windows,
)
from repro.lomb import fast


@pytest.fixture(autouse=True)
def _restore_chunk_state():
    """Keep the process-wide chunk pin/tuning state test-local."""
    override = fast.get_chunk_override()
    tuned = dict(fast._chunk_tuned)
    yield
    fast.set_batch_chunk_windows(override)
    fast._chunk_tuned.clear()
    fast._chunk_tuned.update(tuned)


class TestCacheDetection:
    def test_parse_cache_size_units(self):
        assert _parse_cache_size("48K") == 48 * 1024
        assert _parse_cache_size("12288K") == 12288 * 1024
        assert _parse_cache_size("1M") == 1024 * 1024
        assert _parse_cache_size("2G") == 2 * 1024**3
        assert _parse_cache_size("512") == 512
        assert _parse_cache_size("") is None
        assert _parse_cache_size("huge") is None
        assert _parse_cache_size("0K") is None

    def test_detect_cache_bytes_host(self):
        size = detect_cache_bytes()
        assert size is None or size > 0

    def test_detect_from_fake_sysfs(self, tmp_path):
        index0 = tmp_path / "index0"
        index0.mkdir()
        (index0 / "type").write_text("Instruction\n")
        (index0 / "size").write_text("32K\n")
        index1 = tmp_path / "index1"
        index1.mkdir()
        (index1 / "type").write_text("Unified\n")
        (index1 / "size").write_text("8M\n")
        assert detect_cache_bytes(tmp_path) == 8 * 1024 * 1024

    def test_detect_missing_root(self):
        assert detect_cache_bytes(pathlib.Path("/no/such/sysfs")) is None


class TestChunkModel:
    def test_power_of_two_and_clamped(self):
        for cache in (1 << 14, 1 << 20, 1 << 24, 1 << 30):
            chunk = chunk_windows_for_cache(512, cache)
            assert MIN_CHUNK_WINDOWS <= chunk <= MAX_CHUNK_WINDOWS
            assert chunk & (chunk - 1) == 0

    def test_monotonic_in_cache_size(self):
        chunks = [
            chunk_windows_for_cache(512, cache)
            for cache in (1 << 20, 1 << 23, 1 << 26)
        ]
        assert chunks == sorted(chunks)

    def test_larger_workspace_smaller_chunks(self):
        cache = 1 << 24
        assert chunk_windows_for_cache(2048, cache) <= chunk_windows_for_cache(
            256, cache
        )

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            chunk_windows_for_cache(512, 0)
        with pytest.raises(ConfigurationError):
            chunk_windows_for_cache(1, 1 << 20)

    def test_autotune_reports_source(self):
        tuning = autotune_chunk_windows(512)
        assert tuning.source in ("cache-model", "default")
        if tuning.source == "default":
            assert tuning.chunk_windows == DEFAULT_CHUNK_WINDOWS
        else:
            assert tuning.cache_bytes > 0


class TestChunkResolution:
    def test_explicit_pin_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_CHUNK_WINDOWS", "64")
        fast.set_batch_chunk_windows(48)
        assert fast.get_batch_chunk_windows(512) == 48
        fast.set_batch_chunk_windows(None)
        assert fast.get_batch_chunk_windows(512) == 64

    def test_pin_validation(self):
        with pytest.raises(ConfigurationError):
            fast.set_batch_chunk_windows(0)

    def test_env_override(self, monkeypatch):
        fast.set_batch_chunk_windows(None)
        monkeypatch.setenv("REPRO_BATCH_CHUNK_WINDOWS", "96")
        assert fast.get_batch_chunk_windows(512) == 96

    def test_env_override_invalid(self, monkeypatch):
        fast.set_batch_chunk_windows(None)
        monkeypatch.setenv("REPRO_BATCH_CHUNK_WINDOWS", "zero")
        with pytest.raises(ConfigurationError):
            fast.get_batch_chunk_windows(512)
        monkeypatch.setenv("REPRO_BATCH_CHUNK_WINDOWS", "-3")
        with pytest.raises(ConfigurationError):
            fast.get_batch_chunk_windows(512)

    def test_lazy_tuning_memoised(self, monkeypatch):
        fast.set_batch_chunk_windows(None)
        monkeypatch.delenv("REPRO_BATCH_CHUNK_WINDOWS", raising=False)
        fast._chunk_tuned.clear()
        first = fast.get_batch_chunk_windows(512)
        assert fast._chunk_tuned[512] == first
        assert fast.get_batch_chunk_windows(512) == first
        assert first >= 1


@pytest.mark.slow
class TestMeasuredTuning:
    def test_probe_picks_a_candidate(self):
        tuning = measure_chunk_windows(
            workspace_size=256,
            candidates=(16, 64),
            n_windows=96,
            beats_per_window=40,
            repeats=1,
        )
        assert tuning.source == "measured"
        assert tuning.chunk_windows in (16, 64)
        assert set(tuning.timings) == {16, 64}
        assert all(seconds > 0 for seconds in tuning.timings.values())

    def test_probe_restores_pin(self):
        fast.set_batch_chunk_windows(123)
        measure_chunk_windows(
            workspace_size=256,
            candidates=(16,),
            n_windows=32,
            beats_per_window=40,
            repeats=1,
        )
        assert fast.get_chunk_override() == 123

    def test_probe_validates_candidates(self):
        with pytest.raises(ConfigurationError):
            measure_chunk_windows(candidates=())
        with pytest.raises(ConfigurationError):
            measure_chunk_windows(candidates=(0,))
