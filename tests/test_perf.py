"""Tests for :mod:`repro.perf` — arenas, profiler, and steady-state
allocation behaviour of the streaming hot path.

The contract under test is the one the perf layer is built on: arenas
and profilers change *where buffers come from* and *what gets measured*,
never *what is computed* — arena-on and arena-off runs must be
bit-identical, and a disabled profiler must cost (near) nothing.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.engine import Engine, EngineConfig
from repro.hrv.rr import RRSeries
from repro.perf.profiler import (
    NULL_SPAN,
    StageProfiler,
    get_active_profiler,
    profile_scope,
    set_active_profiler,
    span,
)
from repro.perf.workspace import (
    Scratch,
    WorkspaceArena,
    arena_scope,
    get_active_arena,
    scratch,
    set_active_arena,
)


def _synthetic_rr(duration: float = 300.0, seed: int = 7) -> RRSeries:
    rng = np.random.default_rng(seed)
    times = []
    t = 0.0
    while t < duration:
        rr = 0.8 + 0.05 * np.sin(2 * np.pi * 0.25 * t) + rng.normal(0, 0.01)
        t += rr
        times.append(t)
    times = np.asarray(times)
    intervals = np.diff(times, prepend=0.0)
    return RRSeries(times=times[1:], intervals=intervals[1:])


class TestWorkspaceArena:
    def test_borrow_returns_exact_shape(self):
        arena = WorkspaceArena()
        buf = arena.borrow((3, 7))
        assert buf.shape == (3, 7)
        assert buf.dtype == np.float64
        assert buf.flags["C_CONTIGUOUS"]

    def test_release_then_borrow_reuses_storage(self):
        arena = WorkspaceArena()
        first = arena.borrow((4, 16))
        base_id = id(first.base if first.base is not None else first)
        arena.release(first)
        second = arena.borrow((4, 16))
        assert id(second.base if second.base is not None else second) == base_id
        stats = arena.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_smaller_row_count_hits_same_pool(self):
        arena = WorkspaceArena()
        buf = arena.borrow((8, 32))
        arena.release(buf)
        # Fewer rows, same trailing shape: served from the pooled base.
        again = arena.borrow((5, 32))
        assert again.shape == (5, 32)
        assert arena.stats()["hits"] == 1

    def test_zero_flag_zeroes_contents(self):
        arena = WorkspaceArena()
        buf = arena.borrow((2, 8))
        buf.fill(123.0)
        arena.release(buf)
        again = arena.borrow((2, 8), zero=True)
        assert np.all(again == 0.0)

    def test_foreign_release_is_ignored(self):
        arena = WorkspaceArena()
        foreign = np.empty((4, 4))
        arena.release(foreign)  # must not raise or adopt
        assert arena.stats()["pooled_buffers"] == 0

    def test_eviction_over_cap(self):
        arena = WorkspaceArena(max_bytes=1024)
        big = arena.borrow((64, 64))  # 32 KiB, far over the 1 KiB cap
        arena.release(big)
        stats = arena.stats()
        assert stats["evictions"] == 1
        assert stats["pooled_bytes"] <= 1024

    def test_warm_preallocates(self):
        arena = WorkspaceArena()
        arena.warm((8, 16), count=2)
        stats = arena.stats()
        assert stats["pooled_buffers"] == 2
        arena.borrow((8, 16))
        assert arena.stats()["hits"] == 1

    def test_clear_drops_idle_buffers(self):
        arena = WorkspaceArena()
        arena.warm((4, 4))
        arena.clear()
        stats = arena.stats()
        assert stats["pooled_buffers"] == 0
        assert stats["pooled_bytes"] == 0

    def test_arena_scope_installs_and_restores(self):
        assert get_active_arena() is None
        arena = WorkspaceArena()
        with arena_scope(arena):
            assert get_active_arena() is arena
            with arena_scope(None):
                assert get_active_arena() is None
            assert get_active_arena() is arena
        assert get_active_arena() is None


class TestScratch:
    def test_without_arena_is_plain_allocation(self):
        with Scratch(None) as ws:
            a = ws.take((3, 3))
            z = ws.take((2, 2), zero=True)
        assert a.shape == (3, 3)
        assert np.all(z == 0.0)

    def test_with_arena_releases_on_close(self):
        arena = WorkspaceArena()
        with Scratch(arena) as ws:
            ws.take((4, 8))
            ws.take((4, 8))
            assert arena.stats()["lent_buffers"] == 2
        assert arena.stats()["lent_buffers"] == 0
        assert arena.stats()["pooled_buffers"] == 2

    def test_scratch_helper_uses_active_arena(self):
        arena = WorkspaceArena()
        with arena_scope(arena):
            with scratch() as ws:
                ws.take((2, 4))
        assert arena.stats()["misses"] == 1


class TestStageProfiler:
    def test_disabled_span_is_shared_noop_singleton(self):
        assert get_active_profiler() is None
        assert span("extirpolate") is NULL_SPAN
        assert span("fft") is NULL_SPAN

    def test_disabled_overhead_is_negligible(self):
        """With no active profiler, span() must stay a constant-time no-op.

        The structural property (shared singleton, no allocation) is the
        real guarantee; the timing bound is deliberately generous so the
        test never flakes on slow CI.
        """
        import time

        assert get_active_profiler() is None
        n = 100_000
        start = time.perf_counter()
        for _ in range(n):
            with span("extirpolate"):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0  # ~20 µs/iteration budget: orders above reality

    def test_enabled_span_accumulates(self):
        profiler = StageProfiler()
        with profile_scope(profiler):
            for _ in range(3):
                with span("fft"):
                    pass
        report = profiler.report()
        assert report["fft"]["calls"] == 3
        assert report["fft"]["seconds"] >= 0.0

    def test_profile_scope_restores_previous(self):
        outer = StageProfiler()
        inner = StageProfiler()
        previous = set_active_profiler(outer)
        try:
            with profile_scope(inner):
                assert get_active_profiler() is inner
            assert get_active_profiler() is outer
        finally:
            set_active_profiler(previous)

    def test_trace_alloc_records_bytes(self):
        profiler = StageProfiler(trace_alloc=True)
        tracemalloc.start()
        try:
            with profile_scope(profiler):
                with span("fft"):
                    _keep = np.empty(65536)  # noqa: F841
        finally:
            tracemalloc.stop()
        assert profiler.report()["fft"]["alloc_bytes"] > 0

    def test_format_report_renders(self):
        profiler = StageProfiler()
        with profiler.span("hub_flush"):
            pass
        text = profiler.format_report()
        assert "hub_flush" in text
        assert "calls" in text


class TestEngineIntegration:
    def test_arena_on_off_results_bit_identical(self):
        rr = _synthetic_rr()
        with Engine(EngineConfig(arena=True)) as on:
            result_on = on.analyze(rr)
            assert on.arena is not None
            assert on.arena.stats()["hits"] > 0
        with Engine(EngineConfig(arena=False)) as off:
            result_off = off.analyze(rr)
            assert off.arena is None
        assert np.array_equal(
            result_on.welch.spectrogram, result_off.welch.spectrogram
        )
        assert np.array_equal(
            result_on.welch.window_times, result_off.welch.window_times
        )

    def test_streaming_with_arena_matches_batch(self):
        rr = _synthetic_rr()
        with Engine(EngineConfig()) as engine:
            batch = engine.analyze(rr)
            session = engine.open_stream()
            for lo in range(0, rr.times.size, 64):
                session.feed(
                    rr.times[lo : lo + 64], rr.intervals[lo : lo + 64]
                )
            streamed = session.finalize()
        assert np.array_equal(
            batch.welch.spectrogram, streamed.welch.spectrogram
        )

    def test_profile_config_populates_stage_report(self):
        rr = _synthetic_rr()
        with Engine(EngineConfig(profile=True)) as engine:
            engine.analyze(rr)
            report = engine.profiler.report()
        assert {"extirpolate", "fft", "lomb_combine", "assemble"} <= set(
            report
        )
        assert all(row["calls"] > 0 for row in report.values())

    def test_profile_off_engine_has_no_profiler(self):
        with Engine(EngineConfig()) as engine:
            assert engine.profiler is None

    def test_config_round_trips_arena_and_profile(self):
        config = EngineConfig(arena=False, profile=True)
        clone = EngineConfig.from_json(config.to_json())
        assert clone == config
        assert clone.arena is False
        assert clone.profile is True

    def test_engine_leaves_no_global_state(self):
        rr = _synthetic_rr()
        with Engine(EngineConfig(profile=True)) as engine:
            engine.analyze(rr)
        assert get_active_arena() is None
        assert get_active_profiler() is None


class TestSteadyStateAllocations:
    @pytest.mark.slow
    def test_hub_flush_allocations_bounded_and_non_growing(self):
        """Steady-state flushes must not allocate proportionally to history.

        After a few warm-up rounds the arena owns every kernel temporary,
        so per-flush allocation churn must (a) be far below the
        arena-less churn and (b) stay flat instead of growing with the
        number of rounds already streamed.
        """

        def churn_per_round(config):
            rr = _synthetic_rr(duration=1200.0)
            chunks = [
                (rr.times[lo : lo + 48], rr.intervals[lo : lo + 48])
                for lo in range(0, rr.times.size, 48)
            ]
            with Engine(config) as engine:
                hub = engine.open_hub()
                churn = []
                tracemalloc.start()
                try:
                    for times, values in chunks:
                        hub.feed("s", times, values)
                        before = tracemalloc.get_traced_memory()[0]
                        tracemalloc.reset_peak()
                        hub.flush()
                        peak = tracemalloc.get_traced_memory()[1]
                        churn.append(peak - before)
                finally:
                    tracemalloc.stop()
                hub.close()
            return churn

        with_arena = churn_per_round(EngineConfig(arena=True))
        without = churn_per_round(EngineConfig(arena=False))
        # Compare steady state: skip the warm-up rounds where the arena
        # is still populating its pools.
        steady_on = with_arena[3:]
        steady_off = without[3:]
        assert sum(steady_on) * 2 < sum(steady_off), (
            f"arena did not reduce flush churn: on={sum(steady_on)} "
            f"off={sum(steady_off)}"
        )
        # Non-growing: the last rounds must not allocate more than the
        # early steady-state rounds (2x headroom for allocator noise).
        early = max(steady_on[: len(steady_on) // 2]) or 1
        late = max(steady_on[len(steady_on) // 2 :])
        assert late <= 2 * early, (
            f"steady-state churn grew: early max {early}, late max {late}"
        )


class TestFleetWorkerArena:
    def test_init_worker_installs_process_arena(self):
        from repro.fleet.worker import init_worker
        from repro.lomb.welch import WelchLomb

        previous = get_active_arena()
        try:
            init_worker(WelchLomb(), chunk_windows=None, arena=True)
            installed = get_active_arena()
            assert installed is not None
            init_worker(WelchLomb(), chunk_windows=32, arena=True)
            warmed = get_active_arena()
            assert warmed is not None
            assert warmed.stats()["pooled_buffers"] > 0
        finally:
            set_active_arena(previous)

    def test_init_worker_without_arena_keeps_state(self):
        from repro.fleet.worker import init_worker
        from repro.lomb.welch import WelchLomb

        previous = set_active_arena(None)
        try:
            init_worker(WelchLomb(), chunk_windows=None, arena=False)
            assert get_active_arena() is None
        finally:
            set_active_arena(previous)
