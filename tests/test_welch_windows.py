"""Edge-case tests for window layout and result assembly.

Covers the ``iter_windows`` corner cases (trailing partial windows,
single-window recordings, zero overlap, beat-starved windows skipped by
``MIN_BEATS_PER_WINDOW``), the overlap-aware ``averaged_spectrum``
duration, and the vectorised spectrogram assembly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lomb.fast import FastLomb, LombSpectrum
from repro.lomb.welch import (
    MIN_BEATS_PER_WINDOW,
    WelchLomb,
    assemble_result,
    iter_windows,
)


def _beat_times(duration, rr=0.8, start=0.0):
    return start + np.arange(0.0, duration, rr)


class TestIterWindowsEdges:
    def test_trailing_partial_window_kept_at_half_duration(self):
        # ~151 s of beats, 60 s windows, no overlap: the trailing window
        # spans just over half the nominal duration, so it is kept.
        times = _beat_times(151.2)
        spans = iter_windows(times, 60.0, 0.0)
        assert len(spans) == 3
        start, stop = spans[-1]
        assert times[stop - 1] - times[start] >= 0.5 * 60.0

    def test_trailing_partial_window_dropped_below_half(self):
        # 140 s of beats: the trailing 20 s stub is below half and drops.
        times = _beat_times(140.0)
        spans = iter_windows(times, 60.0, 0.0)
        assert len(spans) == 2

    def test_single_window_recording(self):
        times = _beat_times(90.0)
        spans = iter_windows(times, 120.0, 0.5)
        assert len(spans) == 1
        assert spans[0] == (0, times.size)

    def test_zero_overlap_spans_are_disjoint(self):
        times = _beat_times(600.0)
        spans = iter_windows(times, 120.0, 0.0)
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert start >= stop - 1  # at most the shared edge beat

    def test_half_overlap_doubles_window_count(self):
        times = _beat_times(600.0)
        none = iter_windows(times, 120.0, 0.0)
        half = iter_windows(times, 120.0, 0.5)
        assert len(half) >= 2 * len(none) - 2

    def test_sparse_window_skipped_for_min_beats(self):
        # Dense beats, then a 120 s stretch holding only ~5 beats, then
        # dense again: the sparse window is laid out but rejected.
        dense_a = _beat_times(120.0, rr=0.8)
        sparse = _beat_times(120.0, rr=25.0, start=120.0)
        dense_b = _beat_times(121.0, rr=0.8, start=240.0)
        times = np.concatenate([dense_a, sparse, dense_b])
        values = 0.8 + 0.01 * np.sin(np.arange(times.size))
        welch = WelchLomb(
            FastLomb(max_frequency=0.4), window_seconds=120.0, overlap=0.0
        )
        plan = welch.plan_windows(times, values)
        assert plan.skipped == 1
        result = welch.analyze(times, values)
        assert result.skipped_windows == 1
        assert result.n_windows == 2
        sparse_spans = [
            (start, stop)
            for start, stop in iter_windows(times, 120.0, 0.0)
            if stop - start < MIN_BEATS_PER_WINDOW
        ]
        assert len(sparse_spans) == 1


class TestAveragedSpectrumDuration:
    def test_overlapped_windows_not_double_counted(self):
        times = _beat_times(600.0)
        values = 0.8 + 0.05 * np.sin(2 * np.pi * 0.1 * times)
        result = WelchLomb(FastLomb(max_frequency=0.4)).analyze(times, values)
        assert result.n_windows > 4
        view = result.averaged_spectrum()
        covered = times[-1] - times[0]
        # The analysed windows span (almost) the whole recording — not
        # n_windows * window_duration, which 50 % overlap would nearly
        # double.
        assert view.duration == pytest.approx(covered, rel=0.05)
        naive = result.window_spectra[-1].duration * result.n_windows
        assert view.duration < 0.7 * naive

    def test_single_window_duration_is_window_duration(self):
        times = _beat_times(90.0)
        values = 0.8 + 0.02 * np.sin(times)
        result = WelchLomb(
            FastLomb(max_frequency=0.4), window_seconds=120.0
        ).analyze(times, values)
        assert result.n_windows == 1
        view = result.averaged_spectrum()
        assert view.duration == pytest.approx(
            result.window_spectra[0].duration
        )


class TestAssembleResult:
    def _spectrum(self, grid, power, duration=100.0):
        return LombSpectrum(
            frequencies=grid,
            power=power,
            mean=0.8,
            variance=0.01,
            n_samples=64,
            duration=duration,
        )

    def test_equal_grids_stacked_verbatim(self):
        grid = 0.01 * np.arange(1, 33)
        powers = [np.full(32, float(k)) for k in range(3)]
        result = assemble_result(
            [self._spectrum(grid, p) for p in powers],
            window_times=np.array([50.0, 100.0, 150.0]),
            skipped=2,
        )
        np.testing.assert_array_equal(result.spectrogram, np.stack(powers))
        np.testing.assert_array_equal(
            result.averaged, np.stack(powers).mean(axis=0)
        )
        assert result.skipped_windows == 2
        assert result.counts is None

    def test_ragged_grid_interpolated(self):
        grid = 0.01 * np.arange(1, 33)
        short_grid = 0.02 * np.arange(1, 17)
        full = self._spectrum(grid, np.ones(32))
        ragged = self._spectrum(short_grid, np.arange(16.0), duration=50.0)
        result = assemble_result(
            [full, ragged], window_times=np.array([50.0, 110.0]), skipped=0
        )
        np.testing.assert_array_equal(result.spectrogram[0], np.ones(32))
        expected = np.interp(
            grid, short_grid, np.arange(16.0), left=0.0, right=0.0
        )
        np.testing.assert_array_equal(result.spectrogram[1], expected)

    def test_empty_spectra_rejected(self):
        from repro.errors import SignalError

        with pytest.raises(SignalError):
            assemble_result([], window_times=np.empty(0), skipped=0)
