"""Tests for the packet tree and the modified twiddle factors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TransformError
from repro.wavelets import (
    filter_response,
    get_filter,
    packet_level,
    twiddle_magnitude_profile,
    twiddle_pair,
    twiddle_quadrants,
    wavelet_packet,
)


class TestPacketTable:
    def test_levels_shapes(self, rng):
        table = wavelet_packet(rng.standard_normal(16), "haar")
        assert table.depth == 4
        assert [lvl.shape for lvl in table.levels] == [
            (1, 16), (2, 8), (4, 4), (8, 2), (16, 1),
        ]

    def test_partial_depth(self, rng):
        table = wavelet_packet(rng.standard_normal(32), "db2", depth=2)
        assert table.depth == 2
        assert table.levels[-1].shape == (4, 8)

    def test_energy_conserved_at_every_level(self, paper_basis, rng):
        x = rng.standard_normal(64)
        table = wavelet_packet(x, paper_basis)
        total = float(x @ x)
        for level in table.levels:
            assert np.isclose(float(np.sum(level * level)), total, rtol=1e-9)

    def test_band_accessor(self, rng):
        x = rng.standard_normal(8)
        table = wavelet_packet(x, "haar")
        np.testing.assert_allclose(table.band(0, 0), x)
        with pytest.raises(TransformError):
            table.band(1, 5)

    def test_row_ordering_lowpass_even(self, rng):
        """Row 2i/2i+1 at depth d+1 are the L/H splits of row i at depth d."""
        from repro.wavelets import dwt_level

        x = rng.standard_normal(32)
        table = wavelet_packet(x, "db2", depth=2)
        approx, detail = dwt_level(x, "db2")
        np.testing.assert_allclose(table.levels[1][0], approx, atol=1e-12)
        np.testing.assert_allclose(table.levels[1][1], detail, atol=1e-12)
        aa, ad = dwt_level(approx, "db2")
        np.testing.assert_allclose(table.levels[2][0], aa, atol=1e-12)
        np.testing.assert_allclose(table.levels[2][1], ad, atol=1e-12)

    def test_smooth_signal_has_small_highpass_fraction(self):
        t = np.linspace(0.0, 1.0, 256, endpoint=False)
        x = 1.0 + 0.1 * np.sin(2 * np.pi * 3 * t)
        table = wavelet_packet(x, "haar", depth=1)
        assert table.highpass_energy_fraction(depth=1) < 0.01

    def test_alternating_signal_has_large_highpass_fraction(self):
        x = np.array([1.0, -1.0] * 64)
        table = wavelet_packet(x, "haar", depth=1)
        assert table.highpass_energy_fraction(depth=1) > 0.99

    def test_packet_level_rejects_bad_shapes(self):
        with pytest.raises(TransformError):
            packet_level(np.ones(8), "haar")
        with pytest.raises(TransformError):
            packet_level(np.ones((2, 3)), "haar")


class TestTwiddleFactors:
    def test_filter_response_is_dft_of_taps(self):
        bank = get_filter("db2")
        m = 16
        padded = np.zeros(m)
        padded[: bank.length] = bank.lowpass
        np.testing.assert_allclose(
            filter_response(bank.lowpass, m), np.fft.fft(padded), atol=1e-12
        )

    def test_filter_longer_than_block_wraps(self):
        bank = get_filter("db4")  # 8 taps
        m = 4
        wrapped = np.zeros(m)
        for j, tap in enumerate(bank.lowpass):
            wrapped[j % m] += tap
        np.testing.assert_allclose(
            filter_response(bank.lowpass, m), np.fft.fft(wrapped), atol=1e-12
        )

    def test_haar_closed_form(self):
        m = 64
        hl, hh = twiddle_pair(m, "haar")
        k = np.arange(m)
        w = np.exp(-2j * np.pi * k / m)
        np.testing.assert_allclose(hl, (1 + w) / np.sqrt(2.0), atol=1e-12)
        np.testing.assert_allclose(hh, (1 - w) / np.sqrt(2.0), atol=1e-12)

    def test_quadrants_split(self):
        n = 32
        hl, hh = twiddle_pair(n, "db2")
        a, b, c, d = twiddle_quadrants(n, "db2")
        np.testing.assert_allclose(np.concatenate([a, c]), hl)
        np.testing.assert_allclose(np.concatenate([b, d]), hh)

    def test_paper_monotonicity_observation(self, paper_basis):
        """|A| decreases and |C| increases along the diagonal (Section V.B)."""
        profile = twiddle_magnitude_profile(512, paper_basis)
        a, c = profile["A"], profile["C"]
        if paper_basis == "haar":
            assert np.all(np.diff(a) <= 1e-12)
            assert np.all(np.diff(c) >= -1e-12)
        # All bases: the A diagonal starts large and ends near zero, C mirrors.
        assert a[0] > 1.0 > a[-1]
        assert c[0] < 0.5 < c[-1]

    def test_power_complementarity(self, paper_basis):
        """|H_L(k)|^2 + |H_H(k)|^2 == 2 for orthonormal banks."""
        hl, hh = twiddle_pair(128, paper_basis)
        np.testing.assert_allclose(
            np.abs(hl) ** 2 + np.abs(hh) ** 2, 2.0, atol=1e-9
        )

    def test_magnitudes_not_unit(self, paper_basis):
        """The paper's key observation: factors differ wildly in magnitude."""
        hl, _ = twiddle_pair(512, paper_basis)
        mags = np.abs(hl)
        assert mags.max() > 1.3
        assert mags.min() < 0.2
