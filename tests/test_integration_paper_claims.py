"""End-to-end integration tests pinning the paper's headline claims.

Each test exercises a full cross-module path (cohort -> calibration ->
pruned system -> node model) and asserts the claim's *shape* with the
tolerances recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConventionalPSA,
    PruningSpec,
    QualityScalablePSA,
    SensorNodeModel,
    calibrate,
    make_cohort,
)
from repro.ffts import WaveletFFT, split_radix_counts
from repro.fixedpoint import FixedPointWaveletFFT, Q15, sqnr_db


@pytest.fixture(scope="module")
def cohort_recordings():
    cohort = make_cohort(n_arrhythmia=6, n_healthy=3)
    rsa = [
        p.rr_series(duration=600.0)
        for p in cohort
        if p.patient_id.startswith("rsa")
    ]
    healthy = [
        p.rr_series(duration=600.0)
        for p in cohort
        if p.patient_id.startswith("ctl")
    ]
    return rsa, healthy


class TestHeadlineClaims:
    def test_claim_82_percent_energy_savings(self):
        """'up-to 82% energy savings when static pruning is combined
        with voltage and frequency scaling'."""
        system = QualityScalablePSA(pruning=PruningSpec.paper_mode(3))
        report = system.energy_report(apply_vfs=True, fft_only=True)
        assert report.energy_savings > 0.70  # measured: 78.9 %

    def test_claim_average_accuracy_loss(self, cohort_recordings):
        """'such energy savings come with a 4.9% average accuracy loss'."""
        rsa, _ = cohort_recordings
        conventional = ConventionalPSA()
        proposed = QualityScalablePSA(pruning=PruningSpec.paper_mode(3))
        errors = []
        for rr in rsa:
            ref = conventional.analyze(rr).lf_hf
            approx = proposed.analyze(rr).lf_hf
            errors.append(abs(approx - ref) / ref)
        assert float(np.mean(errors)) < 0.10  # measured: ~6 %

    def test_claim_detection_capability_unaffected(self, cohort_recordings):
        """'does not affect the system detection capability of
        sinus-arrhythmia' — across modes and patients."""
        rsa, healthy = cohort_recordings
        for spec in (
            PruningSpec.band_only(),
            PruningSpec.paper_mode(2),
            PruningSpec.paper_mode(3),
            PruningSpec.paper_mode(3, dynamic=True),
        ):
            system = QualityScalablePSA(pruning=spec)
            for rr in rsa:
                assert system.analyze(rr).detection.is_arrhythmia
            for rr in healthy:
                assert not system.analyze(rr).detection.is_arrhythmia

    def test_claim_ratio_much_less_than_one(self, cohort_recordings):
        """Table I: the cohort-average ratio stays 'much less than 1'
        under every approximation mode."""
        rsa, _ = cohort_recordings
        for spec in (PruningSpec.band_only(), PruningSpec.paper_mode(3)):
            system = QualityScalablePSA(pruning=spec)
            mean_ratio = float(
                np.mean([system.analyze(rr).lf_hf for rr in rsa])
            )
            assert mean_ratio < 0.7


class TestCalibratedPipeline:
    def test_calibration_to_system_roundtrip(self, cohort_recordings):
        """eq. 3 calibration licenses the band drop and the calibrated
        dynamic spec runs end to end with bounded distortion."""
        rsa, _ = cohort_recordings
        calibration = calibrate(rsa[:3])
        assert calibration.band_drop_supported
        spec = calibration.pruning_spec(3, dynamic=True)
        system = QualityScalablePSA(pruning=spec)
        conventional = ConventionalPSA()
        for rr in rsa[3:5]:
            ref = conventional.analyze(rr).lf_hf
            approx = system.analyze(rr).lf_hf
            assert abs(approx - ref) / ref < 0.15

    def test_dynamic_subset_property_system_level(self, cohort_recordings):
        """Dynamic pruning's distortion never exceeds static's by more
        than noise, while costing more energy (the Fig. 9 trade)."""
        rsa, _ = cohort_recordings
        calibration = calibrate(rsa[:3])
        conventional = ConventionalPSA()
        node = SensorNodeModel()
        static_spec = PruningSpec.paper_mode(3)
        dynamic_spec = calibration.pruning_spec(3, dynamic=True)
        static_sys = QualityScalablePSA(pruning=static_spec, node=node)
        dynamic_sys = QualityScalablePSA(pruning=dynamic_spec, node=node)
        static_err, dynamic_err = [], []
        for rr in rsa[3:]:
            ref = conventional.analyze(rr).lf_hf
            static_err.append(abs(static_sys.analyze(rr).lf_hf - ref) / ref)
            dynamic_err.append(abs(dynamic_sys.analyze(rr).lf_hf - ref) / ref)
        assert np.mean(dynamic_err) <= np.mean(static_err) + 0.02
        s_energy = static_sys.energy_report(apply_vfs=True, fft_only=True)
        d_energy = dynamic_sys.energy_report(apply_vfs=True, fft_only=True)
        assert d_energy.energy_savings < s_energy.energy_savings


class TestCrossSubstrateConsistency:
    def test_counts_drive_node_consistently(self):
        """FFT op counts, node cycles and energy stay proportional."""
        node = SensorNodeModel()
        a = WaveletFFT(512, pruning=PruningSpec.band_only()).static_counts()
        b = split_radix_counts(512)
        ops_ratio = a.total / b.total
        cycle_ratio = node.cycles(a) / node.cycles(b)
        assert abs(ops_ratio - cycle_ratio) < 0.08

    def test_fixed_point_system_agrees_with_float(self):
        """The Q15 pruned kernel tracks its float twin on real windows."""
        from repro.core.calibration import extract_calibration_windows
        from repro import PSAConfig

        rr = make_cohort().get("rsa-02").rr_series(duration=300.0)
        window = extract_calibration_windows([rr], PSAConfig(), packed=True)[0]
        window = window * (0.9 / np.max(np.abs([window.real, window.imag])))
        spec = PruningSpec.paper_mode(3)
        float_out = WaveletFFT(512, pruning=spec).transform(window)
        fixed_out = FixedPointWaveletFFT(512, "haar", Q15, pruning=spec)
        assert sqnr_db(float_out, fixed_out.transform(window).values) > 35

    def test_qrs_to_psa_full_path(self):
        """ECG synthesis -> QRS -> RR -> pruned PSA, one pipeline."""
        from repro.ecg import QrsDetector, generate_tachogram, synthesize_ecg
        from repro import TachogramSpec

        truth = generate_tachogram(TachogramSpec(seed=12), duration=300.0)
        t, ecg = synthesize_ecg(truth.times, seed=3)
        detected = QrsDetector().detect(t, ecg)
        system = QualityScalablePSA(pruning=PruningSpec.paper_mode(1))
        result = system.analyze(detected.rr)
        assert result.lf_hf > 0
        assert result.welch.n_windows >= 3
