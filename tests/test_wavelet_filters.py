"""Unit tests for :mod:`repro.wavelets.filters`."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.wavelets import PAPER_BASES, WaveletFilter, available_bases, get_filter


class TestRegistry:
    def test_paper_bases_are_registered(self):
        for name in PAPER_BASES:
            assert get_filter(name).name == name

    def test_available_bases_contains_extensions(self):
        names = available_bases()
        assert {"haar", "db1", "db2", "db4", "db6", "db8"} <= set(names)

    def test_lookup_is_case_insensitive(self):
        assert get_filter("Haar") is get_filter("haar")

    def test_unknown_basis_raises(self):
        with pytest.raises(ConfigurationError, match="unknown wavelet basis"):
            get_filter("coif1")

    def test_db1_is_haar_alias(self):
        np.testing.assert_allclose(
            get_filter("db1").lowpass, get_filter("haar").lowpass
        )


class TestFilterProperties:
    @pytest.mark.parametrize("name", ["haar", "db2", "db4", "db6", "db8"])
    def test_orthonormality(self, name):
        get_filter(name).check_orthonormality()

    @pytest.mark.parametrize("name", ["haar", "db2", "db4", "db6", "db8"])
    def test_lowpass_sums_to_sqrt2(self, name):
        bank = get_filter(name)
        assert math.isclose(float(bank.lowpass.sum()), math.sqrt(2.0), rel_tol=1e-9)

    @pytest.mark.parametrize("name", ["haar", "db2", "db4", "db6", "db8"])
    def test_highpass_sums_to_zero(self, name):
        bank = get_filter(name)
        assert abs(float(bank.highpass.sum())) < 1e-9

    @pytest.mark.parametrize(
        "name,taps", [("haar", 2), ("db2", 4), ("db4", 8), ("db6", 12), ("db8", 16)]
    )
    def test_lengths(self, name, taps):
        bank = get_filter(name)
        assert bank.length == taps
        assert bank.vanishing_moments == taps // 2

    def test_haar_values(self):
        bank = get_filter("haar")
        s = 1.0 / math.sqrt(2.0)
        np.testing.assert_allclose(bank.lowpass, [s, s])
        np.testing.assert_allclose(bank.highpass, [s, -s])

    def test_qmf_relation(self, paper_basis):
        bank = get_filter(paper_basis)
        length = bank.length
        expected = [
            (-1.0) ** j * bank.lowpass[length - 1 - j] for j in range(length)
        ]
        np.testing.assert_allclose(bank.highpass, expected)

    @pytest.mark.parametrize("name", ["db2", "db4", "db6", "db8"])
    def test_first_moment_vanishes(self, name):
        """Daubechies highpass filters of order >= 2 kill linear ramps."""
        bank = get_filter(name)
        moment = float(np.arange(bank.length) @ bank.highpass)
        assert abs(moment) < 1e-7


class TestConstruction:
    def test_from_lowpass_rejects_odd_length(self):
        with pytest.raises(ConfigurationError, match="even length"):
            WaveletFilter.from_lowpass("bad", [1.0, 0.0, 0.0])

    def test_from_lowpass_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            WaveletFilter.from_lowpass("bad", [[1.0, 0.0], [0.0, 1.0]])

    def test_check_orthonormality_rejects_bad_energy(self):
        bank = WaveletFilter.from_lowpass("bad", [1.0, 1.0])
        with pytest.raises(ConfigurationError, match="unit-energy"):
            bank.check_orthonormality()

    def test_check_orthonormality_rejects_shift_correlation(self):
        taps = np.array([0.6, 0.53, 0.45, 0.39])
        taps = taps / np.linalg.norm(taps)
        bank = WaveletFilter.from_lowpass("bad", taps)
        with pytest.raises(ConfigurationError):
            bank.check_orthonormality()
