"""Tests for design-time calibration (eq. 3) and the Q_DES controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PSAConfig, PruningSpec, calibrate, make_cohort
from repro.core import QualityController
from repro.core.calibration import extract_calibration_windows
from repro.errors import CalibrationError, ConfigurationError


@pytest.fixture(scope="module")
def corpus():
    cohort = make_cohort(n_arrhythmia=4, n_healthy=0)
    return [p.rr_series(duration=480.0) for p in cohort]


@pytest.fixture(scope="module")
def calibration(corpus):
    return calibrate(corpus)


class TestCalibrationWindows:
    def test_windows_have_workspace_size(self, corpus):
        windows = extract_calibration_windows(corpus, PSAConfig())
        assert all(w.size == 512 for w in windows)
        assert len(windows) > 10

    def test_windows_occupy_lower_half(self, corpus):
        """The paper's Fig. 3(a) geometry: data in the first ~N/2 cells."""
        windows = extract_calibration_windows(corpus, PSAConfig())
        upper_energy = sum(float(w[300:] @ w[300:]) for w in windows)
        total_energy = sum(float(w @ w) for w in windows)
        assert upper_energy / total_energy < 0.01

    def test_empty_corpus_rejected(self):
        with pytest.raises(CalibrationError):
            extract_calibration_windows([], PSAConfig())


class TestCalibration:
    def test_eq3_classification(self, calibration):
        """E{|z_k|} of the lowpass band exceeds THR, the highpass band
        falls below it — the significant/less-significant split."""
        assert calibration.lowpass_mean > calibration.band_threshold
        assert calibration.highpass_mean < calibration.band_threshold
        assert calibration.band_drop_supported

    def test_dynamic_thresholds_monotone(self, calibration):
        t = calibration.dynamic_thresholds
        assert 0 < t[1] < t[2] < t[3]

    def test_pruning_spec_carries_threshold(self, calibration):
        spec = calibration.pruning_spec(2, dynamic=True)
        assert spec.dynamic
        assert spec.dynamic_threshold == calibration.dynamic_thresholds[2]
        static = calibration.pruning_spec(2, dynamic=False)
        assert not static.dynamic
        assert static.dynamic_threshold is None

    def test_calibrated_dynamic_prunes_near_target_fraction(
        self, calibration, corpus
    ):
        """On corpus-like data the calibrated threshold should prune
        roughly the target fraction of butterfly terms."""
        from repro.ffts import WaveletFFT
        from repro.core.calibration import extract_calibration_windows

        spec = calibration.pruning_spec(2, dynamic=True)
        plan = WaveletFFT(512, pruning=spec)
        windows = extract_calibration_windows(corpus, PSAConfig())
        fractions = []
        for window in windows[:10]:
            breakdown = plan.count_breakdown(window)
            # Expected mults if nothing were pruned: one generic complex
            # mult per nonzero HL factor (band drop removes HH).
            executed = breakdown["twiddle"].mults
            unpruned = WaveletFFT(
                512, pruning=PruningSpec.band_only()
            ).count_breakdown(window)["twiddle"].mults
            fractions.append(1.0 - executed / unpruned)
        mean_fraction = float(np.mean(fractions))
        assert 0.25 < mean_fraction < 0.55  # target 0.40

    def test_window_count_recorded(self, calibration):
        assert calibration.n_windows > 10


class TestQualityController:
    @pytest.fixture(scope="class")
    def controller(self, corpus):
        return QualityController.profile(corpus[:2])

    def test_profiles_cover_ladder(self, controller):
        assert len(controller.profiles) == 8

    def test_select_respects_budget(self, controller):
        generous = controller.select(q_des=0.5)
        strict = controller.select(q_des=0.001)
        assert generous.energy_savings >= strict.energy_savings
        assert strict.distortion <= 0.001 or strict == min(
            controller.profiles, key=lambda p: p.distortion
        )

    def test_select_returns_most_saving_compliant(self, controller):
        q_des = 0.10
        chosen = controller.select(q_des)
        for profile in controller.profiles:
            if profile.distortion <= q_des:
                assert chosen.energy_savings >= profile.energy_savings

    def test_frontier_is_pareto(self, controller):
        frontier = controller.frontier()
        for earlier, later in zip(frontier, frontier[1:]):
            assert later.distortion < earlier.distortion
            assert later.energy_savings <= earlier.energy_savings

    def test_exact_mode_has_zero_distortion(self, controller):
        exact = [p for p in controller.profiles if p.spec.is_exact]
        assert len(exact) == 1
        assert exact[0].distortion < 1e-9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QualityController(())
        with pytest.raises(ConfigurationError):
            QualityController.profile([])
        from repro.core import ModeProfile

        profile = ModeProfile(
            spec=PruningSpec.none(),
            distortion=0.0,
            energy_savings=0.0,
            cycle_reduction=0.0,
        )
        controller = QualityController((profile,))
        with pytest.raises(ConfigurationError):
            controller.select(q_des=2.0)
