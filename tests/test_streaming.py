"""Streaming ingestion is bit-identical to whole-recording analysis.

The PR 4 acceptance bar: a :class:`StreamingSession` fed incrementally —
sample by sample, or in arbitrary ragged chunks — produces the same
spectrogram, frequency grid, window times, Welch average and executed
:class:`OpCounts`, bit for bit, as :meth:`Engine.analyze` on the
completed recording, for both PSA systems, every pruning mode and every
registered (available) provider.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Engine, EngineConfig, RRSeries, make_cohort
from repro.errors import SignalError
from repro.ffts.pruning import PruningSpec
from repro.ffts.providers.registry import available_providers


@pytest.fixture(scope="module")
def recording():
    return make_cohort().get("rsa-02").rr_series(duration=600.0)


#: Every pruning mode of the paper, plus both exact systems.
ALL_MODE_CONFIGS = [
    pytest.param(EngineConfig(provider="numpy"), id="conventional"),
    pytest.param(
        EngineConfig(system="quality-scalable", provider="numpy"),
        id="wavelet-exact",
    ),
    pytest.param(
        EngineConfig.for_mode("band", provider="numpy"), id="band"
    ),
    pytest.param(
        EngineConfig.for_mode("set1", provider="numpy"), id="set1"
    ),
    pytest.param(
        EngineConfig.for_mode("set2", provider="numpy"), id="set2"
    ),
    pytest.param(
        EngineConfig.for_mode("set3", provider="numpy"), id="set3"
    ),
    pytest.param(
        EngineConfig.for_mode("set3", dynamic=True, provider="numpy"),
        id="set3-dynamic",
    ),
]


def _ragged_chunks(rng, n):
    """Deterministic ragged chunk sizes covering 1..~40-beat bursts."""
    edges = [0]
    while edges[-1] < n:
        edges.append(min(n, edges[-1] + int(rng.integers(1, 40))))
    return list(zip(edges[:-1], edges[1:]))


def _assert_identical(batch, streamed):
    assert np.array_equal(batch.welch.frequencies, streamed.welch.frequencies)
    assert np.array_equal(batch.welch.spectrogram, streamed.welch.spectrogram)
    assert np.array_equal(batch.welch.averaged, streamed.welch.averaged)
    assert np.array_equal(
        batch.welch.window_times, streamed.welch.window_times
    )
    assert batch.welch.skipped_windows == streamed.welch.skipped_windows
    assert batch.counts == streamed.counts
    assert batch.lf_hf == streamed.lf_hf
    assert batch.band_powers == streamed.band_powers
    assert batch.detection.is_arrhythmia == streamed.detection.is_arrhythmia
    for got, want in zip(
        streamed.welch.window_spectra, batch.welch.window_spectra
    ):
        assert np.array_equal(got.power, want.power)
        assert got.counts == want.counts


class TestStreamingEquivalence:
    @pytest.mark.parametrize("config", ALL_MODE_CONFIGS)
    def test_ragged_chunks_bit_identical(self, config, recording):
        rng = np.random.default_rng(2014)
        with Engine(config) as engine:
            batch = engine.analyze(recording, count_ops=True)
            session = engine.open_stream(count_ops=True)
            for lo, hi in _ragged_chunks(rng, recording.times.size):
                session.feed(
                    recording.times[lo:hi], recording.intervals[lo:hi]
                )
            streamed = session.finalize()
        _assert_identical(batch, streamed)

    @pytest.mark.parametrize(
        "config",
        [
            pytest.param(EngineConfig(provider="numpy"), id="conventional"),
            pytest.param(
                EngineConfig.for_mode("set3", provider="numpy"), id="set3"
            ),
            pytest.param(
                EngineConfig.for_mode("set3", dynamic=True, provider="numpy"),
                id="set3-dynamic",
            ),
        ],
    )
    def test_sample_by_sample_bit_identical(self, config, recording):
        with Engine(config) as engine:
            batch = engine.analyze(recording, count_ops=True)
            session = engine.open_stream(count_ops=True)
            for t, x in zip(recording.times, recording.intervals):
                session.feed(float(t), float(x))
            streamed = session.finalize()
        _assert_identical(batch, streamed)

    @pytest.mark.parametrize(
        "provider",
        [
            name
            for name, ok in available_providers().items()
            if ok
        ],
    )
    @pytest.mark.parametrize("mode", ["exact", "set3"])
    def test_every_registered_provider(self, provider, mode, recording):
        rng = np.random.default_rng(7)
        config = EngineConfig.for_mode(mode, provider=provider)
        with Engine(config) as engine:
            batch = engine.analyze(recording, count_ops=True)
            session = engine.open_stream(count_ops=True)
            for lo, hi in _ragged_chunks(rng, recording.times.size):
                session.feed(
                    recording.times[lo:hi], recording.intervals[lo:hi]
                )
            streamed = session.finalize()
        _assert_identical(batch, streamed)

    def test_feed_record_whole_recording(self, recording):
        with Engine(EngineConfig(provider="numpy")) as engine:
            batch = engine.analyze(recording)
            session = engine.open_stream()
            session.feed_record(recording)
            streamed = session.finalize()
        _assert_identical(batch, streamed)

    def test_sparse_stretch_skip_counting(self):
        """Windows with too few beats are skipped identically."""
        # Dense minute, a sparse two-minute stretch (enough beats to
        # keep the window but fewer than MIN_BEATS_PER_WINDOW), dense
        # tail: the planner counts skips; the stream must match.
        t = np.concatenate(
            [
                np.arange(0.0, 120.0, 1.0),
                np.arange(120.0, 360.0, 24.0),
                np.arange(360.0, 720.0, 1.0),
            ]
        )
        x = 0.8 + 0.01 * np.sin(2 * np.pi * 0.25 * t)
        rr = RRSeries(times=t, intervals=x)
        with Engine(EngineConfig(provider="numpy")) as engine:
            batch = engine.analyze(rr)
            assert batch.welch.skipped_windows > 0
            session = engine.open_stream()
            for lo in range(0, t.size, 17):
                session.feed(t[lo : lo + 17], x[lo : lo + 17])
            streamed = session.finalize()
        _assert_identical(batch, streamed)


class TestEmissionProtocol:
    def test_windows_emit_as_they_complete(self, recording):
        with Engine(EngineConfig(provider="numpy")) as engine:
            session = engine.open_stream()
            live = []
            for t, x in zip(recording.times, recording.intervals):
                live.extend(session.feed(float(t), float(x)))
            pre_finalize = session.n_windows
            result = session.finalize()
        # Everything but the trailing window(s) streamed out live.
        assert len(live) == pre_finalize
        assert pre_finalize >= result.welch.n_windows - 2
        assert result.welch.n_windows == len(session.emissions)

    def test_emission_metadata_matches_result(self, recording):
        with Engine(EngineConfig(provider="numpy")) as engine:
            session = engine.open_stream()
            session.feed_record(recording)
            result = session.finalize()
        for emission in session.emissions:
            assert emission.index == session.emissions.index(emission)
            assert (
                result.welch.window_times[emission.index] == emission.center
            )
            assert np.array_equal(
                result.welch.window_spectra[emission.index].power,
                emission.spectrum.power,
            )
        starts = [e.start for e in session.emissions]
        assert starts == sorted(starts)

    def test_finalize_is_idempotent(self, recording):
        with Engine(EngineConfig(provider="numpy")) as engine:
            session = engine.open_stream()
            session.feed_record(recording)
            first = session.finalize()
            assert session.finalize() is first
            assert session.finalized

    def test_feed_after_finalize_rejected(self, recording):
        with Engine(EngineConfig(provider="numpy")) as engine:
            session = engine.open_stream()
            session.feed_record(recording)
            session.finalize()
            with pytest.raises(SignalError, match="finalized"):
                session.feed(recording.times[-1] + 1.0, 0.8)

    def test_non_increasing_times_rejected(self):
        with Engine(EngineConfig(provider="numpy")) as engine:
            session = engine.open_stream()
            session.feed([0.0, 1.0], [0.8, 0.8])
            with pytest.raises(SignalError, match="strictly increasing"):
                session.feed(1.0, 0.8)
            with pytest.raises(SignalError, match="strictly increasing"):
                session.feed([2.0, 2.0], [0.8, 0.8])

    def test_shape_validation(self):
        with Engine(EngineConfig(provider="numpy")) as engine:
            session = engine.open_stream()
            with pytest.raises(SignalError, match="match"):
                session.feed([0.0, 1.0], [0.8])
            with pytest.raises(SignalError, match="non-finite"):
                session.feed(np.nan, 0.8)
            with pytest.raises(SignalError, match="RRSeries"):
                session.feed_record((np.arange(4.0), np.ones(4)))
            assert session.feed([], []) == []

    def test_too_short_stream_rejected(self):
        with Engine(EngineConfig(provider="numpy")) as engine:
            session = engine.open_stream()
            session.feed([0.0, 1.0, 2.0], [0.8, 0.8, 0.8])
            with pytest.raises(SignalError, match="at least"):
                session.finalize()

    def test_buffer_growth_preserves_samples(self):
        """Feeds far beyond the initial capacity keep every sample."""
        t = np.arange(0.0, 3000.0, 0.9)
        x = 0.9 + 0.02 * np.sin(2 * np.pi * 0.2 * t)
        rr = RRSeries(times=t, intervals=x)
        with Engine(EngineConfig(provider="numpy")) as engine:
            session = engine.open_stream()
            for lo in range(0, t.size, 100):
                session.feed(t[lo : lo + 100], x[lo : lo + 100])
            assert session.n_samples == t.size
            streamed = session.finalize()
            batch = engine.analyze(rr)
        _assert_identical(batch, streamed)


class TestBoundedMemory:
    def test_long_stream_buffer_bounded_and_identical(self):
        """Hours of streaming hold ~one window of beats, not the stream."""
        t = np.arange(0.0, 7200.0, 1.0)  # two hours of 1 Hz beats
        x = (
            0.9
            + 0.05 * np.sin(2 * np.pi * 0.1 * t)
            + 0.03 * np.sin(2 * np.pi * 0.25 * t)
        )
        rr = RRSeries(times=t, intervals=x)
        with Engine(EngineConfig(provider="numpy")) as engine:
            batch = engine.analyze(rr, count_ops=True)
            session = engine.open_stream(count_ops=True)
            max_buffered = 0
            for lo in range(0, t.size, 250):
                session.feed(t[lo : lo + 250], x[lo : lo + 250])
                max_buffered = max(max_buffered, session.buffered_samples)
            # The full stream is accounted for, but never all resident:
            # compaction dropped everything before the earliest window
            # the session could still need.
            assert session.n_samples == t.size
            assert session.buffered_samples < t.size
            assert session._dropped > 0
            assert max_buffered < 3000  # ~ slack + one window + one chunk
            assert session._times.size <= 4096  # capacity stopped growing
            streamed = session.finalize()
        _assert_identical(batch, streamed)

    def test_compaction_preserves_sample_by_sample_identity(self):
        """Beat-at-a-time feeding across compactions stays bit-exact."""
        t = np.arange(0.0, 2600.0, 0.8)
        x = 0.8 + 0.02 * np.sin(2 * np.pi * 0.2 * t)
        rr = RRSeries(times=t, intervals=x)
        with Engine(EngineConfig(provider="numpy")) as engine:
            batch = engine.analyze(rr, count_ops=True)
            session = engine.open_stream(count_ops=True)
            for beat_t, beat_x in zip(t, x):
                session.feed(float(beat_t), float(beat_x))
            assert session._dropped > 0
            streamed = session.finalize()
        _assert_identical(batch, streamed)


class TestStreamingPruningSpecifics:
    def test_dynamic_threshold_spec_round_trips_through_stream(
        self, recording
    ):
        """A calibrated fixed dynamic threshold streams identically."""
        spec = PruningSpec.paper_mode(3, dynamic=True).with_dynamic_threshold(
            0.08
        )
        config = EngineConfig(
            system="quality-scalable", pruning=spec, provider="numpy"
        )
        with Engine(config) as engine:
            batch = engine.analyze(recording, count_ops=True)
            session = engine.open_stream(count_ops=True)
            session.feed_record(recording)
            streamed = session.finalize()
        _assert_identical(batch, streamed)
