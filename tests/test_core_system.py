"""Tests for the core PSA systems (config, conventional, quality-scalable)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConventionalPSA,
    PSAConfig,
    PruningSpec,
    QualityScalablePSA,
    make_cohort,
)
from repro.errors import ConfigurationError, SignalError
from repro.hrv import RRSeries


@pytest.fixture(scope="module")
def rsa_recording():
    return make_cohort().get("rsa-01").rr_series(duration=480.0)


@pytest.fixture(scope="module")
def healthy_recording():
    return make_cohort().get("ctl-01").rr_series(duration=480.0)


class TestPSAConfig:
    def test_defaults_match_paper(self):
        config = PSAConfig()
        assert config.fft_size == 512
        assert config.window_seconds == 120.0
        assert config.overlap == 0.5
        assert config.basis == "haar"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PSAConfig(fft_size=500)
        with pytest.raises(ConfigurationError):
            PSAConfig(overlap=1.0)
        with pytest.raises(ConfigurationError):
            PSAConfig(basis="coif5")
        with pytest.raises(ConfigurationError):
            PSAConfig(scaling="weird")
        with pytest.raises(ConfigurationError):
            # 10-minute windows cannot reach 0.4 Hz on a 512 workspace.
            PSAConfig(window_seconds=600.0)

    def test_with_helpers(self):
        config = PSAConfig()
        assert config.with_basis("db2").basis == "db2"
        assert config.with_fft_size(1024).fft_size == 1024
        assert config.basis == "haar"  # original untouched

    def test_nominal_beats(self):
        assert PSAConfig().nominal_beats_per_window == 140


class TestConventionalPSA:
    def test_analyze_structure(self, rsa_recording):
        result = ConventionalPSA().analyze(rsa_recording)
        assert result.lf_hf > 0
        assert set(result.band_powers) == {"ULF", "VLF", "LF", "HF"}
        assert result.window_ratios.size == result.welch.n_windows
        assert result.frequencies[-1] <= 0.4 + 1e-9

    def test_detects_arrhythmia(self, rsa_recording):
        result = ConventionalPSA().analyze(rsa_recording)
        assert result.detection.is_arrhythmia
        assert result.lf_hf < 1.0

    def test_healthy_not_flagged(self, healthy_recording):
        result = ConventionalPSA().analyze(healthy_recording)
        assert not result.detection.is_arrhythmia
        assert result.lf_hf > 1.0

    def test_counts_on_request(self, rsa_recording):
        without = ConventionalPSA().analyze(rsa_recording)
        with_counts = ConventionalPSA().analyze(rsa_recording, count_ops=True)
        assert without.counts is None
        assert with_counts.counts is not None
        assert with_counts.counts.total > 0

    def test_requires_rr_series(self):
        with pytest.raises(SignalError):
            ConventionalPSA().analyze([0.8, 0.9, 1.0])

    def test_window_counts_fft_dominated(self):
        system = ConventionalPSA()
        window = system.window_counts()
        fft = system.backend.static_counts()
        assert fft.total / window.total > 0.5


class TestQualityScalablePSA:
    def test_exact_mode_matches_conventional(self, rsa_recording):
        conv = ConventionalPSA().analyze(rsa_recording)
        exact = QualityScalablePSA(pruning=PruningSpec.none()).analyze(
            rsa_recording
        )
        assert exact.lf_hf == pytest.approx(conv.lf_hf, rel=1e-6)

    @pytest.mark.parametrize("set_index", [1, 2, 3])
    def test_pruned_ratio_error_small(self, rsa_recording, set_index):
        """The paper's core claim: pruning costs only a few percent of
        LF/HF accuracy (Table I: <= ~10 %)."""
        conv = ConventionalPSA().analyze(rsa_recording)
        pruned = QualityScalablePSA(
            pruning=PruningSpec.paper_mode(set_index)
        ).analyze(rsa_recording)
        rel_err = abs(pruned.lf_hf - conv.lf_hf) / conv.lf_hf
        assert rel_err < 0.12

    def test_detection_preserved_under_max_pruning(
        self, rsa_recording, healthy_recording
    ):
        """Section VI.A: 'in all cases we could correctly identify the
        sinus-arrhythmia condition'."""
        system = QualityScalablePSA(pruning=PruningSpec.paper_mode(3))
        assert system.analyze(rsa_recording).detection.is_arrhythmia
        assert not system.analyze(healthy_recording).detection.is_arrhythmia

    def test_energy_report_fft_only(self):
        system = QualityScalablePSA(pruning=PruningSpec.paper_mode(3))
        static = system.energy_report(apply_vfs=False, fft_only=True)
        vfs = system.energy_report(apply_vfs=True, fft_only=True)
        assert 0.30 < static.energy_savings < 0.55
        assert 0.65 < vfs.energy_savings < 0.88
        assert vfs.approximate.operating_point.voltage < 1.0

    def test_energy_report_whole_window(self):
        system = QualityScalablePSA(pruning=PruningSpec.paper_mode(3))
        report = system.energy_report(apply_vfs=True, fft_only=False)
        assert 0.2 < report.energy_savings < 0.7

    def test_energy_savings_grow_with_mode(self):
        savings = []
        for mode in (1, 2, 3):
            system = QualityScalablePSA(pruning=PruningSpec.paper_mode(mode))
            savings.append(
                system.energy_report(apply_vfs=True, fft_only=True).energy_savings
            )
        assert savings[0] < savings[1] < savings[2]

    def test_dynamic_costs_more_energy_than_static(self):
        static = QualityScalablePSA(pruning=PruningSpec.paper_mode(3))
        dynamic = QualityScalablePSA(
            pruning=PruningSpec.paper_mode(3, dynamic=True)
        )
        s = static.energy_report(apply_vfs=True, fft_only=True).energy_savings
        d = dynamic.energy_report(apply_vfs=True, fft_only=True).energy_savings
        assert d < s

    def test_db_bases_work_end_to_end(self, rsa_recording):
        for basis in ("db2", "db4"):
            system = QualityScalablePSA(
                config=PSAConfig(basis=basis),
                pruning=PruningSpec.band_only(),
            )
            result = system.analyze(rsa_recording)
            assert result.detection.is_arrhythmia


class TestWindowRatiosMonitoring:
    def test_hourly_monitoring_window_count(self):
        """One hour at 50 % overlap -> ~58 windows (Section VI.A)."""
        rr = make_cohort().get("rsa-05").rr_series(duration=3600.0)
        result = ConventionalPSA().analyze(rr)
        assert 50 <= result.welch.n_windows <= 62

    def test_window_ratios_all_below_one_for_rsa(self, rsa_recording):
        result = ConventionalPSA().analyze(rsa_recording)
        assert np.mean(result.window_ratios < 1.0) > 0.9
