"""Heterogeneous hub batches are bit-identical to homogeneous runs.

The tentpole invariant of quality-adaptive shedding: a subject pinned
at ladder level M inside a *heterogeneous* flush (other subjects at
other levels, all analysed grouped-by-level through the one
``analyze_spans`` choke point) must emit windows bit-identical —
spectra **and** executed :class:`OpCounts` — to the same samples run
through a hub homogeneously at level M.  Checked for both PSA systems,
every registered provider, and all three transports (in-process,
shm pool, socket daemon).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Engine, EngineConfig, SLOSpec
from repro.ffts.providers.registry import available_providers
from repro.fleet.remote import WorkerDaemon

LEVELS = {"mon-a": 0, "mon-b": 2, "mon-c": 3}


def _providers():
    return [name for name, ok in available_providers().items() if ok]


@pytest.fixture(scope="module")
def shared_daemon():
    with WorkerDaemon() as daemon:
        daemon.start()
        yield daemon


def feed_samples(subject, beats):
    rng = np.random.default_rng(sum(map(ord, subject)))
    rr = 0.8 + 0.05 * rng.standard_normal(beats)
    return np.cumsum(rr), rr


def run_hub(config, levels, beats=420):
    """One flush with every subject pinned at its level; emissions per subject."""
    with Engine(config) as engine:
        hub = engine.open_hub(count_ops=True)
        sessions = {subject: hub.open(subject) for subject in levels}
        for subject, level in levels.items():
            hub.set_quality(subject, level)
        for subject, session in sessions.items():
            times, rr = feed_samples(subject, beats)
            session.feed(times, rr)
        hub.flush()
        return {s: sess.emissions for s, sess in sessions.items()}


def assert_emissions_identical(got, want):
    assert len(got) == len(want) and len(got) > 0
    for g, w in zip(got, want):
        assert g.quality == w.quality
        assert g.start == w.start
        assert np.array_equal(g.spectrum.frequencies, w.spectrum.frequencies)
        assert np.array_equal(g.spectrum.power, w.spectrum.power)
        assert g.spectrum.counts == w.spectrum.counts


class TestHeterogeneousBitIdentity:
    @pytest.mark.parametrize("provider", _providers())
    @pytest.mark.parametrize(
        "system", ["conventional", "quality-scalable"]
    )
    def test_matches_homogeneous_per_level(self, system, provider):
        """Every subject of a mixed flush == its homogeneous twin run."""
        config = EngineConfig(system=system, provider=provider, slo=SLOSpec())
        mixed = run_hub(config, LEVELS)
        for subject, level in LEVELS.items():
            homogeneous = run_hub(config, {subject: level})
            assert_emissions_identical(mixed[subject], homogeneous[subject])
            assert all(e.quality == level for e in mixed[subject])

    def test_levels_change_which_spectra_emerge(self):
        """Sanity: degraded levels actually produce different spectra."""
        config = EngineConfig(system="quality-scalable", slo=SLOSpec())
        full = run_hub(config, {"mon-a": 0})["mon-a"]
        deep = run_hub(config, {"mon-a": 3})["mon-a"]
        assert len(full) == len(deep)
        assert any(
            not np.array_equal(f.spectrum.power, d.spectrum.power)
            for f, d in zip(full, deep)
        )
        assert sum(e.spectrum.counts.mults for e in deep) < sum(
            e.spectrum.counts.mults for e in full
        )


@pytest.mark.slow
class TestTransportsAgree:
    """One heterogeneous scenario, bit-identical on all three transports.

    Feeds are sized so each level group slices (several fleet tasks per
    flush) — otherwise the pool/socket paths would quietly fall back to
    the single-batch in-process shortcut and the test would compare
    nothing.
    """

    BEATS = 4200

    def test_in_process_pool_socket(self, shared_daemon):
        config = EngineConfig(system="quality-scalable", slo=SLOSpec())
        reference = run_hub(config, LEVELS, beats=self.BEATS)
        pool = run_hub(
            config.replace(jobs=2), LEVELS, beats=self.BEATS
        )
        socket_cfg = config.replace(
            jobs=1, workers=(shared_daemon.address,)
        )
        remote = run_hub(socket_cfg, LEVELS, beats=self.BEATS)
        for subject in LEVELS:
            assert len(reference[subject]) >= 16  # really sliced
            assert_emissions_identical(pool[subject], reference[subject])
            assert_emissions_identical(remote[subject], reference[subject])


class TestQualityRecording:
    def test_emission_quality_follows_level_changes(self):
        """Level changes apply from the next flush; history is kept."""
        config = EngineConfig(system="quality-scalable", slo=SLOSpec())
        with Engine(config) as engine:
            hub = engine.open_hub()
            session = hub.open("mon-a")
            times, rr = feed_samples("mon-a", 420)
            session.feed(times, rr)
            hub.flush()
            hub.set_quality("mon-a", 2)
            t2 = times[-1] + np.cumsum(rr)
            session.feed(t2, rr)
            hub.flush()
            qualities = [e.quality for e in session.emissions]
            assert set(qualities) == {0, 2}
            # Strictly: the early windows are 0, the later ones 2.
            switch = qualities.index(2)
            assert all(q == 0 for q in qualities[:switch])
            assert all(q == 2 for q in qualities[switch:])

    def test_default_hub_emits_level_zero(self):
        config = EngineConfig(system="quality-scalable")
        with Engine(config) as engine:
            hub = engine.open_hub()
            session = hub.open("mon-a")
            times, rr = feed_samples("mon-a", 420)
            session.feed(times, rr)
            hub.flush()
            assert session.emissions
            assert all(e.quality == 0 for e in session.emissions)

    def test_last_flush_levels_histogram(self):
        config = EngineConfig(system="quality-scalable", slo=SLOSpec())
        with Engine(config) as engine:
            hub = engine.open_hub()
            a, b = hub.open("mon-a"), hub.open("mon-b")
            hub.set_quality("mon-b", 1)
            for subject, session in (("mon-a", a), ("mon-b", b)):
                times, rr = feed_samples(subject, 420)
                session.feed(times, rr)
            hub.flush()
            histogram = hub.last_flush_levels
            assert set(histogram) == {0, 1}
            assert histogram[0] == len(a.emissions)
            assert histogram[1] == len(b.emissions)

    def test_finalize_after_mixed_quality_flushes(self):
        """finalize_all still assembles results over degraded history."""
        config = EngineConfig(system="quality-scalable", slo=SLOSpec())
        with Engine(config) as engine:
            hub = engine.open_hub()
            session = hub.open("mon-a")
            hub.set_quality("mon-a", 2)
            times, rr = feed_samples("mon-a", 900)
            session.feed(times, rr)
            results = hub.finalize_all()
            assert "mon-a" in results
            rows = results["mon-a"].welch.spectrogram.shape[0]
            assert rows == len(session.emissions)


class TestControlLoopEndToEnd:
    def test_overload_sheds_and_recovers_through_real_flushes(self):
        """The closed loop through actual hub flushes, fault-driven."""
        from repro.testing import FaultClock, FlushLatencyFault

        config = EngineConfig(
            system="quality-scalable",
            slo=SLOSpec(
                target_p95_ms=20.0, window=2, step_down_after=1,
                recover_after=1, policy="uniform",
            ),
        )
        with Engine(config) as engine:
            hub = engine.open_hub()
            clock = FaultClock().install(hub)
            FlushLatencyFault(
                per_window_ms=10.0, discount=0.3, load=(8.0,) * 6 + (0.01,)
            ).install(hub)
            session = hub.open("mon-a")
            cursor = 0.0
            seen_levels = set()
            for _ in range(20):
                rng = np.random.default_rng(3)
                rr = 0.8 + 0.05 * rng.standard_normal(300)
                times = cursor + np.cumsum(rr)
                session.feed(times, rr)
                cursor = float(times[-1])
                hub.flush()
                seen_levels.add(hub.quality_level("mon-a"))
            stats = hub.controller_stats()
            assert stats["steps_down"] > 0
            assert stats["steps_up"] > 0
            assert max(seen_levels) > 0
            assert hub.quality_level("mon-a") == 0  # fully recovered
            assert set(stats["windows_by_level"]) == seen_levels
            clock.uninstall()
