"""Tier-1 repository hygiene guard.

PR 2 accidentally committed 60 ``.pyc`` files; this guard makes that
class of regression a test failure.  The same check is available as a
standalone tool (``python tools/check_no_pyc.py``) for pre-commit use.
"""

from __future__ import annotations

import pathlib
import shutil
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TOOLS = REPO_ROOT / "tools"


def _git_usable() -> bool:
    if shutil.which("git") is None:
        return False
    probe = subprocess.run(
        ["git", "rev-parse", "--is-inside-work-tree"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    return probe.returncode == 0 and probe.stdout.strip() == "true"


@pytest.mark.skipif(
    not _git_usable(), reason="not a git checkout (sdist or exported tree)"
)
def test_no_compiled_artifacts_tracked():
    sys.path.insert(0, str(TOOLS))
    try:
        from check_no_pyc import tracked_artifacts
    finally:
        sys.path.remove(str(TOOLS))
    offenders = tracked_artifacts(REPO_ROOT)
    assert offenders == [], (
        "compiled python artifacts are tracked by git; "
        "run `python tools/check_no_pyc.py` and git rm -r --cached them: "
        f"{offenders[:10]}"
    )


def test_gitignore_covers_artifacts():
    gitignore = (REPO_ROOT / ".gitignore").read_text()
    for pattern in ("__pycache__/", "*.pyc", "*.egg-info/", ".pytest_cache/"):
        assert pattern in gitignore, f".gitignore must cover {pattern}"
