"""Tests for the RISC VM, its assembler and the cost-model validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PlatformError
from repro.platform import (
    Assembler,
    InstructionClass,
    RiscVM,
    SensorNodeModel,
    complex_mac_program,
    dot_product_program,
    threshold_scan_program,
)
from repro.ffts import OpCounts


def _run(source, memory=None, memory_words=4096):
    vm = RiscVM(memory_words=memory_words)
    if memory is not None:
        vm.load_memory(0, memory)
    program = Assembler().assemble(source)
    stats = vm.run(program)
    return vm, stats


class TestAssembler:
    def test_labels_and_comments(self):
        source = """
            ; a comment
            ldi r0, 1    # another
        top:
            addi r0, r0, 1
            ldi r1, 5
            cmp r0, r1
            blt top
            halt
        """
        program = Assembler().assemble(source)
        assert program[0].opcode == "ldi"
        assert program[-1].opcode == "halt"

    def test_unknown_opcode(self):
        with pytest.raises(PlatformError, match="unknown opcode"):
            Assembler().assemble("fma r0, r1, r2\nhalt")

    def test_unknown_label(self):
        with pytest.raises(PlatformError, match="unknown label"):
            Assembler().assemble("jmp nowhere\nhalt")

    def test_duplicate_label(self):
        with pytest.raises(PlatformError, match="duplicate label"):
            Assembler().assemble("a:\nldi r0, 1\na:\nhalt")

    def test_bad_register(self):
        with pytest.raises(PlatformError):
            Assembler().assemble("ldi r99, 1\nhalt")
        with pytest.raises(PlatformError):
            Assembler().assemble("mov r0, x1\nhalt")

    def test_operand_arity(self):
        with pytest.raises(PlatformError, match="expects"):
            Assembler().assemble("add r0, r1\nhalt")


class TestVmExecution:
    def test_arithmetic(self):
        vm, _ = _run(
            """
            ldi r1, 6
            ldi r2, 7
            mul r3, r1, r2
            ldi r4, 2
            st r3, [r4 + 0]
            halt
            """
        )
        assert vm.memory[2] == 42.0

    def test_branching_loop(self):
        vm, stats = _run(
            """
            ldi r0, 0
            ldi r1, 10
            ldi r2, 0.0
        loop:
            add r2, r2, r0
            addi r0, r0, 1
            cmp r0, r1
            blt loop
            ldi r3, 0
            st r2, [r3 + 0]
            halt
            """
        )
        assert vm.memory[0] == sum(range(10))
        assert stats.class_counts[InstructionClass.BRANCH] == 10

    def test_memory_bounds(self):
        with pytest.raises(PlatformError, match="out of range"):
            _run("ldi r0, 9999\nld r1, [r0 + 0]\nhalt", memory_words=16)

    def test_runaway_protection(self):
        vm = RiscVM(max_instructions=100)
        program = Assembler().assemble("spin:\njmp spin\nhalt")
        with pytest.raises(PlatformError, match="instruction limit"):
            vm.run(program)

    def test_cycle_accounting_matches_isa(self):
        _, stats = _run("ldi r0, 1\nldi r1, 2\nadd r2, r0, r1\nhalt")
        # 3 ALU + 1 NOP(halt) at default costs = 4 cycles.
        assert stats.cycles == 4.0
        assert stats.instructions == 4


class TestMicroKernels:
    def test_dot_product_correct(self, rng):
        n = 64
        a = rng.standard_normal(n)
        b = rng.standard_normal(n)
        source, _ = dot_product_program(n)
        vm = RiscVM()
        vm.load_memory(0, a)
        vm.load_memory(n, b)
        stats = vm.run(Assembler().assemble(source))
        assert vm.memory[2 * n] == pytest.approx(float(a @ b), rel=1e-9)
        assert stats.cycles > 0

    def test_complex_mac_correct(self, rng):
        n = 32
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        w = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        inter_x = np.column_stack([x.real, x.imag]).ravel()
        inter_w = np.column_stack([w.real, w.imag]).ravel()
        source, _ = complex_mac_program(n)
        vm = RiscVM()
        vm.load_memory(0, inter_x)
        vm.load_memory(2 * n, inter_w)
        vm.run(Assembler().assemble(source))
        expected = np.sum(x * w)
        assert vm.memory[4 * n] == pytest.approx(expected.real, rel=1e-9)
        assert vm.memory[4 * n + 1] == pytest.approx(expected.imag, rel=1e-9)

    def test_threshold_scan_correct(self, rng):
        n = 64
        data = rng.standard_normal(n)
        source, _ = threshold_scan_program(n, threshold=0.5)
        vm = RiscVM()
        vm.load_memory(0, data)
        vm.run(Assembler().assemble(source))
        assert vm.memory[n] == float(np.count_nonzero(np.abs(data) >= 0.5))

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            dot_product_program(5)
        with pytest.raises(ValueError):
            complex_mac_program(0)
        with pytest.raises(ValueError):
            threshold_scan_program(6, 0.5)


class TestCostModelValidation:
    """The analytic expansion factors must track the executable machine."""

    def _ratio(self, source, counted, memory):
        vm = RiscVM()
        vm.load_memory(0, memory)
        stats = vm.run(Assembler().assemble(source))
        analytic = SensorNodeModel().cycles(counted)
        return analytic / stats.cycles

    def test_dot_product_expansion(self, rng):
        n = 256
        source, counted = dot_product_program(n)
        ratio = self._ratio(source, counted, rng.standard_normal(2 * n + 8))
        assert 0.6 < ratio < 1.45

    def test_complex_mac_expansion(self, rng):
        n = 256
        source, counted = complex_mac_program(n)
        ratio = self._ratio(source, counted, rng.standard_normal(4 * n + 8))
        assert 0.6 < ratio < 1.45

    def test_threshold_scan_expansion(self, rng):
        n = 256
        source, _ = threshold_scan_program(n, 0.5)
        # The analytic model of one dynamic check covers the magnitude
        # estimate (1 add) plus the compare; the VM kernel realises the
        # same work as abs+cmp+branch+count.
        counted = OpCounts(adds=n, compares=n)
        ratio = self._ratio(source, counted, rng.standard_normal(n + 8))
        assert 0.5 < ratio < 1.5

    def test_average_expansion_accuracy(self, rng):
        """Across the kernels the model is unbiased within ~25 %."""
        ratios = []
        n = 256
        for source, counted, mem in (
            (*dot_product_program(n), rng.standard_normal(2 * n + 8)),
            (*complex_mac_program(n), rng.standard_normal(4 * n + 8)),
        ):
            ratios.append(self._ratio(source, counted, mem))
        assert 0.75 < float(np.mean(ratios)) < 1.3
