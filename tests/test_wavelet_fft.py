"""Tests for the DWT-based FFT kernel and its pruning modes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, TransformError
from repro.ffts import (
    PruningSpec,
    TWIDDLE_SETS,
    WaveletFFT,
    split_radix_counts,
    static_twiddle_mask,
    twiddle_threshold_for_fraction,
    wavelet_fft,
)


def _random_complex(rng, n):
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


class TestExactness:
    @pytest.mark.parametrize("n", [4, 8, 32, 256, 512])
    def test_exact_matches_numpy(self, n, paper_basis, rng):
        x = _random_complex(rng, n)
        plan = WaveletFFT(n, basis=paper_basis)
        np.testing.assert_allclose(plan.transform(x), np.fft.fft(x), atol=1e-8)

    @pytest.mark.parametrize("levels", [1, 2, 3, 4])
    def test_deeper_recursion_still_exact(self, levels, paper_basis, rng):
        n = 64
        x = _random_complex(rng, n)
        plan = WaveletFFT(n, basis=paper_basis, levels=levels)
        np.testing.assert_allclose(plan.transform(x), np.fft.fft(x), atol=1e-8)

    def test_real_input(self, paper_basis, rng):
        x = rng.standard_normal(128)
        plan = WaveletFFT(128, basis=paper_basis)
        np.testing.assert_allclose(plan.transform(x), np.fft.fft(x), atol=1e-8)

    def test_split_radix_backend_equivalent(self, rng):
        x = _random_complex(rng, 64)
        a = WaveletFFT(64, sub_backend="numpy").transform(x)
        b = WaveletFFT(64, sub_backend="split-radix").transform(x)
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_convenience_wrapper(self, rng):
        x = _random_complex(rng, 32)
        np.testing.assert_allclose(wavelet_fft(x), np.fft.fft(x), atol=1e-8)

    def test_wrong_length_rejected(self, rng):
        plan = WaveletFFT(64)
        with pytest.raises(TransformError, match="does not match"):
            plan.transform(_random_complex(rng, 32))

    def test_bad_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            WaveletFFT(2)
        with pytest.raises(ConfigurationError):
            WaveletFFT(64, levels=0)
        with pytest.raises(ConfigurationError):
            WaveletFFT(64, levels=6)
        with pytest.raises(ConfigurationError):
            WaveletFFT(64, sub_backend="fftw")


class TestBandDrop:
    def test_band_drop_is_lowpass_projection(self, rng):
        """Eq. 7: the pruned transform equals F applied to the lowpass
        reconstruction of the signal (detail coefficients zeroed)."""
        from repro.wavelets import dwt_level, idwt_level

        n = 128
        x = rng.standard_normal(n)
        plan = WaveletFFT(n, pruning=PruningSpec.band_only())
        approx, detail = dwt_level(x, "haar")
        smoothed = idwt_level(approx, np.zeros_like(detail), "haar")
        np.testing.assert_allclose(
            plan.transform(x), np.fft.fft(smoothed), atol=1e-8
        )

    def test_band_drop_error_small_for_smooth_signals(self, rng):
        n = 256
        t = np.arange(n) / n
        smooth = np.sin(2 * np.pi * 3 * t) + 0.5 * np.cos(2 * np.pi * 7 * t)
        plan = WaveletFFT(n, pruning=PruningSpec.band_only())
        exact = np.fft.fft(smooth)
        approx = plan.transform(smooth)
        rel = np.linalg.norm(approx - exact) / np.linalg.norm(exact)
        assert rel < 0.08

    def test_band_drop_error_large_for_alternating_signal(self):
        n = 64
        x = np.array([1.0, -1.0] * (n // 2))
        plan = WaveletFFT(n, pruning=PruningSpec.band_only())
        approx = plan.transform(x)
        # The alternating signal lives entirely in the highpass band.
        assert np.linalg.norm(approx) < 1e-8


class TestStaticTwiddlePruning:
    @pytest.mark.parametrize("set_index", [1, 2, 3])
    def test_pruned_fraction_matches_target(self, set_index):
        n = 512
        spec = PruningSpec(twiddle_fraction=TWIDDLE_SETS[set_index])
        plan = WaveletFFT(n, pruning=spec)
        kept = np.count_nonzero(plan._hl_keep) + np.count_nonzero(plan._hh_keep)
        expected_pruned = int(np.floor(TWIDDLE_SETS[set_index] * 2 * n))
        assert 2 * n - kept == expected_pruned

    def test_prunes_smallest_factors_first(self):
        plan = WaveletFFT(512, pruning=PruningSpec(twiddle_fraction=0.2))
        pruned_mags = np.abs(plan._hl[~plan._hl_keep])
        kept_mags = np.abs(plan._hl[plan._hl_keep])
        if pruned_mags.size and kept_mags.size:
            assert pruned_mags.max() <= kept_mags.min() + 1e-12

    def test_distortion_grows_with_pruning_on_average(self):
        """Average MSE over many signals grows with the pruned fraction.

        Per-signal monotonicity does not hold exactly (pruned terms can
        cancel part of the band-drop error), but in expectation each extra
        pruned factor removes |A_k L_k|^2 of signal energy, so the mean
        MSE must increase — which is the sense of the paper's Fig. 7.
        """
        n = 256
        fractions = (0.0, 0.2, 0.4, 0.6)
        plans = [
            WaveletFFT(n, pruning=PruningSpec(twiddle_fraction=f))
            for f in fractions
        ]
        totals = np.zeros(len(fractions))
        for trial in range(20):
            local = np.random.default_rng(trial)
            x = local.standard_normal(n)
            exact = np.fft.fft(x)
            for i, plan in enumerate(plans):
                err = plan.transform(x) - exact
                totals[i] += float(np.mean(np.abs(err) ** 2))
        assert totals[0] < 1e-12  # no pruning: exact transform
        assert totals[1] < totals[2] < totals[3]

    def test_mask_helper_exact_count(self):
        mags = np.linspace(0.01, 1.0, 100)
        keep = static_twiddle_mask(mags, 0.37)
        assert np.count_nonzero(~keep) == 37
        assert not keep[:37].any()

    def test_threshold_helper_monotone(self):
        mags = np.linspace(0.0, 1.5, 512)
        t20 = twiddle_threshold_for_fraction(mags, 0.2)
        t60 = twiddle_threshold_for_fraction(mags, 0.6)
        assert 0.0 < t20 < t60 < 1.5


class TestDynamicPruning:
    def test_dynamic_self_calibrating_fraction(self, rng):
        n = 256
        x = _random_complex(rng, n)
        spec = PruningSpec(band_drop=True, twiddle_fraction=0.4, dynamic=True)
        plan = WaveletFFT(n, pruning=spec)
        _, counts = plan.transform_with_counts(x)
        assert counts.compares > 0

    def test_dynamic_distortion_not_worse_than_static(self, rng):
        """Dynamic pruning drops the smallest |factor|*|data| products, so
        for the same pruned fraction its MSE should not exceed static's
        (the paper's Fig. 9 observation), on average over signals."""
        n = 256
        t = np.arange(n) / n
        static_err, dynamic_err = 0.0, 0.0
        for trial in range(8):
            local = np.random.default_rng(trial)
            x = np.sin(2 * np.pi * 4 * t) + 0.2 * local.standard_normal(n)
            exact = np.fft.fft(x)
            s_plan = WaveletFFT(
                n, pruning=PruningSpec(band_drop=True, twiddle_fraction=0.6)
            )
            d_plan = WaveletFFT(
                n,
                pruning=PruningSpec(
                    band_drop=True, twiddle_fraction=0.6, dynamic=True
                ),
            )
            static_err += float(np.mean(np.abs(s_plan.transform(x) - exact) ** 2))
            dynamic_err += float(np.mean(np.abs(d_plan.transform(x) - exact) ** 2))
        assert dynamic_err <= static_err * 1.05

    def test_fixed_threshold_respected(self, rng):
        n = 128
        x = _random_complex(rng, n)
        spec = PruningSpec(
            band_drop=True, twiddle_fraction=0.4, dynamic=True
        ).with_dynamic_threshold(1e9)
        plan = WaveletFFT(n, pruning=spec)
        # Threshold so high that every candidate term is pruned: the
        # dynamic result degenerates to the static set's result.
        static = WaveletFFT(
            n, pruning=PruningSpec(band_drop=True, twiddle_fraction=0.4)
        )
        np.testing.assert_allclose(
            plan.transform(x), static.transform(x), atol=1e-9
        )

    def test_zero_threshold_keeps_everything(self, rng):
        n = 128
        x = _random_complex(rng, n)
        spec = PruningSpec(
            band_drop=True, twiddle_fraction=0.4, dynamic=True
        ).with_dynamic_threshold(0.0)
        plan = WaveletFFT(n, pruning=spec)
        band_only = WaveletFFT(n, pruning=PruningSpec.band_only())
        np.testing.assert_allclose(
            plan.transform(x), band_only.transform(x), atol=1e-9
        )

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            PruningSpec(dynamic=False, dynamic_threshold=1.0)
        with pytest.raises(ConfigurationError):
            PruningSpec(twiddle_fraction=1.5)
        with pytest.raises(ConfigurationError):
            PruningSpec.paper_mode(4)
        with pytest.raises(ConfigurationError):
            PruningSpec(band_drop=True).with_dynamic_threshold(0.5)

    def test_describe_labels(self):
        assert PruningSpec.none().describe() == "exact"
        assert "band-drop" in PruningSpec.band_only().describe()
        label = PruningSpec.paper_mode(3, dynamic=True).describe()
        assert "60% twiddle" in label and "dynamic" in label


class TestProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        log_n=st.integers(min_value=2, max_value=8),
        basis=st.sampled_from(["haar", "db2", "db4"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_exactness_property(self, seed, log_n, basis):
        rng = np.random.default_rng(seed)
        n = 1 << log_n
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        plan = WaveletFFT(n, basis=basis)
        np.testing.assert_allclose(plan.transform(x), np.fft.fft(x), atol=1e-7)

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        fraction=st.floats(min_value=0.0, max_value=0.9),
    )
    @settings(max_examples=25, deadline=None)
    def test_pruned_energy_never_exceeds_exact(self, seed, fraction):
        """Pruning only removes spectral contributions; with band drop the
        output energy of a lowpass-dominated signal cannot grow."""
        rng = np.random.default_rng(seed)
        n = 64
        x = np.cumsum(rng.standard_normal(n))  # brownian: lowpass heavy
        x -= x.mean()
        exact_plan = WaveletFFT(n)
        pruned_plan = WaveletFFT(
            n, pruning=PruningSpec(band_drop=True, twiddle_fraction=fraction)
        )
        exact_energy = float(np.sum(np.abs(exact_plan.transform(x)) ** 2))
        pruned_energy = float(np.sum(np.abs(pruned_plan.transform(x)) ** 2))
        assert pruned_energy <= exact_energy * (1.0 + 1e-9)
