"""Tests for the network service layer (:mod:`repro.service`).

The contract under test: anything streamed through the framed gateway
or uploaded through REST produces results **bit-identical** to
in-process :meth:`Engine.analyze` — across tenants, PSA systems,
interleaved feeds, disconnect/reconnect, and graceful drain — and
protocol/auth failures are isolated to the offending connection.
"""

from __future__ import annotations

import json
import socket
import time

import numpy as np
import pytest

from repro.engine import Engine, EngineConfig, SLOSpec
from repro.errors import ConfigurationError, ServiceError
from repro.hrv.rr import RRSeries
from repro.service import (
    GatewayThread,
    ServiceClient,
    ServiceConfig,
    TenantSpec,
    rest_analyze,
    rest_stats,
    rest_windows,
)
from repro.service.wire import (
    counts_from_dict,
    decode_frame,
    encode_frame,
    result_to_dict,
)


def _synthetic_rr(duration: float = 400.0, seed: int = 7) -> RRSeries:
    rng = np.random.default_rng(seed)
    times = []
    t = 0.0
    while t < duration:
        rr = 0.8 + 0.05 * np.sin(2 * np.pi * 0.25 * t) + rng.normal(0, 0.01)
        t += rr
        times.append(t)
    times = np.asarray(times)
    intervals = np.diff(times, prepend=0.0)
    return RRSeries(times=times[1:], intervals=intervals[1:])


def _wire_view(result_frame: dict) -> dict:
    """A result frame minus the envelope keys, for == against a dict."""
    return {
        key: value
        for key, value in result_frame.items()
        if key not in ("op", "subject")
    }


def _feed_all(client: ServiceClient, rr: RRSeries, chunk: int = 50) -> None:
    for lo in range(0, rr.times.size, chunk):
        client.feed(rr.times[lo : lo + chunk], rr.intervals[lo : lo + chunk])


@pytest.fixture(scope="module")
def rr() -> RRSeries:
    return _synthetic_rr()


@pytest.fixture(scope="module")
def expected(rr) -> dict:
    """Wire-form reference result of the default engine config."""
    with Engine(EngineConfig()) as engine:
        return result_to_dict(engine.analyze(rr, count_ops=True))


def _default_gateway() -> GatewayThread:
    return GatewayThread(ServiceConfig(listen="127.0.0.1:0", count_ops=True))


class TestServiceConfig:
    def test_json_round_trip(self):
        config = ServiceConfig(
            listen="0.0.0.0:9000",
            tenants=(
                TenantSpec("a", "token-a", EngineConfig.for_mode("exact")),
                TenantSpec("b", "token-b", EngineConfig.for_mode("set3")),
            ),
            round_events=32,
            max_frame_bytes=1 << 20,
            hello_timeout=5.0,
            count_ops=True,
        )
        assert ServiceConfig.from_json(config.to_json()) == config

    def test_from_file(self, tmp_path):
        config = ServiceConfig(listen="127.0.0.1:8123")
        path = tmp_path / "service.json"
        path.write_text(config.to_json(), encoding="utf-8")
        assert ServiceConfig.from_file(path) == config

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown service"):
            ServiceConfig.from_dict({"listen": "127.0.0.1:1", "nope": 1})
        with pytest.raises(ConfigurationError, match="unknown tenant"):
            TenantSpec.from_dict({"name": "a", "token": "t", "extra": 1})

    def test_duplicate_names_and_tokens_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate tenant"):
            ServiceConfig(tenants=(
                TenantSpec("a", "t1"), TenantSpec("a", "t2"),
            ))
        with pytest.raises(ConfigurationError, match="reuses"):
            ServiceConfig(tenants=(
                TenantSpec("a", "t1"), TenantSpec("b", "t1"),
            ))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(listen="no-port")
        with pytest.raises(ConfigurationError):
            ServiceConfig(tenants=())
        with pytest.raises(ConfigurationError):
            ServiceConfig(round_events=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(max_frame_bytes=16)
        with pytest.raises(ConfigurationError):
            ServiceConfig(hello_timeout=0.0)
        with pytest.raises(ConfigurationError):
            TenantSpec("", "t")
        with pytest.raises(ConfigurationError):
            TenantSpec("a", "")

    def test_tenant_lookup(self):
        config = ServiceConfig()
        assert config.tenant("default").token == "dev-token"
        with pytest.raises(ConfigurationError, match="unknown tenant"):
            config.tenant("nope")


class TestFramedStream:
    def test_stream_bit_identical(self, rr, expected):
        with _default_gateway() as gateway:
            with ServiceClient(gateway.address) as client:
                client.open("s1")
                _feed_all(client, rr)
                result = client.finalize()
            assert _wire_view(result) == expected
            # Windows were pushed live, one frame per spectrogram row.
            # Full-length windows carry the common frequency grid and
            # match their spectrogram row exactly; the tail window is
            # emitted on its own (shorter) grid and only its regridded
            # form lands in the spectrogram.
            assert len(client.windows) == expected["n_windows"]
            grid_len = len(expected["frequencies"])
            for frame in client.windows:
                if len(frame["power"]) == grid_len:
                    assert frame["power"] == (
                        expected["spectrogram"][frame["index"]]
                    )
            full = [
                f for f in client.windows if len(f["power"]) == grid_len
            ]
            assert len(full) >= expected["n_windows"] - 1
            assert counts_from_dict(result["counts"]) is not None

    def test_disconnect_reconnect_bit_identical(self, rr, expected):
        with _default_gateway() as gateway:
            first = ServiceClient(gateway.address)
            first.open("s1")
            half = rr.times.size // 2
            _feed_all(
                first,
                RRSeries(times=rr.times[:half], intervals=rr.intervals[:half]),
            )
            first.sync()
            first.close(notify=False)  # abrupt: no close frame
            # The server notices the EOF asynchronously; the re-attach
            # below retries while the stale endpoint unbinds.
            deadline = time.monotonic() + 10.0
            while True:
                second = ServiceClient(gateway.address)
                try:
                    second.open("s1")
                    break
                except ServiceError:
                    second.close()
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.05)
            with second:
                _feed_all(
                    second,
                    RRSeries(
                        times=rr.times[half:], intervals=rr.intervals[half:]
                    ),
                )
                result = second.finalize()
            assert _wire_view(result) == expected

    def test_second_live_consumer_rejected(self, rr):
        with _default_gateway() as gateway:
            with ServiceClient(gateway.address) as client:
                client.open("s1")
                intruder = ServiceClient(gateway.address)
                with pytest.raises(ServiceError, match="live async"):
                    intruder.open("s1")
                intruder.close(notify=False)
                # The original connection is unaffected.
                _feed_all(client, rr)
                assert client.finalize()["n_windows"] > 0

    def test_bad_feed_is_non_fatal(self, rr, expected):
        with _default_gateway() as gateway:
            with ServiceClient(gateway.address) as client:
                client.open("s1")
                client._send({"op": "feed", "t": "junk", "rr": None})
                client._send({"op": "nonsense"})
                _feed_all(client, rr)
                result = client.finalize()
            assert _wire_view(result) == expected
            assert len(client.errors) == 2
            assert all(not e.get("fatal") for e in client.errors)


class TestRejectionIsolation:
    """Bad connections die alone; their neighbours stream on."""

    def _raw_exchange(self, address: str, payload: bytes) -> dict:
        host, port = address.rsplit(":", 1)
        with socket.create_connection((host, int(port)), timeout=30) as sock:
            sock.settimeout(30)
            sock.sendall(payload)
            data = b""
            while b"\n" not in data:
                chunk = sock.recv(1 << 16)
                if not chunk:
                    break
                data += chunk
        return decode_frame(data.splitlines()[0])

    def test_auth_and_protocol_rejections(self, rr, expected):
        config = ServiceConfig(
            listen="127.0.0.1:0", count_ops=True, max_frame_bytes=4096
        )
        with GatewayThread(config) as gateway:
            healthy = ServiceClient(gateway.address)
            healthy.open("s1")
            half = rr.times.size // 2
            _feed_all(
                healthy,
                RRSeries(times=rr.times[:half], intervals=rr.intervals[:half]),
            )

            # Wrong token.
            bad = ServiceClient(gateway.address, token="wrong")
            with pytest.raises(ServiceError, match="authentication"):
                bad.open("sX")
            bad.close(notify=False)
            # Unknown tenant.
            bad = ServiceClient(gateway.address, tenant="ghost")
            with pytest.raises(ServiceError, match="authentication"):
                bad.open("sX")
            bad.close(notify=False)
            # Malformed JSON frame.
            frame = self._raw_exchange(gateway.address, b'{"op": oops\n')
            assert frame["op"] == "error" and frame["fatal"]
            # Not a hello.
            frame = self._raw_exchange(
                gateway.address, encode_frame({"op": "feed", "t": [], "rr": []})
            )
            assert frame["op"] == "error" and frame["fatal"]
            # Oversized frame (past max_frame_bytes=4096).
            huge = b'{"op": "hello", "pad": "' + b"x" * 8192 + b'"}\n'
            frame = self._raw_exchange(gateway.address, huge)
            assert frame["op"] == "error" and frame["fatal"]
            assert "max_frame_bytes" in frame["error"]

            # The healthy neighbour never noticed.
            _feed_all(
                healthy,
                RRSeries(times=rr.times[half:], intervals=rr.intervals[half:]),
            )
            result = healthy.finalize()
            healthy.close()
            assert _wire_view(result) == expected


class TestGracefulDrain:
    def test_drain_mid_stream_bit_identical(self, rr, expected):
        gateway = _default_gateway()
        gateway.__enter__()
        try:
            client = ServiceClient(gateway.address)
            client.open("s1")
            _feed_all(client, rr)
            client.sync()  # all feeds ingested before the drain starts
            gateway.shutdown()
            result = client.wait_result()
            shutdown = client.wait_shutdown()
            client.close()
            assert _wire_view(result) == expected
            assert shutdown["op"] == "shutdown"
            # Every window reached the client before the result frame.
            assert len(client.windows) == expected["n_windows"]
        finally:
            gateway.__exit__(None, None, None)

    def test_short_subject_does_not_poison_drain(self, rr, expected):
        gateway = _default_gateway()
        gateway.__enter__()
        try:
            good = ServiceClient(gateway.address)
            good.open("good")
            _feed_all(good, rr)
            good.sync()
            short = ServiceClient(gateway.address)
            short.open("short")
            short.feed(rr.times[:5], rr.intervals[:5])
            short.sync()
            gateway.shutdown()
            result = good.wait_result()
            assert _wire_view(result) == expected
            # The too-short subject gets the shutdown frame with the
            # finalize failure attached instead of a result.
            notice = short.wait_shutdown()
            assert short.result is None
            assert "at least" in notice.get("error", "")
            good.close()
            short.close()
            stats = gateway.server.stats()
            assert "short" in stats["tenants"]["default"]["drain_errors"]
        finally:
            gateway.__exit__(None, None, None)


class TestRest:
    def test_analyze_bit_identical(self, rr, expected):
        with _default_gateway() as gateway:
            result = rest_analyze(
                gateway.address, "dev-token", rr.times, rr.intervals,
                count_ops=True,
            )
            assert result == expected

    def test_auth_and_routing_errors(self, rr):
        with _default_gateway() as gateway:
            with pytest.raises(ServiceError, match="401"):
                rest_stats(gateway.address, "wrong-token")
            with pytest.raises(ServiceError, match="404"):
                rest_windows(gateway.address, "dev-token", "ghost")
            with pytest.raises(ServiceError, match="404"):
                from repro.service.client import _rest_request

                _rest_request(gateway.address, "GET", "/nope", "dev-token")

    def test_windows_and_stats(self, rr, expected):
        with _default_gateway() as gateway:
            with ServiceClient(gateway.address) as client:
                client.open("s1")
                _feed_all(client, rr)
                client.sync()
                live = rest_windows(gateway.address, "dev-token", "s1")
                assert not live["finalized"]
                assert len(live["windows"]) > 0
                for window in live["windows"]:
                    assert window["power"] == (
                        expected["spectrogram"][window["index"]]
                    )
                client.finalize()
            done = rest_windows(gateway.address, "dev-token", "s1")
            assert done["finalized"]
            assert len(done["windows"]) == expected["n_windows"]
            grid_len = len(expected["frequencies"])
            for window in done["windows"]:
                # Raw emissions: full-length windows sit on the common
                # grid (== their spectrogram row); the tail keeps its
                # own shorter grid.
                if len(window["power"]) == grid_len:
                    assert window["power"] == (
                        expected["spectrogram"][window["index"]]
                    )
            stats = rest_stats(gateway.address, "dev-token")
            assert stats["controller"] is None  # no SLO on this tenant
            assert stats["service"]["wire"]["frames_in"] > 0
            assert "resolved" in stats["engine"]
            assert "plan_cache" in stats["engine"]


class TestTenantMatrix:
    """The acceptance cohort: 2 tenants, both systems, SLO armed."""

    def test_interleaved_tenants_bit_identical(self):
        recordings = {
            "s-a": _synthetic_rr(seed=11),
            "s-b": _synthetic_rr(seed=12),
        }
        conventional = EngineConfig.for_mode("exact")
        # Quality-scalable system with the SLO controller armed; the
        # target is generous, so the ladder never actually sheds and
        # finalize stays comparable to the plain whole-recording run.
        scalable = EngineConfig.for_mode("set3").replace(
            slo=SLOSpec(target_p95_ms=60_000.0)
        )
        config = ServiceConfig(
            listen="127.0.0.1:0",
            tenants=(
                TenantSpec("conv", "token-conv", conventional),
                TenantSpec("qs", "token-qs", scalable),
            ),
            count_ops=True,
        )
        reference: dict = {}
        for name, engine_config in (("conv", conventional), ("qs", scalable)):
            with Engine(engine_config) as engine:
                for subject, series in recordings.items():
                    reference[(name, subject)] = result_to_dict(
                        engine.analyze(series, count_ops=True)
                    )
        with GatewayThread(config) as gateway:
            clients = {
                (tenant, subject): ServiceClient(
                    gateway.address, tenant=tenant, token=f"token-{tenant}"
                )
                for tenant in ("conv", "qs")
                for subject in recordings
            }
            for (tenant, subject), client in clients.items():
                client.open(subject)
            # Interleave feeds across tenants and subjects, chunk by
            # chunk — four concurrent streams multiplexing two hubs.
            chunk = 50
            longest = max(s.times.size for s in recordings.values())
            dropped_once = False
            for lo in range(0, longest, chunk):
                for key, client in list(clients.items()):
                    series = recordings[key[1]]
                    if lo >= series.times.size:
                        continue
                    client.feed(
                        series.times[lo : lo + chunk],
                        series.intervals[lo : lo + chunk],
                    )
                    if not dropped_once and key == ("qs", "s-a") and lo >= (
                        series.times.size // 2
                    ):
                        # One mid-stream disconnect/reconnect on the
                        # quality-scalable tenant.
                        client.sync()
                        client.close(notify=False)
                        dropped_once = True
                        deadline = time.monotonic() + 10.0
                        while True:
                            fresh = ServiceClient(
                                gateway.address, tenant="qs",
                                token="token-qs",
                            )
                            try:
                                fresh.open("s-a")
                                break
                            except ServiceError:
                                fresh.close()
                                if time.monotonic() > deadline:
                                    raise
                                time.sleep(0.05)
                        clients[key] = fresh
            assert dropped_once
            results = {}
            for key, client in clients.items():
                results[key] = client.finalize()
                client.close()
            for key, result in results.items():
                assert _wire_view(result) == reference[key], key
                # OpCounts travelled and match bit-for-bit too.
                assert result["counts"] == reference[key]["counts"]
            # The SLO controller was armed on the qs tenant (and only
            # there) and never had reason to shed.
            qs_stats = rest_stats(gateway.address, "token-qs")
            assert qs_stats["controller"] is not None
            assert qs_stats["controller"]["steps_down"] == 0
            conv_stats = rest_stats(gateway.address, "token-conv")
            assert conv_stats["controller"] is None
