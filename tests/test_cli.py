"""Tests for the command-line interface."""

from __future__ import annotations

import argparse

import pytest

from repro.cli import build_parser, main, parse_mode
from repro.ffts import PruningSpec


class TestParseMode:
    def test_known_modes(self):
        assert parse_mode("exact").is_exact
        assert parse_mode("band") == PruningSpec.band_only()
        assert parse_mode("set2") == PruningSpec.paper_mode(2)
        assert parse_mode("set3", dynamic=True).dynamic

    def test_unknown_mode(self):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_mode("set9")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_subcommands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["demo"]).command == "demo"
        args = parser.parse_args(["screen", "--mode", "set1", "--patients", "2"])
        assert args.mode == "set1" and args.patients == 2
        assert parser.parse_args(["energy", "--no-vfs"]).no_vfs
        assert parser.parse_args(["complexity", "--n", "256"]).n == 256


class TestCommands:
    def test_complexity_command(self, capsys):
        assert main(["complexity", "--n", "256"]) == 0
        out = capsys.readouterr().out
        assert "split-radix" in out and "haar" in out

    def test_energy_command(self, capsys):
        assert main(["energy", "--mode", "set3"]) == 0
        out = capsys.readouterr().out
        assert "energy savings" in out
        assert "V /" in out

    def test_energy_whole_window(self, capsys):
        assert main(["energy", "--mode", "band", "--whole-window"]) == 0
        assert "whole window" in capsys.readouterr().out

    def test_demo_command(self, capsys):
        assert main(["demo", "--duration", "300"]) == 0
        out = capsys.readouterr().out
        assert "conventional" in out and "LF/HF" in out

    def test_screen_command(self, capsys):
        code = main(
            ["screen", "--mode", "set3", "--patients", "3",
             "--duration", "240"]
        )
        out = capsys.readouterr().out
        assert "screening under mode" in out
        assert code == 0

    def test_screen_with_config_file(self, capsys, tmp_path):
        from repro.engine import EngineConfig

        path = tmp_path / "engine.json"
        path.write_text(
            EngineConfig.for_mode("set3", provider="numpy").to_json(),
            encoding="utf-8",
        )
        code = main(
            ["screen", "--config", str(path), "--patients", "2",
             "--duration", "240"]
        )
        out = capsys.readouterr().out
        assert "screening under mode" in out
        assert code == 0


class TestEngineCommand:
    def test_engine_inspect_round_trips(self, capsys):
        assert main(["engine", "--mode", "set3"]) == 0
        out = capsys.readouterr().out
        assert "quality-scalable" in out
        assert "JSON round-trip" in out and "ok" in out

    def test_engine_json_output_is_loadable(self, capsys):
        from repro.engine import EngineConfig

        assert main(
            ["engine", "--mode", "set2", "--provider", "numpy", "--json"]
        ) == 0
        out = capsys.readouterr().out
        config = EngineConfig.from_json(out)
        assert config == EngineConfig.for_mode("set2", provider="numpy")

    def test_engine_json_round_trips_through_screen_config(
        self, capsys, tmp_path
    ):
        assert main(["engine", "--mode", "band", "--json"]) == 0
        path = tmp_path / "cfg.json"
        path.write_text(capsys.readouterr().out, encoding="utf-8")
        assert main(["engine", "--config", str(path)]) == 0
        assert "band-drop" in capsys.readouterr().out

    def test_engine_resolve_reports_sources(self, capsys):
        assert main(
            ["engine", "--provider", "numpy", "--jobs", "2", "--resolve"]
        ) == 0
        out = capsys.readouterr().out
        assert "resolved provider" in out
        assert "numpy (config)" in out
        assert "2 (config)" in out

    def test_dynamic_without_mode_rejected_with_config(self, tmp_path):
        from repro.engine import EngineConfig
        from repro.errors import ConfigurationError

        path = tmp_path / "engine.json"
        path.write_text(
            EngineConfig.for_mode("set3").to_json(), encoding="utf-8"
        )
        with pytest.raises(ConfigurationError, match="--dynamic"):
            main(["engine", "--config", str(path), "--dynamic"])

    def test_missing_config_file_is_configuration_error(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="cannot read"):
            main(["engine", "--config", "/nonexistent/engine.json"])

    def test_engine_flags_override_config_file(self, capsys, tmp_path):
        from repro.engine import EngineConfig

        path = tmp_path / "engine.json"
        path.write_text(
            EngineConfig.for_mode("set1").to_json(), encoding="utf-8"
        )
        assert main(
            ["engine", "--config", str(path), "--mode", "set3", "--json"]
        ) == 0
        config = EngineConfig.from_json(capsys.readouterr().out)
        assert config.pruning.twiddle_fraction == 0.6


class TestStreamCommand:
    def test_parser_round_and_speed(self):
        args = build_parser().parse_args(
            ["stream", "--round", "32", "--speed", "2.5", "--chunk", "8"]
        )
        assert args.round_events == 32
        assert args.speed == 2.5
        assert args.chunk == 8

    def test_stream_command_verifies_bit_identity(self, capsys):
        code = main(
            ["stream", "--patients", "2", "--duration", "300",
             "--provider", "numpy", "--round", "24", "--verify"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "streamed" in out and "subjects" in out
        assert "MISMATCH" not in out
        assert out.count(" ok") >= 2

    def test_stream_command_reads_event_file(self, capsys, tmp_path):
        import numpy as np

        path = tmp_path / "ward.csv"
        lines = ["# subject,t,rr"]
        for beat in range(300):
            t = float(beat)
            for subject, phase in (("bed-1", 0.0), ("bed-2", 0.3)):
                rr = 0.8 + 0.05 * np.sin(2 * np.pi * 0.25 * t + phase)
                lines.append(f"{subject},{t + 0.1},{rr:.6f}")
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        code = main(
            ["stream", "--input", str(path), "--provider", "numpy",
             "--verify"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "bed-1" in out and "bed-2" in out
        assert "MISMATCH" not in out

    def test_stream_command_rejects_empty_cohort(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="patients"):
            main(["stream", "--patients", "0"])

    def test_stream_command_rejects_bad_round(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="round"):
            main(["stream", "--round", "0"])

    def test_stream_command_bad_event_file(self, tmp_path):
        from repro.errors import ConfigurationError

        path = tmp_path / "bad.csv"
        path.write_text("bed-1,12.0\n", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="expected"):
            main(["stream", "--input", str(path)])
