"""Tests for the command-line interface."""

from __future__ import annotations

import argparse

import pytest

from repro.cli import build_parser, main, parse_mode
from repro.ffts import PruningSpec


class TestParseMode:
    def test_known_modes(self):
        assert parse_mode("exact").is_exact
        assert parse_mode("band") == PruningSpec.band_only()
        assert parse_mode("set2") == PruningSpec.paper_mode(2)
        assert parse_mode("set3", dynamic=True).dynamic

    def test_unknown_mode(self):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_mode("set9")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_subcommands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["demo"]).command == "demo"
        args = parser.parse_args(["screen", "--mode", "set1", "--patients", "2"])
        assert args.mode == "set1" and args.patients == 2
        assert parser.parse_args(["energy", "--no-vfs"]).no_vfs
        assert parser.parse_args(["complexity", "--n", "256"]).n == 256


class TestCommands:
    def test_complexity_command(self, capsys):
        assert main(["complexity", "--n", "256"]) == 0
        out = capsys.readouterr().out
        assert "split-radix" in out and "haar" in out

    def test_energy_command(self, capsys):
        assert main(["energy", "--mode", "set3"]) == 0
        out = capsys.readouterr().out
        assert "energy savings" in out
        assert "V /" in out

    def test_energy_whole_window(self, capsys):
        assert main(["energy", "--mode", "band", "--whole-window"]) == 0
        assert "whole window" in capsys.readouterr().out

    def test_demo_command(self, capsys):
        assert main(["demo", "--duration", "300"]) == 0
        out = capsys.readouterr().out
        assert "conventional" in out and "LF/HF" in out

    def test_screen_command(self, capsys):
        code = main(
            ["screen", "--mode", "set3", "--patients", "3",
             "--duration", "240"]
        )
        out = capsys.readouterr().out
        assert "screening under mode" in out
        assert code == 0
