"""Tests for the command-line interface."""

from __future__ import annotations

import argparse

import pytest

from repro.cli import build_parser, main, parse_mode
from repro.ffts import PruningSpec


class TestParseMode:
    def test_known_modes(self):
        assert parse_mode("exact").is_exact
        assert parse_mode("band") == PruningSpec.band_only()
        assert parse_mode("set2") == PruningSpec.paper_mode(2)
        assert parse_mode("set3", dynamic=True).dynamic

    def test_unknown_mode(self):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_mode("set9")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_subcommands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["demo"]).command == "demo"
        args = parser.parse_args(["screen", "--mode", "set1", "--patients", "2"])
        assert args.mode == "set1" and args.patients == 2
        assert parser.parse_args(["energy", "--no-vfs"]).no_vfs
        assert parser.parse_args(["complexity", "--n", "256"]).n == 256


class TestCommands:
    def test_complexity_command(self, capsys):
        assert main(["complexity", "--n", "256"]) == 0
        out = capsys.readouterr().out
        assert "split-radix" in out and "haar" in out

    def test_energy_command(self, capsys):
        assert main(["energy", "--mode", "set3"]) == 0
        out = capsys.readouterr().out
        assert "energy savings" in out
        assert "V /" in out

    def test_energy_whole_window(self, capsys):
        assert main(["energy", "--mode", "band", "--whole-window"]) == 0
        assert "whole window" in capsys.readouterr().out

    def test_demo_command(self, capsys):
        assert main(["demo", "--duration", "300"]) == 0
        out = capsys.readouterr().out
        assert "conventional" in out and "LF/HF" in out

    def test_screen_command(self, capsys):
        code = main(
            ["screen", "--mode", "set3", "--patients", "3",
             "--duration", "240"]
        )
        out = capsys.readouterr().out
        assert "screening under mode" in out
        assert code == 0

    def test_screen_with_config_file(self, capsys, tmp_path):
        from repro.engine import EngineConfig

        path = tmp_path / "engine.json"
        path.write_text(
            EngineConfig.for_mode("set3", provider="numpy").to_json(),
            encoding="utf-8",
        )
        code = main(
            ["screen", "--config", str(path), "--patients", "2",
             "--duration", "240"]
        )
        out = capsys.readouterr().out
        assert "screening under mode" in out
        assert code == 0


class TestEngineCommand:
    def test_engine_inspect_round_trips(self, capsys):
        assert main(["engine", "--mode", "set3"]) == 0
        out = capsys.readouterr().out
        assert "quality-scalable" in out
        assert "JSON round-trip" in out and "ok" in out

    def test_engine_json_output_is_loadable(self, capsys):
        from repro.engine import EngineConfig

        assert main(
            ["engine", "--mode", "set2", "--provider", "numpy", "--json"]
        ) == 0
        out = capsys.readouterr().out
        config = EngineConfig.from_json(out)
        assert config == EngineConfig.for_mode("set2", provider="numpy")

    def test_engine_json_round_trips_through_screen_config(
        self, capsys, tmp_path
    ):
        assert main(["engine", "--mode", "band", "--json"]) == 0
        path = tmp_path / "cfg.json"
        path.write_text(capsys.readouterr().out, encoding="utf-8")
        assert main(["engine", "--config", str(path)]) == 0
        assert "band-drop" in capsys.readouterr().out

    def test_engine_resolve_reports_sources(self, capsys):
        assert main(
            ["engine", "--provider", "numpy", "--jobs", "2", "--resolve"]
        ) == 0
        out = capsys.readouterr().out
        assert "resolved provider" in out
        assert "numpy (config)" in out
        assert "2 (config)" in out

    def test_dynamic_without_mode_rejected_with_config(self, tmp_path):
        from repro.engine import EngineConfig
        from repro.errors import ConfigurationError

        path = tmp_path / "engine.json"
        path.write_text(
            EngineConfig.for_mode("set3").to_json(), encoding="utf-8"
        )
        with pytest.raises(ConfigurationError, match="--dynamic"):
            main(["engine", "--config", str(path), "--dynamic"])

    def test_missing_config_file_is_configuration_error(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="cannot read"):
            main(["engine", "--config", "/nonexistent/engine.json"])

    def test_engine_flags_override_config_file(self, capsys, tmp_path):
        from repro.engine import EngineConfig

        path = tmp_path / "engine.json"
        path.write_text(
            EngineConfig.for_mode("set1").to_json(), encoding="utf-8"
        )
        assert main(
            ["engine", "--config", str(path), "--mode", "set3", "--json"]
        ) == 0
        config = EngineConfig.from_json(capsys.readouterr().out)
        assert config.pruning.twiddle_fraction == 0.6
