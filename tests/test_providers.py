"""Tests for the multi-provider FFT execution layer.

Covers the registry (env pin, explicit pin, unknown-provider errors,
scipy-missing fallback, autoselect memoisation), numerical equivalence
of every provider against the explicit split-radix oracle (ragged
windows, both scalings, all wavelet pruning modes — with identical
modelled operation counts), the fused real-input path, the zero-copy
uniform window matrix path, and provider pinning across the fleet
engine (sharded results bit-identical to single-process ones under
every provider).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.system import ConventionalPSA, QualityScalablePSA
from repro.ecg.rr_synthesis import TachogramSpec, generate_tachogram
from repro.errors import ConfigurationError, TransformError
from repro.ffts import plancache
from repro.ffts.backends import SplitRadixFFT
from repro.ffts.providers import registry
from repro.ffts.providers.explicit import ExplicitProvider
from repro.ffts.providers.numpy_fft import NumpyFFTProvider
from repro.ffts.pruning import PruningSpec
from repro.ffts.wavelet_fft import WaveletFFT
from repro.fleet import FleetRunner
from repro.lomb.fast import FastLomb
from repro.lomb.welch import WelchLomb, uniform_window_matrix

AVAILABLE = [
    name
    for name, available in registry.available_providers().items()
    if available
]
FAST_PROVIDERS = [name for name in AVAILABLE if name != "explicit"]


def _ragged_windows(rng, n_windows=6):
    """Synthetic irregular windows with varying beat counts."""
    windows = []
    for i in range(n_windows):
        beats = 90 + 13 * i
        intervals = 0.85 + 0.05 * rng.standard_normal(beats)
        times = np.cumsum(np.abs(intervals) + 0.3)
        windows.append((times, intervals))
    return windows


class TestRegistry:
    def test_builtin_providers_registered(self):
        names = registry.provider_names()
        assert ("explicit", "numpy", "scipy") == names[:3]
        availability = registry.available_providers()
        assert availability["explicit"] is True
        assert availability["numpy"] is True

    def test_unknown_provider_errors(self):
        with pytest.raises(ConfigurationError, match="unknown FFT provider"):
            registry.get_provider("fftw")
        with pytest.raises(ConfigurationError, match="unknown FFT provider"):
            registry.resolve_provider_name("fftw")
        with pytest.raises(ConfigurationError, match="unknown FFT provider"):
            registry.set_default_provider("fftw")

    def test_get_provider_returns_cached_handle(self):
        first = registry.get_provider("numpy")
        assert registry.get_provider("numpy") is first
        assert plancache.plan_cache_stats()["provider_plans"] >= 1

    def test_env_pin(self, monkeypatch):
        monkeypatch.setenv(registry.PROVIDER_ENV_VAR, "explicit")
        assert registry.resolve_provider_name() == "explicit"

    def test_env_unknown_errors(self, monkeypatch):
        monkeypatch.setenv(registry.PROVIDER_ENV_VAR, "fftw")
        with pytest.raises(ConfigurationError, match="unknown FFT provider"):
            registry.resolve_provider_name()

    def test_env_auto_runs_probe(self, monkeypatch):
        monkeypatch.setenv(registry.PROVIDER_ENV_VAR, "auto")
        name = registry.resolve_provider_name(None, 64)
        assert name in AVAILABLE

    def test_explicit_pin_beats_env(self, monkeypatch):
        monkeypatch.setenv(registry.PROVIDER_ENV_VAR, "numpy")
        registry.set_default_provider("explicit")
        assert registry.resolve_provider_name() == "explicit"

    def test_caller_pin_beats_everything(self, monkeypatch):
        monkeypatch.setenv(registry.PROVIDER_ENV_VAR, "numpy")
        registry.set_default_provider("numpy")
        assert registry.resolve_provider_name("explicit") == "explicit"

    def test_scipy_missing_fallback(self, monkeypatch):
        from repro.ffts.providers import scipy_fft

        monkeypatch.setattr(scipy_fft, "scipy_available", lambda: False)
        assert registry.available_providers()["scipy"] is False
        # explicit requests error out ...
        with pytest.raises(ConfigurationError, match="not available"):
            registry.get_provider("scipy")
        with pytest.raises(ConfigurationError, match="cannot pin"):
            registry.set_default_provider("scipy")
        # ... but the resolution chain falls back to numpy silently
        monkeypatch.setenv(registry.PROVIDER_ENV_VAR, "scipy")
        assert registry.resolve_provider_name() == "numpy"

    def test_autoselect_memoised(self):
        first = registry.autoselect(64)
        assert registry.autoselect(64) is first
        assert first.provider in AVAILABLE
        # The explicit oracle is never a probe candidate (it could only
        # win through timing noise, and timing it dominates probe cost).
        assert first.provider != "explicit"
        if first.source == "measured":
            assert set(first.timings) == set(AVAILABLE) - {"explicit"}

    def test_autoselect_rounds_odd_workspace_sizes(self):
        # The explicit provider only transforms powers of two; an odd
        # probe size (the CLI accepts any integer) must not crash it.
        choice = registry.autoselect(500)
        assert choice.workspace_size == 256
        assert choice.provider in AVAILABLE

    def test_pinned_unavailable_provider_fails_at_planning(self, monkeypatch):
        from repro.ffts.providers import scipy_fft

        monkeypatch.setattr(scipy_fft, "scipy_available", lambda: False)
        plancache.invalidate_provider_plan("scipy")
        with pytest.raises(ConfigurationError, match="not available"):
            SplitRadixFFT(64, provider="scipy")
        with pytest.raises(ConfigurationError, match="not available"):
            WaveletFFT(64, sub_backend="scipy")

    def test_register_provider_extension_point(self):
        registry.register_provider(
            "dummy",
            factory=NumpyFFTProvider,
            available=lambda: True,
            description="test double",
        )
        try:
            assert "dummy" in registry.provider_names()
            assert registry.resolve_provider_name("dummy") == "dummy"
            assert isinstance(registry.get_provider("dummy"), NumpyFFTProvider)
        finally:
            del registry._REGISTRY["dummy"]
            registry.clear_provider_state()
            plancache.clear_plan_caches()

    def test_register_provider_normalises_and_replaces(self):
        registry.register_provider(
            " Dummy ", factory=NumpyFFTProvider, available=lambda: True
        )
        try:
            assert "dummy" in registry.provider_names()
            assert isinstance(registry.get_provider("DUMMY"), NumpyFFTProvider)
            # re-registration must evict the cached handle
            registry.register_provider(
                "dummy", factory=ExplicitProvider, available=lambda: True
            )
            assert isinstance(registry.get_provider("dummy"), ExplicitProvider)
        finally:
            del registry._REGISTRY["dummy"]
            registry.clear_provider_state()
            plancache.clear_plan_caches()


class TestProviderNumerics:
    @pytest.mark.parametrize("name", AVAILABLE)
    def test_fft_matches_oracle(self, rng, name):
        provider = registry.get_provider(name)
        oracle = ExplicitProvider()
        x = rng.standard_normal(128) + 1j * rng.standard_normal(128)
        np.testing.assert_allclose(
            provider.fft(x), oracle.fft(x), rtol=1e-10, atol=1e-10
        )
        batch = rng.standard_normal((5, 64)) + 1j * rng.standard_normal((5, 64))
        np.testing.assert_allclose(
            provider.fft_batch(batch),
            oracle.fft_batch(batch),
            rtol=1e-10,
            atol=1e-10,
        )

    @pytest.mark.parametrize("name", AVAILABLE)
    def test_rfft_is_half_spectrum(self, rng, name):
        provider = registry.get_provider(name)
        x = rng.standard_normal(64)
        np.testing.assert_allclose(
            provider.rfft(x), provider.fft(x)[:33], rtol=1e-10, atol=1e-10
        )
        batch = rng.standard_normal((4, 64))
        np.testing.assert_allclose(
            provider.rfft_batch(batch),
            provider.fft_batch(batch.astype(np.complex128))[:, :33],
            rtol=1e-10,
            atol=1e-10,
        )

    def test_warm_is_idempotent(self):
        for name in AVAILABLE:
            provider = registry.get_provider(name)
            provider.warm(64)
            provider.warm(64)


class TestBackendDispatch:
    def test_use_numpy_false_pins_explicit(self):
        backend = SplitRadixFFT(64, use_numpy=False)
        assert backend.provider == "explicit"

    def test_provider_pin_overrides_process_default(self, rng):
        x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        pinned = SplitRadixFFT(64, provider="explicit")
        registry.set_default_provider("numpy")
        oracle = ExplicitProvider().fft(x)
        np.testing.assert_array_equal(pinned.transform(x), oracle)

    @pytest.mark.parametrize("name", AVAILABLE)
    def test_dispatch_follows_process_pin(self, rng, name):
        backend = SplitRadixFFT(64)
        x = rng.standard_normal((3, 64)) + 1j * rng.standard_normal((3, 64))
        registry.set_default_provider(name)
        expected = registry.get_provider(name).fft_batch(x)
        np.testing.assert_array_equal(backend.transform_batch(x), expected)

    def test_rfft_validates_shape(self, rng):
        backend = SplitRadixFFT(64)
        with pytest.raises(TransformError):
            backend.rfft(rng.standard_normal(32))
        with pytest.raises(TransformError):
            backend.rfft_batch(rng.standard_normal((3, 32)))

    def test_wavelet_sub_backend_provider_pin(self, rng):
        x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        reference = WaveletFFT(64, sub_backend="split-radix").transform(x)
        for sub in ("auto", "numpy", "explicit", *FAST_PROVIDERS):
            out = WaveletFFT(64, sub_backend=sub).transform(x)
            np.testing.assert_allclose(out, reference, rtol=1e-9, atol=1e-9)

    def test_wavelet_sub_backend_name_really_pins(self, rng):
        # A provider-name sub_backend must not follow the process pin:
        # pinning the process to explicit while the plan pins numpy has
        # to keep running numpy (bit-identical to numpy sub-FFTs).
        x = rng.standard_normal((3, 64)) + 1j * rng.standard_normal((3, 64))
        pinned = WaveletFFT(64, sub_backend="numpy")
        registry.set_default_provider("numpy")
        expected = pinned.transform_batch(x)
        registry.set_default_provider("explicit")
        np.testing.assert_array_equal(pinned.transform_batch(x), expected)

    def test_wavelet_auto_follows_process_pin(self, rng):
        x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        auto = WaveletFFT(64)  # sub_backend="auto"
        assert auto.sub_backend == "auto"
        registry.set_default_provider("explicit")
        oracle = WaveletFFT(64, sub_backend="split-radix").transform(x)
        np.testing.assert_array_equal(auto.transform(x), oracle)

    def test_wavelet_unknown_sub_backend(self):
        with pytest.raises(ConfigurationError, match="sub_backend"):
            WaveletFFT(64, sub_backend="fftw")


PRUNING_MODES = [
    PruningSpec.none(),
    PruningSpec.band_only(),
    PruningSpec.paper_mode(1),
    PruningSpec.paper_mode(2),
    PruningSpec.paper_mode(3),
    PruningSpec.paper_mode(3, dynamic=True),
]


class TestPipelineEquivalence:
    """Every provider must reproduce the explicit oracle end-to-end."""

    @pytest.mark.parametrize("scaling", ["standard", "denormalized"])
    @pytest.mark.parametrize("name", FAST_PROVIDERS)
    def test_ragged_windows_both_scalings(self, rng, name, scaling):
        windows = _ragged_windows(rng)
        analyzer = FastLomb(scaling=scaling)
        registry.set_default_provider("explicit")
        oracle = analyzer.periodogram_batch(windows, count_ops=True)
        registry.set_default_provider(name)
        spectra = analyzer.periodogram_batch(windows, count_ops=True)
        for got, want in zip(spectra, oracle):
            np.testing.assert_allclose(
                got.power, want.power, rtol=1e-7, atol=1e-12
            )
            np.testing.assert_array_equal(got.frequencies, want.frequencies)
            assert got.counts == want.counts

    @pytest.mark.parametrize("spec", PRUNING_MODES, ids=lambda s: s.describe())
    @pytest.mark.parametrize("name", FAST_PROVIDERS)
    def test_wavelet_pruning_modes(self, rng, name, spec):
        windows = _ragged_windows(rng, n_windows=4)
        analyzer = FastLomb(
            backend=WaveletFFT(512, pruning=spec), scaling="denormalized"
        )
        registry.set_default_provider("explicit")
        oracle = analyzer.periodogram_batch(windows, count_ops=True)
        registry.set_default_provider(name)
        spectra = analyzer.periodogram_batch(windows, count_ops=True)
        for got, want in zip(spectra, oracle):
            np.testing.assert_allclose(
                got.power, want.power, rtol=1e-6, atol=1e-12
            )
            assert got.counts == want.counts


class TestFusedRealPath:
    def test_auto_enabled_for_plain_fft_backend(self):
        assert FastLomb().fused_real is True

    def test_auto_disabled_for_band_drop_backend(self):
        backend = WaveletFFT(512, pruning=PruningSpec.band_only())
        assert FastLomb(backend=backend).fused_real is False

    def test_forcing_on_band_drop_backend_errors(self):
        backend = WaveletFFT(512, pruning=PruningSpec.band_only())
        with pytest.raises(ConfigurationError, match="fused_real"):
            FastLomb(backend=backend, fused_real=True)

    def test_forcing_without_rfft_backend_errors(self):
        backend = WaveletFFT(512)
        with pytest.raises(ConfigurationError, match="rfft"):
            FastLomb(backend=backend, fused_real=True)

    def test_fused_matches_packed_path(self, rng):
        windows = _ragged_windows(rng)
        fused = FastLomb(scaling="denormalized")
        packed = FastLomb(scaling="denormalized", fused_real=False)
        assert fused.fused_real and not packed.fused_real
        for fast_lomb in (fused, packed):
            assert fast_lomb.backend is packed.backend  # shared cached plan
        a = fused.periodogram_batch(windows, count_ops=True)
        b = packed.periodogram_batch(windows, count_ops=True)
        for got, want in zip(a, b):
            np.testing.assert_allclose(
                got.power, want.power, rtol=1e-9, atol=1e-12
            )
            assert got.counts == want.counts

    def test_sequential_fused_matches_batched(self, rng):
        windows = _ragged_windows(rng, n_windows=3)
        analyzer = FastLomb(scaling="standard")
        batched = analyzer.periodogram_batch(windows, count_ops=True)
        for (t, x), from_batch in zip(windows, batched):
            single = analyzer.periodogram(t, x, count_ops=True)
            np.testing.assert_allclose(
                single.power, from_batch.power, rtol=1e-12, atol=1e-12
            )
            assert single.counts == from_batch.counts


class TestUniformMatrixPath:
    def _uniform_recording(self):
        t = np.arange(0.0, 1500.0, 0.5)
        x = (
            0.9
            + 0.05 * np.sin(2 * np.pi * 0.1 * t)
            + 0.02 * np.sin(2 * np.pi * 0.25 * t)
        )
        return t, x

    def test_uniform_layout_detected_zero_copy(self):
        t, x = self._uniform_recording()
        plan = WelchLomb().plan_windows(t, x)
        matrix = plan.window_matrix()
        assert matrix is not None
        t_mat, x_mat = matrix
        assert t_mat.shape[0] == plan.n_windows
        assert np.shares_memory(t_mat, plan.times)
        assert np.shares_memory(x_mat, plan.values)
        for (start, stop), row in zip(plan.spans, t_mat):
            np.testing.assert_array_equal(row, plan.times[start:stop])

    def test_irregular_layout_rejected(self, rng):
        intervals = 0.85 + 0.05 * rng.standard_normal(2000)
        times = np.cumsum(np.abs(intervals) + 0.2)
        plan = WelchLomb().plan_windows(times, intervals)
        assert plan.window_matrix() is None

    def test_non_uniform_stride_rejected(self):
        t = np.arange(100.0)
        assert uniform_window_matrix(t, t, [(0, 10), (4, 14), (10, 20)]) is None
        assert uniform_window_matrix(t, t, [(0, 10), (4, 12)]) is None
        assert uniform_window_matrix(t, t, []) is None

    def test_single_window_matrix(self):
        t = np.arange(50.0)
        matrix = uniform_window_matrix(t, t, [(3, 20)])
        assert matrix is not None
        np.testing.assert_array_equal(matrix[0][0], t[3:20])

    def test_matrix_path_matches_pairs_path(self):
        t, x = self._uniform_recording()
        welch = WelchLomb(FastLomb(scaling="denormalized"))
        plan = welch.plan_windows(t, x)
        t_mat, x_mat = plan.window_matrix()
        pairs = welch.analyzer.periodogram_batch(
            plan.window_arrays(), count_ops=True, validate=False
        )
        mats = welch.analyzer.periodogram_batch_matrix(
            t_mat, x_mat, count_ops=True
        )
        assert len(pairs) == len(mats)
        for got, want in zip(mats, pairs):
            np.testing.assert_allclose(
                got.power, want.power, rtol=1e-13, atol=0
            )
            np.testing.assert_array_equal(got.frequencies, want.frequencies)
            assert got.n_samples == want.n_samples
            assert got.counts == want.counts

    def test_welch_analyze_uses_matrix_path_consistently(self):
        t, x = self._uniform_recording()
        welch = WelchLomb(FastLomb(scaling="denormalized"))
        batched = welch.analyze(t, x, batched=True)
        sequential = welch.analyze(t, x, batched=False)
        np.testing.assert_allclose(
            batched.spectrogram,
            sequential.spectrogram,
            rtol=1e-9,
            atol=1e-12,
        )

    def test_matrix_path_falls_back_for_sequential_only_backend(self):
        # A third-party kernel implementing only the sequential protocol
        # must keep working on uniform recordings (the documented
        # transform_batch fallback applies to the matrix path too).
        class SequentialOnly:
            def __init__(self, inner):
                self._inner = inner
                self.n = inner.n

            def transform(self, x):
                return self._inner.transform(x)

            def transform_with_counts(self, x):
                return self._inner.transform_with_counts(x)

            def static_counts(self):
                return self._inner.static_counts()

        t, x = self._uniform_recording()
        analyzer = FastLomb(
            backend=SequentialOnly(SplitRadixFFT(512)),
            scaling="denormalized",
        )
        assert analyzer.fused_real is False
        welch = WelchLomb(analyzer)
        result = welch.analyze(t, x, count_ops=True)
        reference = WelchLomb(FastLomb(scaling="denormalized")).analyze(
            t, x, count_ops=True
        )
        np.testing.assert_allclose(
            result.spectrogram, reference.spectrogram, rtol=1e-9, atol=1e-12
        )
        assert result.counts == reference.counts


class TestFleetProviderPinning:
    def test_report_records_resolved_provider(self):
        rr = generate_tachogram(TachogramSpec(seed=3), 900.0)
        registry.set_default_provider("numpy")
        report = FleetRunner(n_jobs=1).run_report([rr])
        assert report.provider == "numpy"

    def test_in_process_pin_restored(self):
        rr = generate_tachogram(TachogramSpec(seed=3), 900.0)
        runner = FleetRunner(n_jobs=1, provider="explicit")
        report = runner.run_report([rr])
        assert report.provider == "explicit"
        assert registry.get_default_provider_name() is None

    @pytest.mark.parametrize("name", AVAILABLE)
    def test_in_process_matches_direct_analyze(self, name):
        rr = generate_tachogram(TachogramSpec(seed=5), 900.0)
        welch = WelchLomb()
        fleet = FleetRunner(welch=welch, n_jobs=1, provider=name).run(
            [rr], count_ops=True
        )[0]
        registry.set_default_provider(name)
        single = welch.analyze(rr.times, rr.intervals, count_ops=True)
        np.testing.assert_array_equal(fleet.spectrogram, single.spectrogram)
        assert fleet.counts == single.counts

    @pytest.mark.slow
    @pytest.mark.parametrize("name", FAST_PROVIDERS)
    def test_sharded_bit_identical_per_provider(self, name):
        recordings = [
            generate_tachogram(TachogramSpec(seed=seed), 900.0)
            for seed in (11, 12)
        ]
        welch = WelchLomb()
        single = FleetRunner(welch=welch, n_jobs=1, provider=name).run(
            recordings, count_ops=True
        )
        with FleetRunner(
            welch=welch,
            n_jobs=2,
            provider=name,
            min_windows_per_shard=2,
        ) as runner:
            sharded = runner.run(recordings, count_ops=True)
        for a, b in zip(sharded, single):
            np.testing.assert_array_equal(a.spectrogram, b.spectrogram)
            np.testing.assert_array_equal(a.averaged, b.averaged)
            assert a.counts == b.counts

    @pytest.mark.slow
    def test_uniform_recording_sharded_bit_identical(self):
        # Uniformly-sampled recording: both the single-process path and
        # every shard take the zero-copy matrix path, and must agree
        # bit-for-bit.
        t = np.arange(0.0, 3600.0, 0.5)
        x = 0.9 + 0.05 * np.sin(2 * np.pi * 0.1 * t)
        welch = WelchLomb()
        single = FleetRunner(welch=welch, n_jobs=1).run([(t, x)])[0]
        direct = welch.analyze(t, x)
        with FleetRunner(
            welch=welch, n_jobs=2, min_windows_per_shard=4
        ) as runner:
            sharded = runner.run([(t, x)])[0]
        np.testing.assert_array_equal(sharded.spectrogram, single.spectrogram)
        np.testing.assert_array_equal(sharded.spectrogram, direct.spectrogram)

    def test_analyze_cohort_provider_passthrough(self):
        rr = generate_tachogram(TachogramSpec(seed=9), 600.0)
        results = ConventionalPSA().analyze_cohort([rr], provider="numpy")
        assert len(results) == 1
        wavelet = QualityScalablePSA(
            pruning=PruningSpec.paper_mode(3)
        ).analyze_cohort([rr], provider="explicit")
        assert len(wavelet) == 1


class TestAutoselectDiskCache:
    """Persistence of measured autoselect choices across processes."""

    @pytest.fixture(autouse=True)
    def _isolated(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        registry.clear_provider_state()
        yield
        registry.clear_provider_state()

    def test_measured_choice_is_persisted_and_read_back(self, tmp_path):
        import json
        import os

        first = registry.autoselect(512)
        if first.source != "measured":
            pytest.skip("only one provider available: nothing persisted")
        path = registry.autoselect_cache_path()
        assert os.path.exists(path)
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        assert first.provider in data.values()
        # A "new process" (cleared memo) resolves from disk, no probe.
        registry.clear_provider_state()
        second = registry.autoselect(512)
        assert second.source == "disk-cache"
        assert second.provider == first.provider
        assert second.timings is None

    def test_env_auto_bypasses_disk_cache(self, monkeypatch):
        first = registry.autoselect(512)
        if first.source != "measured":
            pytest.skip("only one provider available: nothing persisted")
        registry.clear_provider_state()
        monkeypatch.setenv("REPRO_FFT_PROVIDER", "auto")
        forced = registry.autoselect(512)
        assert forced.source == "measured"

    def test_corrupt_cache_file_is_tolerated(self):
        import os

        path = registry.autoselect_cache_path()
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("not json{")
        choice = registry.autoselect(512)
        assert choice.source in ("measured", "fallback")

    def test_clear_disk_cache_removes_file(self):
        import os

        first = registry.autoselect(512)
        if first.source != "measured":
            pytest.skip("only one provider available: nothing persisted")
        assert os.path.exists(registry.autoselect_cache_path())
        registry.clear_autoselect_disk_cache()
        assert not os.path.exists(registry.autoselect_cache_path())

    def test_key_carries_machine_identity(self):
        from repro.ffts.providers.registry import _disk_cache_key

        key = _disk_cache_key(512)
        assert f"numpy{np.__version__}" in key
        assert key.endswith("|ws512")
