"""The multiplexed streaming hub is bit-identical and interleaving-proof.

The PR 5 acceptance bar: a :class:`StreamHub` multiplexing K subjects'
streams — fed in round-robin, ragged or bursty interleavings, via the
synchronous API or the asyncio push transport — must finalize every
subject bit-identical (spectrogram *and* executed :class:`OpCounts`)
to whole-recording :meth:`Engine.analyze`, for both PSA systems, every
pruning mode, every registered provider, and both execution systems
(in-process shared batches and fleet-pool dispatch with ``jobs > 1``).
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import Engine, EngineConfig, RRSeries, make_cohort
from repro.errors import SignalError
from repro.ffts.providers.registry import available_providers

#: Subjects of the test ward (distinct dynamics: RSA and control).
SUBJECTS = ("rsa-00", "rsa-01", "ctl-00")


@pytest.fixture(scope="module")
def recordings():
    cohort = make_cohort()
    return {
        patient_id: cohort.get(patient_id).rr_series(duration=600.0)
        for patient_id in SUBJECTS
    }


#: Every pruning mode of the paper, plus both exact systems.
ALL_MODE_CONFIGS = [
    pytest.param(EngineConfig(provider="numpy"), id="conventional"),
    pytest.param(
        EngineConfig(system="quality-scalable", provider="numpy"),
        id="wavelet-exact",
    ),
    pytest.param(EngineConfig.for_mode("band", provider="numpy"), id="band"),
    pytest.param(EngineConfig.for_mode("set1", provider="numpy"), id="set1"),
    pytest.param(EngineConfig.for_mode("set2", provider="numpy"), id="set2"),
    pytest.param(EngineConfig.for_mode("set3", provider="numpy"), id="set3"),
    pytest.param(
        EngineConfig.for_mode("set3", dynamic=True, provider="numpy"),
        id="set3-dynamic",
    ),
]

#: The three distinct feed-interleaving orders of the acceptance bar.
ORDERS = ("round-robin", "ragged", "bursty")


def interleave(recordings, order: str):
    """Yield ``(subject, times, values)`` events in the given order.

    * ``round-robin`` — fixed 20-beat chunks, subjects cycled fairly;
    * ``ragged``      — per-event chunk sizes drawn from 1..40, subjects
      cycled (chunks drift out of phase);
    * ``bursty``      — one subject dumps a 150-beat burst while the
      others trickle 5-beat chunks, rotating the bursty subject.
    """
    rng = np.random.default_rng(2014 + ORDERS.index(order))
    cursors = {subject: 0 for subject in recordings}
    subjects = list(recordings)
    turn = 0
    while any(
        cursors[subject] < recordings[subject].times.size
        for subject in subjects
    ):
        for position, subject in enumerate(subjects):
            rr = recordings[subject]
            lo = cursors[subject]
            if lo >= rr.times.size:
                continue
            if order == "round-robin":
                size = 20
            elif order == "ragged":
                size = int(rng.integers(1, 41))
            else:
                bursty = subjects[turn % len(subjects)]
                size = 150 if subject == bursty else 5
            hi = min(lo + size, rr.times.size)
            cursors[subject] = hi
            yield subject, rr.times[lo:hi], rr.intervals[lo:hi]
        turn += 1


def assert_identical(batch, streamed):
    assert np.array_equal(batch.welch.frequencies, streamed.welch.frequencies)
    assert np.array_equal(batch.welch.spectrogram, streamed.welch.spectrogram)
    assert np.array_equal(batch.welch.averaged, streamed.welch.averaged)
    assert np.array_equal(batch.welch.window_times, streamed.welch.window_times)
    assert batch.welch.skipped_windows == streamed.welch.skipped_windows
    assert batch.counts == streamed.counts
    assert batch.lf_hf == streamed.lf_hf
    assert batch.band_powers == streamed.band_powers
    for got, want in zip(
        streamed.welch.window_spectra, batch.welch.window_spectra
    ):
        assert np.array_equal(got.power, want.power)
        assert got.counts == want.counts


def run_hub(engine, recordings, order: str, flush_every: int = 7):
    """Replay an interleaving through one hub, flushing periodically."""
    hub = engine.open_hub(count_ops=True)
    for count, (subject, times, values) in enumerate(
        interleave(recordings, order), 1
    ):
        hub.feed(subject, times, values)
        if count % flush_every == 0:
            hub.flush()
    return hub.finalize_all()


class TestInterleavingInvariance:
    """The acceptance matrix: orders x modes x providers x systems."""

    @pytest.mark.parametrize("order", ORDERS)
    @pytest.mark.parametrize("config", ALL_MODE_CONFIGS)
    def test_all_modes_all_orders(self, config, order, recordings):
        with Engine(config) as engine:
            batch = {
                subject: engine.analyze(rr, count_ops=True)
                for subject, rr in recordings.items()
            }
            results = run_hub(engine, recordings, order)
        assert set(results) == set(recordings)
        for subject in recordings:
            assert_identical(batch[subject], results[subject])

    @pytest.mark.parametrize("order", ORDERS)
    @pytest.mark.parametrize(
        "provider",
        [name for name, ok in available_providers().items() if ok],
    )
    def test_every_registered_provider(self, provider, order, recordings):
        config = EngineConfig.for_mode("set3", provider=provider)
        with Engine(config) as engine:
            batch = {
                subject: engine.analyze(rr, count_ops=True)
                for subject, rr in recordings.items()
            }
            results = run_hub(engine, recordings, order)
        for subject in recordings:
            assert_identical(batch[subject], results[subject])

    @pytest.mark.slow
    @pytest.mark.parametrize("order", ORDERS)
    def test_fleet_pool_dispatch(self, order, recordings):
        """jobs > 1 routes shared batches over the persistent pool.

        The whole ward is flushed in one shared batch (``flush_every``
        past the event count) so it carries enough windows to split
        across workers — tiny batches deliberately stay in-process.
        """
        config = EngineConfig(provider="numpy", jobs=2)
        with Engine(config) as engine:
            batch = {
                subject: engine.analyze(rr, count_ops=True)
                for subject, rr in recordings.items()
            }
            results = run_hub(
                engine, recordings, order, flush_every=10_000
            )
            # The hub really used the persistent fleet pool.
            assert engine._fleet is not None
            assert engine._fleet._pool is not None
        for subject in recordings:
            assert_identical(batch[subject], results[subject])


class TestHubProtocol:
    def test_feed_auto_opens_and_defers(self, recordings):
        rr = recordings["rsa-00"]
        with Engine(EngineConfig(provider="numpy")) as engine:
            hub = engine.open_hub()
            completed = hub.feed("ward-7", rr.times[:400], rr.intervals[:400])
            assert completed > 0
            assert hub.subjects == ("ward-7",)
            assert hub.pending_windows == completed
            session = hub.session("ward-7")
            assert session.subject_id == "ward-7"
            assert session.n_windows == 0  # deferred, nothing analysed yet
            emitted = hub.flush()
            assert [e.index for e in emitted["ward-7"]] == list(
                range(completed)
            )
            assert hub.pending_windows == 0
            assert session.n_windows == completed

    def test_session_feed_returns_empty_under_hub(self, recordings):
        rr = recordings["rsa-00"]
        with Engine(EngineConfig(provider="numpy")) as engine:
            hub = engine.open_hub()
            session = hub.open("a")
            assert session.feed(rr.times[:400], rr.intervals[:400]) == []
            assert hub.pending_windows > 0

    def test_feed_round_flushes_once(self, recordings):
        with Engine(EngineConfig(provider="numpy")) as engine:
            hub = engine.open_hub()
            events = [
                (subject, rr.times[:300], rr.intervals[:300])
                for subject, rr in recordings.items()
            ]
            emitted = hub.feed_round(events)
            assert set(emitted) <= set(recordings)
            assert sum(len(v) for v in emitted.values()) > 0
            assert hub.pending_windows == 0

    def test_duplicate_open_rejected(self):
        with Engine(EngineConfig(provider="numpy")) as engine:
            hub = engine.open_hub()
            hub.open("a")
            with pytest.raises(SignalError, match="already open"):
                hub.open("a")

    def test_unknown_subject_rejected(self):
        with Engine(EngineConfig(provider="numpy")) as engine:
            hub = engine.open_hub()
            with pytest.raises(SignalError, match="unknown subject"):
                hub.session("nope")

    def test_flush_empty_is_noop(self):
        with Engine(EngineConfig(provider="numpy")) as engine:
            hub = engine.open_hub()
            assert hub.flush() == {}

    def test_finalize_single_subject(self, recordings):
        rr = recordings["rsa-00"]
        with Engine(EngineConfig(provider="numpy")) as engine:
            batch = engine.analyze(rr, count_ops=True)
            hub = engine.open_hub(count_ops=True)
            for lo in range(0, rr.times.size, 64):
                hub.feed("a", rr.times[lo : lo + 64], rr.intervals[lo : lo + 64])
            result = hub.finalize("a")
            assert hub.finalize("a") is result  # idempotent
        assert_identical(batch, result)

    def test_finalize_all_requires_subjects(self):
        with Engine(EngineConfig(provider="numpy")) as engine:
            hub = engine.open_hub()
            with pytest.raises(SignalError, match="no subjects"):
                hub.finalize_all()

    def test_too_short_subject_named(self, recordings):
        rr = recordings["rsa-00"]
        with Engine(EngineConfig(provider="numpy")) as engine:
            hub = engine.open_hub()
            hub.feed("ok", rr.times, rr.intervals)
            hub.feed("tiny", [0.0, 1.0], [0.8, 0.8])
            with pytest.raises(SignalError, match="tiny"):
                hub.finalize_all()

    def test_closed_hub_rejects_feeds(self, recordings):
        rr = recordings["rsa-00"]
        with Engine(EngineConfig(provider="numpy")) as engine:
            with engine.open_hub() as hub:
                hub.feed("a", rr.times[:100], rr.intervals[:100])
                session = hub.session("a")
            with pytest.raises(SignalError, match="closed"):
                hub.feed("a", rr.times[100:200], rr.intervals[100:200])
            with pytest.raises(SignalError, match="closed"):
                session.feed(rr.times[100:200], rr.intervals[100:200])
            # The rejection happened *before* ingestion: no samples were
            # consumed, so no window can have been silently discarded.
            assert session.n_samples == 100
            assert hub.pending_windows == 0  # close dropped pending

    def test_finalize_after_close_discarded_windows_fails_loudly(
        self, recordings
    ):
        """close() with pending windows poisons finalize, not silences it."""
        rr = recordings["rsa-00"]
        with Engine(EngineConfig(provider="numpy")) as engine:
            hub = engine.open_hub()
            hub.feed("a", rr.times, rr.intervals)
            assert hub.pending_windows > 0
            session = hub.session("a")
            hub.close()  # discards the completed-but-unanalysed windows
            with pytest.raises(SignalError, match="discarded"):
                session.finalize()

    def test_finalize_all_atomic_on_doomed_subject(self, recordings):
        """A doomed sibling fails the call without corrupting others.

        The failure must surface *before* any tail is analysed and
        recorded, and a later single-subject finalize must not
        re-record the healthy subject's tail (emit-once guard) — the
        result stays bit-identical, not duplicated.
        """
        rr = recordings["rsa-00"]
        with Engine(EngineConfig(provider="numpy")) as engine:
            batch = engine.analyze(rr, count_ops=True)
            hub = engine.open_hub(count_ops=True)
            hub.feed("good", rr.times, rr.intervals)
            doomed_t = np.linspace(0.0, 30.0, 20)
            hub.feed("doomed", doomed_t, np.full(20, 0.8))
            with pytest.raises(SignalError, match="doomed"):
                hub.finalize_all()
            with pytest.raises(SignalError, match="doomed"):
                hub.finalize_all()  # retry fails the same way, safely
            result = hub.finalize("good")
        assert_identical(batch, result)

    def test_sparse_hub_session_memory_stays_bounded(self, recordings):
        """A subject that never completes a window must still compact."""
        rr = recordings["rsa-00"]
        # Three beats per two-minute window: every window is dropped by
        # the keep rule, so this subject never joins a shared batch.
        sparse_t = np.arange(0.0, 150_000.0, 40.0)
        sparse_x = np.full(sparse_t.size, 0.8)
        with Engine(EngineConfig(provider="numpy")) as engine:
            hub = engine.open_hub()
            hub.feed("dense", rr.times, rr.intervals)
            for lo in range(0, sparse_t.size, 100):
                hub.feed(
                    "sparse",
                    sparse_t[lo : lo + 100],
                    sparse_x[lo : lo + 100],
                )
            hub.flush()
            session = hub.session("sparse")
            assert session.n_samples == sparse_t.size
            assert session._dropped > 0
            assert session.buffered_samples < 3000

    def test_flush_failure_keeps_pending_for_retry(
        self, recordings, monkeypatch
    ):
        """A failing shared batch must not drop the round's windows."""
        rr = recordings["rsa-00"]
        with Engine(EngineConfig(provider="numpy")) as engine:
            batch = engine.analyze(rr, count_ops=True)
            hub = engine.open_hub(count_ops=True)
            hub.feed("a", rr.times, rr.intervals)
            pending = hub.pending_windows
            assert pending > 0

            def boom(*args, **kwargs):
                raise RuntimeError("fleet worker died mid-flush")

            with monkeypatch.context() as patch:
                patch.setattr(engine, "_analyze_spans_batch", boom)
                with pytest.raises(RuntimeError, match="died"):
                    hub.flush()
            assert hub.pending_windows == pending  # retained, not lost
            result = hub.finalize("a")  # retry succeeds completely
        assert_identical(batch, result)

    def test_skips_not_double_counted_after_failed_finalize_all(self):
        """Tail skip counts survive a failed finalize_all + retry."""
        # Dense 300 s, then a sparse tail whose first window is *kept*
        # by the span rule but skipped by the MIN_BEATS rule — a skip
        # that is only discovered at finalize time.
        t = np.concatenate(
            [np.arange(0.0, 300.0, 1.0), np.arange(300.0, 420.0, 10.0)]
        )
        x = 0.8 + 0.01 * np.sin(2 * np.pi * 0.25 * t)
        rr = RRSeries(times=t, intervals=x)
        with Engine(EngineConfig(provider="numpy")) as engine:
            batch = engine.analyze(rr, count_ops=True)
            assert batch.welch.skipped_windows > 0
            hub = engine.open_hub(count_ops=True)
            hub.feed("good", t, x)
            hub.feed("doomed", np.linspace(0.0, 30.0, 20), np.full(20, 0.8))
            with pytest.raises(SignalError, match="doomed"):
                hub.finalize_all()
            result = hub.finalize("good")
        assert_identical(batch, result)  # skipped_windows included

    def test_mixed_finalize_then_finalize_all(self, recordings):
        """Individually finalized subjects keep their result in the map."""
        with Engine(EngineConfig(provider="numpy")) as engine:
            batch = {
                subject: engine.analyze(rr, count_ops=True)
                for subject, rr in recordings.items()
            }
            hub = engine.open_hub(count_ops=True)
            for subject, rr in recordings.items():
                hub.feed(subject, rr.times, rr.intervals)
            first = hub.finalize("rsa-00")
            results = hub.finalize_all()
            assert results["rsa-00"] is first
        for subject in recordings:
            assert_identical(batch[subject], results[subject])


class TestAsyncTransport:
    @pytest.mark.parametrize("config", ALL_MODE_CONFIGS)
    def test_serve_bit_identical(self, config, recordings):
        events = list(interleave(recordings, "ragged"))

        async def scenario(engine):
            hub = engine.open_hub(count_ops=True)
            return await hub.serve(events, round_events=5)

        with Engine(config) as engine:
            batch = {
                subject: engine.analyze(rr, count_ops=True)
                for subject, rr in recordings.items()
            }
            results = asyncio.run(scenario(engine))
        for subject in recordings:
            assert_identical(batch[subject], results[subject])

    @pytest.mark.parametrize("order", ORDERS)
    def test_serve_all_orders(self, order, recordings):
        events = list(interleave(recordings, order))

        async def scenario(engine):
            return await engine.open_hub(count_ops=True).serve(
                events, round_events=9
            )

        with Engine(EngineConfig(provider="numpy")) as engine:
            batch = {
                subject: engine.analyze(rr, count_ops=True)
                for subject, rr in recordings.items()
            }
            results = asyncio.run(scenario(engine))
        for subject in recordings:
            assert_identical(batch[subject], results[subject])

    def test_async_session_feed_iterate_finalize(self, recordings):
        rr = recordings["rsa-00"]

        async def scenario(engine):
            hub = engine.open_hub(count_ops=True)
            session = hub.open_async("a")
            consumed = []

            async def consume():
                async for emission in session:
                    consumed.append(emission)

            task = asyncio.create_task(consume())
            for lo in range(0, rr.times.size, 50):
                await session.feed(
                    rr.times[lo : lo + 50], rr.intervals[lo : lo + 50]
                )
            result = await session.finalize()
            await task
            return result, consumed

        with Engine(EngineConfig(provider="numpy")) as engine:
            batch = engine.analyze(rr, count_ops=True)
            result, consumed = asyncio.run(scenario(engine))
        assert_identical(batch, result)
        # Every window was delivered in order — including the trailing
        # ones finalize resolves, pushed before the end-of-stream marker.
        assert [e.index for e in consumed] == list(
            range(result.welch.n_windows)
        )

    def test_bounded_queue_backpressures_feeder(self, recordings):
        """A full emission queue makes feed await until consumed."""
        rr = recordings["rsa-00"]

        async def scenario(engine):
            hub = engine.open_hub()
            session = hub.open_async("a", max_queue=1)
            fed_all = asyncio.Event()

            async def feed_everything():
                for lo in range(0, rr.times.size, 100):
                    await session.feed(
                        rr.times[lo : lo + 100], rr.intervals[lo : lo + 100]
                    )
                fed_all.set()

            feeder = asyncio.create_task(feed_everything())
            # Give the feeder plenty of turns: it must stall on the
            # 1-slot queue once two windows have been emitted.
            for _ in range(50):
                await asyncio.sleep(0)
            stalled = not fed_all.is_set()
            consumed = []

            async def consume_everything():
                async for emission in session:
                    consumed.append(emission)

            consumer = asyncio.create_task(consume_everything())
            await asyncio.wait_for(feeder, timeout=10.0)  # drained now
            await session.aclose()  # end-of-stream for the consumer
            await asyncio.wait_for(consumer, timeout=10.0)
            return stalled, consumed

        with Engine(EngineConfig(provider="numpy")) as engine:
            stalled, consumed = asyncio.run(scenario(engine))
        assert stalled  # backpressure engaged
        assert len(consumed) >= 2  # and draining released it

    def test_concurrent_finalize_delivers_every_window(self, recordings):
        """No subject's live emissions are lost to a sibling's finalize.

        All subjects feed and finalize concurrently on 1-slot queues —
        the interleaving where one subject's finalize (holding the
        delivery lock) used to flush siblings' freshly completed
        windows and silently discard their delivery.
        """

        async def scenario(engine):
            hub = engine.open_hub()
            sessions = {
                subject: hub.open_async(subject, max_queue=1)
                for subject in recordings
            }
            counts = {}

            async def consume(subject):
                counts[subject] = sum(
                    [1 async for _ in sessions[subject]]
                )

            consumers = [
                asyncio.create_task(consume(subject))
                for subject in recordings
            ]

            async def feed_and_finalize(subject):
                rr = recordings[subject]
                for lo in range(0, rr.times.size, 60):
                    await sessions[subject].feed(
                        rr.times[lo : lo + 60], rr.intervals[lo : lo + 60]
                    )
                return subject, await sessions[subject].finalize()

            results = dict(
                await asyncio.gather(
                    *(feed_and_finalize(subject) for subject in recordings)
                )
            )
            await asyncio.wait_for(asyncio.gather(*consumers), timeout=30.0)
            return results, counts

        with Engine(EngineConfig(provider="numpy")) as engine:
            results, counts = asyncio.run(scenario(engine))
        for subject, result in results.items():
            assert counts[subject] == result.welch.n_windows

    def test_aclose_on_full_queue_releases_blocked_feeder(self, recordings):
        """Abandoning a consumer neither blocks nor wedges the feeder."""
        rr = recordings["rsa-00"]

        async def scenario(engine):
            hub = engine.open_hub(count_ops=True)
            session = hub.open_async("a", max_queue=1)

            async def feed_everything():
                for lo in range(0, rr.times.size, 100):
                    await session.feed(
                        rr.times[lo : lo + 100], rr.intervals[lo : lo + 100]
                    )

            feeder = asyncio.create_task(feed_everything())
            for _ in range(50):
                await asyncio.sleep(0)
            assert not feeder.done()  # wedged on the abandoned queue
            await session.aclose()  # never blocks; releases the feeder
            await asyncio.wait_for(feeder, timeout=10.0)
            return hub.finalize("a")  # supervisor still gets the result

        with Engine(EngineConfig(provider="numpy")) as engine:
            batch = engine.analyze(rr, count_ops=True)
            result = asyncio.run(scenario(engine))
        assert_identical(batch, result)

    def test_serve_cancellation_is_clean(self, recordings):
        """A cancelled serve leaves the hub consistent and finalizable."""
        events = list(interleave(recordings, "round-robin"))

        async def scenario(engine):
            hub = engine.open_hub(count_ops=True)
            gate = asyncio.Event()

            async def slow_reader():
                for count, event in enumerate(events):
                    if count == len(events) // 2:
                        gate.set()  # mid-stream: let the test cancel us
                        await asyncio.sleep(3600)
                    yield event

            task = asyncio.create_task(hub.serve(slow_reader()))
            await gate.wait()
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            # The hub survived: replay the rest synchronously and
            # finalize — results must still be bit-identical.
            consumed = {subject: 0 for subject in recordings}
            for subject, times, values in events:
                fed = hub.session(subject).n_samples if subject in hub.subjects else 0
                if fed >= consumed[subject] + times.size:
                    consumed[subject] += times.size
                    continue  # serve already delivered this event
                hub.feed(subject, times, values)
                consumed[subject] += times.size
            return hub.finalize_all()

        with Engine(EngineConfig(provider="numpy")) as engine:
            batch = {
                subject: engine.analyze(rr, count_ops=True)
                for subject, rr in recordings.items()
            }
            results = asyncio.run(scenario(engine))
        for subject in recordings:
            assert_identical(batch[subject], results[subject])

    def test_serve_without_finalize_leaves_hub_open(self, recordings):
        rr = recordings["rsa-00"]
        half = rr.times.size // 2

        async def scenario(engine):
            hub = engine.open_hub(count_ops=True)
            first = [("a", rr.times[:half], rr.intervals[:half])]
            second = [("a", rr.times[half:], rr.intervals[half:])]
            assert await hub.serve(first, finalize=False) is None
            return await hub.serve(second)

        with Engine(EngineConfig(provider="numpy")) as engine:
            batch = engine.analyze(rr, count_ops=True)
            results = asyncio.run(scenario(engine))
        assert_identical(batch, results["a"])

    def test_serve_delivers_tail_windows_to_consumers(self, recordings):
        rr = recordings["rsa-00"]
        events = [
            ("a", rr.times[lo : lo + 80], rr.intervals[lo : lo + 80])
            for lo in range(0, rr.times.size, 80)
        ]

        async def scenario(engine):
            hub = engine.open_hub()
            session = hub.open_async("a")

            async def consume():
                return [emission async for emission in session]

            task = asyncio.create_task(consume())
            results = await hub.serve(events, round_events=3)
            return results["a"], await task

        with Engine(EngineConfig(provider="numpy")) as engine:
            result, consumed = asyncio.run(scenario(engine))
        assert [e.index for e in consumed] == list(
            range(result.welch.n_windows)
        )

    def test_close_unblocks_async_consumers(self):
        """close() must deliver end-of-stream, not strand consumers."""

        async def scenario(engine):
            hub = engine.open_hub()
            session = hub.open_async("a")

            async def consume():
                return [emission async for emission in session]

            task = asyncio.create_task(consume())
            await asyncio.sleep(0)  # let the consumer block on the queue
            hub.close()
            return await asyncio.wait_for(task, timeout=5.0)

        with Engine(EngineConfig(provider="numpy")) as engine:
            assert asyncio.run(scenario(engine)) == []

    def test_serve_failure_still_ends_consumers(self, recordings):
        """A raising finalize_all must not leave consumers hanging."""
        rr = recordings["rsa-00"]
        # >= MIN_BEATS beats, but all inside half a window: this subject
        # can never produce an analysable window.
        doomed_t = np.linspace(0.0, 30.0, 20)
        events = [
            ("good", rr.times, rr.intervals),
            ("doomed", doomed_t, np.full(20, 0.8)),
        ]

        async def scenario(engine):
            hub = engine.open_hub()
            session = hub.open_async("good")

            async def consume():
                return sum([1 async for _ in session])

            task = asyncio.create_task(consume())
            with pytest.raises(SignalError, match="doomed"):
                await hub.serve(events)
            return await asyncio.wait_for(task, timeout=5.0)

        with Engine(EngineConfig(provider="numpy")) as engine:
            consumed = asyncio.run(scenario(engine))
        assert consumed > 0  # got the live windows, then end-of-stream

    def test_serve_feed_failure_still_ends_consumers(self, recordings):
        """A mid-stream feed error must not strand consumers either."""
        rr = recordings["rsa-00"]
        events = [
            ("good", rr.times[:400], rr.intervals[:400]),
            # Non-monotonic resend: hub.feed raises inside the loop.
            ("good", rr.times[100:200], rr.intervals[100:200]),
        ]

        async def scenario(engine):
            hub = engine.open_hub()
            session = hub.open_async("good")

            async def consume():
                return sum([1 async for _ in session])

            task = asyncio.create_task(consume())
            with pytest.raises(SignalError, match="strictly increasing"):
                await hub.serve(events, round_events=1)
            return await asyncio.wait_for(task, timeout=5.0)

        with Engine(EngineConfig(provider="numpy")) as engine:
            consumed = asyncio.run(scenario(engine))
        assert consumed >= 0  # consumer ended instead of hanging

    def test_async_finalize_failure_ends_consumer(self):
        """await finalize() on a doomed subject must end iteration."""

        async def scenario(engine):
            hub = engine.open_hub()
            session = hub.open_async("doomed")

            async def consume():
                return [emission async for emission in session]

            task = asyncio.create_task(consume())
            await session.feed(np.linspace(0.0, 30.0, 20), np.full(20, 0.8))
            with pytest.raises(SignalError, match="no analysable"):
                await session.finalize()
            return await asyncio.wait_for(task, timeout=5.0)

        with Engine(EngineConfig(provider="numpy")) as engine:
            assert asyncio.run(scenario(engine)) == []

    def test_serve_rejects_bad_round(self):
        async def scenario(engine):
            return await engine.open_hub().serve([], round_events=0)

        with Engine(EngineConfig(provider="numpy")) as engine:
            with pytest.raises(SignalError, match="round_events"):
                asyncio.run(scenario(engine))
