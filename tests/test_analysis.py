"""Tests for the analysis package (metrics, sensitivity, trade-off)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    bar_chart,
    energy_quality_sweep,
    format_percent,
    format_table,
    mse,
    mse_sensitivity_sweep,
    nmse,
    psnr_db,
    relative_band_error,
    twiddle_histogram,
)
from repro.errors import SignalError


class TestMetrics:
    def test_mse_known_value(self):
        assert mse([1.0, 2.0], [1.0, 4.0]) == pytest.approx(2.0)

    def test_mse_zero_for_identical(self, rng):
        x = rng.standard_normal(32)
        assert mse(x, x) == 0.0

    def test_nmse_scale_invariant(self, rng):
        ref = rng.standard_normal(64)
        approx = ref + 0.1 * rng.standard_normal(64)
        assert nmse(ref, approx) == pytest.approx(
            nmse(5 * ref, 5 * approx), rel=1e-9
        )

    def test_psnr_infinite_for_exact(self, rng):
        x = rng.standard_normal(16)
        assert psnr_db(x, x) == float("inf")

    def test_relative_band_error(self):
        assert relative_band_error(0.45, 0.465) == pytest.approx(1 / 30)
        with pytest.raises(SignalError):
            relative_band_error(0.0, 1.0)

    def test_shape_mismatch(self):
        with pytest.raises(SignalError):
            mse([1.0, 2.0], [1.0])


class TestTwiddleHistogram:
    def test_histogram_totals(self):
        hist = twiddle_histogram(512, "haar")
        assert int(hist.counts.sum()) == 512  # A and C pooled: 2 * 256
        assert hist.a_magnitudes.size == 256
        assert hist.c_magnitudes.size == 256

    def test_set_thresholds_ordered(self):
        hist = twiddle_histogram(512, "haar")
        t = hist.set_thresholds
        assert 0 < t[1] < t[2] < t[3] < np.sqrt(2) + 1e-9

    def test_paper_monotonicity(self):
        hist = twiddle_histogram(512, "haar")
        assert np.all(np.diff(hist.a_magnitudes) <= 1e-12)
        assert np.all(np.diff(hist.c_magnitudes) >= -1e-12)

    def test_invalid_bins(self):
        with pytest.raises(SignalError):
            twiddle_histogram(512, bins=1)


class TestSensitivitySweep:
    def _windows(self, rng, count=6, n=256):
        windows = []
        for _ in range(count):
            smooth = np.cumsum(rng.standard_normal(n))
            windows.append(smooth - smooth.mean())
        return windows

    def test_mse_grows_with_fraction(self, rng):
        """Stage-2 pruning alone (no band drop, so no error cross-terms)
        degrades MSE monotonically with the pruned fraction."""
        points = mse_sensitivity_sweep(
            self._windows(rng),
            n=256,
            fractions=(0.0, 0.2, 0.4, 0.6),
            band_drop=False,
        )
        means = [p.mean_mse for p in points]
        assert means[0] < 1e-12
        assert means[1] < means[2] < means[3]

    def test_mse_with_band_drop_bounded(self, rng):
        """On top of the band drop the set pruning changes MSE only
        moderately (cross terms can move it either way)."""
        points = mse_sensitivity_sweep(
            self._windows(rng), n=256, fractions=(0.0, 0.6), band_drop=True
        )
        assert points[1].mean_mse < points[0].mean_mse * 3.0

    def test_dynamic_points_included(self, rng):
        points = mse_sensitivity_sweep(
            self._windows(rng), n=256, fractions=(0.0, 0.4), include_dynamic=True
        )
        labels = [p.label for p in points]
        assert "40% dyn" in labels

    def test_window_length_validated(self, rng):
        with pytest.raises(SignalError):
            mse_sensitivity_sweep([rng.standard_normal(128)], n=256)

    def test_empty_corpus_rejected(self):
        with pytest.raises(SignalError):
            mse_sensitivity_sweep([])


class TestEnergyQualitySweep:
    def test_sweep_shape(self):
        from repro import make_cohort

        recordings = [
            p.rr_series(duration=360.0)
            for p in make_cohort(n_arrhythmia=2, n_healthy=0)
        ]
        points = energy_quality_sweep(recordings)
        assert len(points) == 7
        static_modes = [p for p in points if not p.dynamic]
        # Savings grow along the static ladder and VFS always helps.
        savings = [p.static_savings for p in static_modes]
        assert savings == sorted(savings)
        for p in points:
            assert p.vfs_savings >= p.static_savings
            assert p.distortion < 0.2

    def test_empty_recordings_rejected(self):
        with pytest.raises(SignalError):
            energy_quality_sweep([])


class TestReporting:
    def test_format_table(self):
        table = format_table(
            ["mode", "savings"], [["set1", "10%"], ["set3", "42%"]], title="T"
        )
        assert "mode" in table and "set3" in table and table.startswith("T")

    def test_format_table_validation(self):
        with pytest.raises(SignalError):
            format_table(["a"], [])
        with pytest.raises(SignalError):
            format_table(["a"], [["x", "y"]])

    def test_format_percent(self):
        assert format_percent(0.123) == "12.3%"
        assert format_percent(0.1, signed=True) == "+10.0%"

    def test_bar_chart(self):
        chart = bar_chart(["a", "bb"], [1.0, 2.0])
        assert chart.count("\n") == 1
        assert "##" in chart

    def test_bar_chart_validation(self):
        with pytest.raises(SignalError):
            bar_chart([], [])
        with pytest.raises(SignalError):
            bar_chart(["a"], [0.0])
