"""The unified Engine facade: config serialization, resolution, execution.

Covers the PR 4 redesign contract:

* :class:`EngineConfig` round-trips losslessly through dict and JSON,
* :meth:`EngineConfig.resolve` follows the documented precedence chain
  — explicit argument → config field → (process pin →) env pin →
  auto-probe — with one test per layer and no ``os.environ`` reads
  outside :mod:`repro.envpins`,
* :class:`Engine` produces results identical to the legacy entry
  points, owns a persistent fleet pool, and pins its resolved
  provider/chunk only for the duration of its own calls.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConventionalPSA, Engine, EngineConfig, QualityScalablePSA
from repro.core.config import PSAConfig
from repro.ecg.database import make_cohort
from repro.engine import ResolvedExecution, build_system
from repro.engine.config import SYSTEM_KINDS
from repro.envpins import (
    CHUNK_ENV_VAR,
    PROVIDER_ENV_VAR,
    chunk_env_pin,
    provider_env_pin,
)
from repro.errors import ConfigurationError, SignalError
from repro.ffts.providers import registry
from repro.ffts.pruning import PruningSpec
from repro.fleet.runner import FleetRunner
from repro.fleet.tuning import autotune_chunk_windows
from repro.hrv.bands import STANDARD_BANDS, FrequencyBand
from repro.lomb.fast import get_chunk_override


@pytest.fixture(scope="module")
def recording():
    return make_cohort().get("rsa-00").rr_series(duration=480.0)


@pytest.fixture(scope="module")
def cohort_recordings():
    cohort = make_cohort()
    return [
        cohort.get("rsa-01").rr_series(duration=420.0),
        cohort.get("ctl-01").rr_series(duration=420.0),
    ]


def _configs():
    return [
        EngineConfig(),
        EngineConfig.for_mode("set3"),
        EngineConfig.for_mode("set1", dynamic=True),
        EngineConfig(
            system="quality-scalable",
            pruning=PruningSpec(
                band_drop=True,
                twiddle_fraction=0.4,
                dynamic=True,
                dynamic_threshold=0.125,
            ),
            psa=PSAConfig(fft_size=256, window_seconds=60.0, basis="db2"),
            provider="numpy",
            chunk_windows=64,
            jobs=2,
            bands=(
                FrequencyBand("LO", 0.0, 0.15),
                FrequencyBand("HI", 0.15, 0.4),
            ),
        ),
        EngineConfig(jobs=None, provider="explicit"),
    ]


class TestEngineConfigSerialization:
    @pytest.mark.parametrize("config", _configs())
    def test_dict_round_trip(self, config):
        assert EngineConfig.from_dict(config.to_dict()) == config

    @pytest.mark.parametrize("config", _configs())
    def test_json_round_trip(self, config):
        assert EngineConfig.from_json(config.to_json()) == config

    def test_partial_dict_takes_defaults(self):
        config = EngineConfig.from_dict({"system": "quality-scalable"})
        assert config == EngineConfig(system="quality-scalable")

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="chunk_window"):
            EngineConfig.from_dict({"chunk_window": 64})

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON"):
            EngineConfig.from_json("{not json")

    def test_from_file(self, tmp_path):
        config = EngineConfig.for_mode("set2", provider="numpy")
        path = tmp_path / "engine.json"
        path.write_text(config.to_json(), encoding="utf-8")
        assert EngineConfig.from_file(path) == config

    def test_bands_survive_round_trip_as_tuple(self):
        config = EngineConfig.from_json(EngineConfig().to_json())
        assert config.bands == STANDARD_BANDS
        assert isinstance(config.bands, tuple)


class TestEngineConfigValidation:
    def test_system_kinds(self):
        assert set(SYSTEM_KINDS) == {"conventional", "quality-scalable"}
        with pytest.raises(ConfigurationError, match="system"):
            EngineConfig(system="hybrid")

    def test_unknown_provider_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown FFT provider"):
            EngineConfig(provider="fftw")

    def test_provider_name_normalised(self):
        assert EngineConfig(provider="  NumPy ").provider == "numpy"

    def test_bad_chunk_rejected(self):
        with pytest.raises(ConfigurationError, match="chunk_windows"):
            EngineConfig(chunk_windows=0)

    def test_bad_jobs_rejected(self):
        with pytest.raises(ConfigurationError, match="jobs"):
            EngineConfig(jobs=0)

    def test_empty_bands_rejected(self):
        with pytest.raises(ConfigurationError, match="bands"):
            EngineConfig(bands=())

    def test_for_mode_unknown(self):
        with pytest.raises(ConfigurationError, match="unknown pruning mode"):
            EngineConfig.for_mode("set9")

    def test_for_mode_exact_has_no_dynamic(self):
        with pytest.raises(ConfigurationError, match="dynamic"):
            EngineConfig.for_mode("exact", dynamic=True)

    def test_for_mode_mapping(self):
        assert EngineConfig.for_mode("exact").system == "conventional"
        set2 = EngineConfig.for_mode("set2")
        assert set2.system == "quality-scalable"
        assert set2.pruning == PruningSpec.paper_mode(2)
        dyn = EngineConfig.for_mode("set3", dynamic=True)
        assert dyn.pruning.dynamic


class TestResolvePrecedence:
    """One test per layer of the documented resolution chain."""

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(PROVIDER_ENV_VAR, "numpy")
        monkeypatch.setenv(CHUNK_ENV_VAR, "128")
        config = EngineConfig(provider="numpy", chunk_windows=32, jobs=2)
        resolved = config.resolve(
            provider="explicit", chunk_windows=7, jobs=3
        )
        assert (resolved.provider, resolved.provider_source) == (
            "explicit", "explicit",
        )
        assert (resolved.chunk_windows, resolved.chunk_source) == (
            7, "explicit",
        )
        assert (resolved.jobs, resolved.jobs_source) == (3, "explicit")

    def test_config_field_beats_env(self, monkeypatch):
        monkeypatch.setenv(PROVIDER_ENV_VAR, "explicit")
        monkeypatch.setenv(CHUNK_ENV_VAR, "128")
        config = EngineConfig(provider="numpy", chunk_windows=32, jobs=2)
        resolved = config.resolve()
        assert (resolved.provider, resolved.provider_source) == (
            "numpy", "config",
        )
        assert (resolved.chunk_windows, resolved.chunk_source) == (
            32, "config",
        )
        assert (resolved.jobs, resolved.jobs_source) == (2, "config")

    def test_process_pin_between_config_and_env(self, monkeypatch):
        monkeypatch.setenv(PROVIDER_ENV_VAR, "numpy")
        registry.set_default_provider("explicit")
        resolved = EngineConfig().resolve()
        assert (resolved.provider, resolved.provider_source) == (
            "explicit", "process-pin",
        )

    def test_chunk_process_pin_between_config_and_env(self, monkeypatch):
        from repro.lomb.fast import set_batch_chunk_windows

        monkeypatch.setenv(CHUNK_ENV_VAR, "128")
        set_batch_chunk_windows(24)
        try:
            resolved = EngineConfig().resolve()
            assert (resolved.chunk_windows, resolved.chunk_source) == (
                24, "process-pin",
            )
            # A config field still outranks the process pin.
            assert EngineConfig(chunk_windows=32).resolve().chunk_windows == 32
        finally:
            set_batch_chunk_windows(None)

    def test_env_pin_beats_autoprobe(self, monkeypatch):
        monkeypatch.setenv(PROVIDER_ENV_VAR, "explicit")
        monkeypatch.setenv(CHUNK_ENV_VAR, "96")
        resolved = EngineConfig().resolve()
        assert (resolved.provider, resolved.provider_source) == (
            "explicit", "env",
        )
        assert (resolved.chunk_windows, resolved.chunk_source) == (96, "env")

    def test_env_auto_runs_probe(self, monkeypatch):
        monkeypatch.setenv(PROVIDER_ENV_VAR, "auto")
        resolved = EngineConfig().resolve()
        assert resolved.provider_source == "env"
        assert resolved.provider == registry.autoselect(512).provider

    def test_autoprobe_is_the_last_layer(self, monkeypatch):
        monkeypatch.delenv(PROVIDER_ENV_VAR, raising=False)
        monkeypatch.delenv(CHUNK_ENV_VAR, raising=False)
        resolved = EngineConfig().resolve()
        assert resolved.provider_source == "autoselect"
        assert resolved.provider == registry.autoselect(512).provider
        assert resolved.chunk_source == "autotuned"
        assert (
            resolved.chunk_windows
            == autotune_chunk_windows(512).chunk_windows
        )

    def test_jobs_cpu_count_layer(self):
        import os

        resolved = EngineConfig(jobs=None).resolve()
        assert (resolved.jobs, resolved.jobs_source) == (
            os.cpu_count() or 1, "cpu-count",
        )

    def test_resolved_is_a_record(self):
        resolved = EngineConfig(provider="numpy", chunk_windows=8).resolve()
        assert isinstance(resolved, ResolvedExecution)

    def test_bad_explicit_arguments(self):
        with pytest.raises(ConfigurationError):
            EngineConfig().resolve(provider="fftw")
        with pytest.raises(ConfigurationError):
            EngineConfig().resolve(chunk_windows=0)
        with pytest.raises(ConfigurationError):
            EngineConfig().resolve(jobs=0)


class TestEnvPins:
    """The single env-read module parses both pins consistently."""

    def test_unset_means_none(self, monkeypatch):
        monkeypatch.delenv(PROVIDER_ENV_VAR, raising=False)
        monkeypatch.delenv(CHUNK_ENV_VAR, raising=False)
        assert provider_env_pin() is None
        assert chunk_env_pin() is None

    def test_empty_means_none(self, monkeypatch):
        monkeypatch.setenv(PROVIDER_ENV_VAR, "   ")
        monkeypatch.setenv(CHUNK_ENV_VAR, " ")
        assert provider_env_pin() is None
        assert chunk_env_pin() is None

    def test_provider_normalised(self, monkeypatch):
        monkeypatch.setenv(PROVIDER_ENV_VAR, "  NumPy ")
        assert provider_env_pin() == "numpy"

    def test_chunk_validation(self, monkeypatch):
        monkeypatch.setenv(CHUNK_ENV_VAR, "48")
        assert chunk_env_pin() == 48
        monkeypatch.setenv(CHUNK_ENV_VAR, "zero")
        with pytest.raises(ConfigurationError):
            chunk_env_pin()
        monkeypatch.setenv(CHUNK_ENV_VAR, "-3")
        with pytest.raises(ConfigurationError):
            chunk_env_pin()

    def test_no_other_module_reads_environ(self):
        """Source-level guard: os.environ only appears in envpins."""
        from pathlib import Path

        src = Path(__file__).resolve().parent.parent / "src" / "repro"
        offenders = [
            str(path.relative_to(src))
            for path in src.rglob("*.py")
            if path.name != "envpins.py"
            and "os.environ" in path.read_text(encoding="utf-8")
        ]
        assert offenders == []


class TestBuildSystem:
    def test_conventional(self):
        system = build_system(EngineConfig())
        assert isinstance(system, ConventionalPSA)

    def test_quality_scalable_applies_pruning(self):
        config = EngineConfig.for_mode("set3")
        system = build_system(config)
        assert isinstance(system, QualityScalablePSA)
        assert system.pruning == config.pruning

    def test_bands_installed(self):
        bands = (FrequencyBand("ALL", 0.0, 0.4),)
        system = build_system(EngineConfig(bands=bands))
        assert system.bands == bands

    def test_to_engine_config_bridges_back(self):
        system = QualityScalablePSA(pruning=PruningSpec.paper_mode(2))
        config = system.to_engine_config(jobs=2, provider="numpy")
        assert config.system == "quality-scalable"
        assert config.pruning == PruningSpec.paper_mode(2)
        assert config.psa == system.config
        assert (config.jobs, config.provider) == (2, "numpy")
        rebuilt = build_system(config)
        assert rebuilt.pruning == system.pruning

    def test_to_engine_config_conventional(self):
        assert ConventionalPSA().to_engine_config().system == "conventional"


class TestEngineExecution:
    def test_analyze_matches_legacy(self, recording):
        legacy = ConventionalPSA().analyze(recording, count_ops=True)
        with Engine(EngineConfig(provider="numpy")) as engine:
            facade = engine.analyze(recording, count_ops=True)
        assert np.array_equal(
            facade.welch.spectrogram, legacy.welch.spectrogram
        )
        assert facade.lf_hf == legacy.lf_hf
        assert facade.counts == legacy.counts
        assert facade.band_powers == legacy.band_powers

    def test_analyze_pruned_matches_legacy(self, recording):
        spec = PruningSpec.paper_mode(3)
        legacy = QualityScalablePSA(pruning=spec).analyze(
            recording, count_ops=True
        )
        with Engine(
            EngineConfig.for_mode("set3", provider="numpy")
        ) as engine:
            facade = engine.analyze(recording, count_ops=True)
        assert np.array_equal(
            facade.welch.spectrogram, legacy.welch.spectrogram
        )
        assert facade.counts == legacy.counts

    def test_analyze_requires_rrseries(self):
        with Engine() as engine:
            with pytest.raises(SignalError, match="RRSeries"):
                engine.analyze([0.8, 0.9, 1.0])

    def test_cohort_matches_per_recording(self, cohort_recordings):
        with Engine(EngineConfig(provider="numpy")) as engine:
            cohort = engine.analyze_cohort(
                cohort_recordings, count_ops=True
            )
            singles = [
                engine.analyze(rr, count_ops=True)
                for rr in cohort_recordings
            ]
        for got, want in zip(cohort, singles):
            assert np.array_equal(
                got.welch.spectrogram, want.welch.spectrogram
            )
            assert got.counts == want.counts
            assert got.lf_hf == want.lf_hf

    def test_fleet_pool_is_persistent(self, cohort_recordings):
        with Engine(EngineConfig(provider="numpy")) as engine:
            engine.analyze_cohort(cohort_recordings)
            runner = engine._fleet
            assert isinstance(runner, FleetRunner)
            engine.analyze_cohort(cohort_recordings)
            assert engine._fleet is runner
        assert engine._fleet is None  # close() released it

    def test_pins_are_scoped_to_calls(self, recording):
        before_provider = registry.get_default_provider_name()
        before_chunk = get_chunk_override()
        with Engine(EngineConfig(provider="explicit")) as engine:
            engine.analyze(recording)
        assert registry.get_default_provider_name() == before_provider
        assert get_chunk_override() == before_chunk

    def test_resolved_provider_respected(self, recording):
        with Engine(EngineConfig(provider="explicit")) as engine:
            assert engine.resolved.provider == "explicit"
            assert engine.resolved.provider_source == "config"

    def test_from_json(self, recording):
        config = EngineConfig.for_mode("band", provider="numpy")
        with Engine.from_json(config.to_json()) as engine:
            assert engine.config == config
            result = engine.analyze(recording)
        assert result.welch.n_windows > 0

    def test_from_file(self, tmp_path, recording):
        path = tmp_path / "cfg.json"
        path.write_text(EngineConfig().to_json(), encoding="utf-8")
        with Engine.from_file(path) as engine:
            assert engine.config == EngineConfig()

    def test_rejects_non_config(self):
        with pytest.raises(ConfigurationError, match="EngineConfig"):
            Engine({"system": "conventional"})

    def test_fleet_runner_from_config(self, cohort_recordings):
        config = EngineConfig(provider="numpy", chunk_windows=64, jobs=1)
        with FleetRunner.from_config(config) as runner:
            report = runner.run_report(
                [(rr.times, rr.intervals) for rr in cohort_recordings]
            )
        assert report.provider == "numpy"
        assert report.chunk_windows == 64
        assert report.n_jobs == 1
