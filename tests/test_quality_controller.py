"""The SLO controller: spec validation, hysteresis, shedding policies.

Unit-level coverage of :mod:`repro.engine.controller`: the
:class:`SLOSpec` contract (validation, JSON round-trips, canonical
tier floors), the degradation ladder's shape, and the controller's
hysteresis — step-downs only after consecutive breaches, recovery only
after consecutive healthy flushes, and **no flapping** when load
oscillates through the band between the two thresholds.  Observations
are injected directly through ``controller.observe`` (and via the
fault harness's clock/latency hooks), so these tests steer the control
loop without ever depending on wall-clock behaviour.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.engine import Engine, EngineConfig, SLOSpec, degradation_ladder
from repro.errors import ConfigurationError


def make_hub(slo, subjects=("s0", "s1", "s2"), system="quality-scalable"):
    engine = Engine(EngineConfig(system=system, slo=slo))
    hub = engine.open_hub()
    for subject in subjects:
        hub.open(subject)
    return engine, hub


class TestSLOSpec:
    def test_defaults_are_valid(self):
        spec = SLOSpec()
        assert spec.target_p95_ms == 50.0
        assert spec.max_backlog is None
        assert spec.policy == "per-subject"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_p95_ms": 0.0},
            {"target_p95_ms": -1.0},
            {"max_backlog": 0},
            {"window": 0},
            {"step_down_after": 0},
            {"recover_after": 0},
            {"recovery_margin": 0.0},
            {"recovery_margin": 1.5},
            {"policy": "fastest-first"},
            {"floor": -1},
            {"ceiling": -2},
            {"floor": 1, "ceiling": 2},
            {"tier_floors": {"": 0}},
            {"tier_floors": {"icu": -1}},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SLOSpec(**kwargs)

    def test_tier_floors_canonicalised(self):
        a = SLOSpec(tier_floors={"ward": 3, "icu": 0})
        b = SLOSpec(tier_floors=(("icu", 0), ("ward", 3)))
        assert a == b
        assert a.tier_floors == (("icu", 0), ("ward", 3))
        assert hash(a) == hash(b)
        assert a.tier_floor("icu") == 0
        assert a.tier_floor("ward") == 3
        assert a.tier_floor("unknown") is None
        assert a.tier_floor(None) is None

    def test_json_round_trip(self):
        spec = SLOSpec(
            target_p95_ms=12.5,
            max_backlog=64,
            window=8,
            step_down_after=3,
            recover_after=5,
            recovery_margin=0.5,
            policy="uniform",
            floor=3,
            ceiling=1,
            tier_floors={"icu": 0},
        )
        assert SLOSpec.from_json(spec.to_json()) == spec
        assert SLOSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="max_backlogg"):
            SLOSpec.from_dict({"max_backlogg": 3})

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ConfigurationError, match="JSON"):
            SLOSpec.from_json("{not json")

    def test_replace(self):
        spec = SLOSpec().replace(target_p95_ms=5.0)
        assert spec.target_p95_ms == 5.0
        assert spec.window == SLOSpec().window

    def test_engine_config_round_trip(self):
        config = EngineConfig(slo=SLOSpec(target_p95_ms=9.0, floor=2))
        rebuilt = EngineConfig.from_dict(config.to_dict())
        assert rebuilt.slo == config.slo

    def test_engine_config_rejects_non_spec(self):
        with pytest.raises(ConfigurationError, match="SLOSpec"):
            EngineConfig(slo={"target_p95_ms": 5.0})


class TestDegradationLadder:
    def test_base_config_gets_full_paper_ladder(self):
        ladder = degradation_ladder(EngineConfig())
        assert ladder[0].label == "full"
        assert ladder[0].level == 0
        assert len(ladder) == 5
        # Strictly deeper as the level grows.
        fractions = [entry.pruning.twiddle_fraction for entry in ladder[1:]]
        assert fractions == sorted(fractions)
        assert all(entry.pruning.band_drop for entry in ladder[1:])
        assert all(
            entry.system == "quality-scalable" for entry in ladder[1:]
        )

    def test_deepest_mode_gets_one_rung(self):
        ladder = degradation_ladder(
            EngineConfig.for_mode("set3", dynamic=True)
        )
        assert len(ladder) == 1
        assert ladder[0].label == "full"

    def test_mid_ladder_config_only_sheds_deeper(self):
        config = EngineConfig.for_mode("set2")
        ladder = degradation_ladder(config)
        base_fraction = config.pruning.twiddle_fraction
        assert all(
            entry.pruning.twiddle_fraction > base_fraction
            for entry in ladder[1:]
        )


class TestHysteresis:
    """Streak accounting, driven by direct ``observe`` calls.

    ``window=1`` makes the rolling p95 equal the last observation, so
    each call lands exactly where the test aims it: breach (> target),
    band (between margin*target and target) or healthy (<= margin*target).
    """

    SPEC = SLOSpec(
        target_p95_ms=10.0, window=1, step_down_after=2, recover_after=2,
        recovery_margin=0.7,
    )
    BREACH, BAND, HEALTHY = 0.020, 0.008, 0.002  # seconds

    def test_step_down_needs_consecutive_breaches(self):
        engine, hub = make_hub(self.SPEC)
        with engine:
            controller = hub.controller
            controller.observe(self.BREACH, 0, {})
            assert controller.stats()["steps_down"] == 0
            controller.observe(self.BREACH, 0, {})
            assert controller.stats()["steps_down"] == 1
            assert 1 in hub.controller_stats()["levels"].values()

    def test_band_resets_breach_streak(self):
        engine, hub = make_hub(self.SPEC)
        with engine:
            controller = hub.controller
            controller.observe(self.BREACH, 0, {})
            controller.observe(self.BAND, 0, {})
            controller.observe(self.BREACH, 0, {})
            assert controller.stats()["steps_down"] == 0

    def test_band_resets_healthy_streak(self):
        engine, hub = make_hub(self.SPEC)
        with engine:
            hub.set_quality("s0", 2, pin=False)
            controller = hub.controller
            controller.observe(self.HEALTHY, 0, {})
            controller.observe(self.BAND, 0, {})
            controller.observe(self.HEALTHY, 0, {})
            assert controller.stats()["steps_up"] == 0

    def test_no_flapping_under_oscillating_load(self):
        """Load oscillating breach/band/healthy never moves anyone."""
        engine, hub = make_hub(self.SPEC)
        with engine:
            controller = hub.controller
            before = dict(hub.controller_stats()["levels"])
            for _ in range(10):
                controller.observe(self.BREACH, 0, {})
                controller.observe(self.BAND, 0, {})
                controller.observe(self.HEALTHY, 0, {})
            stats = controller.stats()
            assert stats["steps_down"] == 0
            assert stats["steps_up"] == 0
            assert stats["levels"] == before
            assert stats["decisions"] == []

    def test_recovery_needs_consecutive_healthy(self):
        engine, hub = make_hub(self.SPEC)
        with engine:
            hub.set_quality("s0", 2, pin=False)
            controller = hub.controller
            controller.observe(self.HEALTHY, 0, {})
            assert controller.stats()["steps_up"] == 0
            controller.observe(self.HEALTHY, 0, {})
            stats = controller.stats()
            assert stats["steps_up"] == 1
            assert stats["levels"]["s0"] == 1

    def test_backlog_breach_without_latency(self):
        spec = self.SPEC.replace(max_backlog=5)
        engine, hub = make_hub(spec)
        with engine:
            controller = hub.controller
            controller.observe(self.HEALTHY, 50, {})
            controller.observe(self.HEALTHY, 50, {})
            stats = controller.stats()
            assert stats["steps_down"] == 1
            assert stats["decisions"][-1]["reason"] == "backlog"

    def test_backlog_within_bounds_stays_healthy(self):
        spec = self.SPEC.replace(max_backlog=5)
        engine, hub = make_hub(spec)
        with engine:
            hub.set_quality("s0", 1, pin=False)
            controller = hub.controller
            controller.observe(self.HEALTHY, 5, {})
            controller.observe(self.HEALTHY, 5, {})
            assert controller.stats()["steps_up"] == 1


class TestPolicies:
    SPEC = SLOSpec(
        target_p95_ms=10.0, window=1, step_down_after=1, recover_after=1,
    )

    @staticmethod
    def _windows(n, level=0):
        return [SimpleNamespace(quality=level) for _ in range(n)]

    def _breach(self, controller, emitted=None):
        controller.observe(0.050, 0, emitted or {})

    def test_per_subject_sheds_busiest_half_first(self):
        engine, hub = make_hub(self.SPEC)
        with engine:
            emitted = {
                "s0": self._windows(9),
                "s1": self._windows(5),
                "s2": self._windows(1),
            }
            self._breach(hub.controller, emitted)
            levels = hub.controller_stats()["levels"]
            assert levels == {"s0": 1, "s1": 1, "s2": 0}

    def test_uniform_sheds_everyone(self):
        engine, hub = make_hub(self.SPEC.replace(policy="uniform"))
        with engine:
            self._breach(hub.controller, {"s0": self._windows(9)})
            levels = hub.controller_stats()["levels"]
            assert set(levels.values()) == {1}

    def test_pinned_subjects_never_move(self):
        engine, hub = make_hub(self.SPEC.replace(policy="uniform"))
        with engine:
            hub.set_quality("s1", 0, pin=True)
            for _ in range(8):
                self._breach(hub.controller)
            levels = hub.controller_stats()["levels"]
            assert levels["s1"] == 0
            assert levels["s0"] > 0 and levels["s2"] > 0
            assert hub.controller_stats()["pinned"] == ["s1"]

    def test_floor_bounds_shedding(self):
        engine, hub = make_hub(
            self.SPEC.replace(policy="uniform", floor=2)
        )
        with engine:
            for _ in range(10):
                self._breach(hub.controller)
            assert set(hub.controller_stats()["levels"].values()) == {2}

    def test_tier_floor_overrides_global_floor(self):
        engine, hub = make_hub(
            self.SPEC.replace(policy="uniform", tier_floors={"icu": 1})
        )
        with engine:
            hub.set_tier("s0", "icu")
            for _ in range(10):
                self._breach(hub.controller)
            levels = hub.controller_stats()["levels"]
            bottom = len(hub.ladder) - 1
            assert levels["s0"] == 1
            assert levels["s1"] == bottom and levels["s2"] == bottom

    def test_ceiling_bounds_recovery(self):
        engine, hub = make_hub(
            self.SPEC.replace(policy="uniform", ceiling=1)
        )
        with engine:
            controller = hub.controller
            for _ in range(6):
                self._breach(controller)
            for _ in range(10):
                controller.observe(0.001, 0, {})
            assert set(hub.controller_stats()["levels"].values()) == {1}

    def test_step_down_with_everyone_at_floor_is_silent(self):
        engine, hub = make_hub(self.SPEC.replace(policy="uniform"))
        with engine:
            bottom = len(hub.ladder) - 1
            for subject in hub.subjects:
                hub.set_quality(subject, bottom, pin=False)
            self._breach(hub.controller)
            stats = hub.controller_stats()
            assert stats["steps_down"] == 0
            assert set(stats["levels"].values()) == {bottom}


class TestControllerPlumbing:
    def test_no_slo_means_no_controller(self):
        with Engine(EngineConfig()) as engine:
            hub = engine.open_hub()
            assert hub.controller is None
            with pytest.raises(ConfigurationError, match="SLOSpec"):
                hub.controller_stats()

    def test_set_quality_validates_level(self):
        engine, hub = make_hub(SLOSpec())
        with engine:
            with pytest.raises(ConfigurationError, match="quality level"):
                hub.set_quality("s0", len(hub.ladder))
            with pytest.raises(ConfigurationError, match="quality level"):
                hub.set_quality("s0", -1)

    def test_set_tier_validates(self):
        engine, hub = make_hub(SLOSpec())
        with engine:
            with pytest.raises(ConfigurationError, match="tier"):
                hub.set_tier("s0", "")
            hub.set_tier("s0", "icu")
            hub.set_tier("s0", None)

    def test_decision_log_is_a_ring(self):
        from repro.engine.controller import _MAX_DECISIONS

        spec = SLOSpec(
            target_p95_ms=10.0, window=1, step_down_after=1,
            recover_after=1, policy="uniform",
        )
        engine, hub = make_hub(spec)
        with engine:
            controller = hub.controller
            for _ in range(_MAX_DECISIONS + 40):
                controller.observe(0.050, 0, {})  # down (or at floor)
                controller.observe(0.001, 0, {})  # up again
            assert len(controller.stats()["decisions"]) <= _MAX_DECISIONS

    def test_stats_shape(self):
        engine, hub = make_hub(SLOSpec(target_p95_ms=7.0))
        with engine:
            stats = hub.controller_stats()
            assert stats["slo"]["target_p95_ms"] == 7.0
            assert stats["ladder"][0] == "full"
            assert stats["flushes"] == 0
            assert stats["p95_ms"] is None
            assert stats["windows_by_level"] == {}
