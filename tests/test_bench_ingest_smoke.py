"""Smoke test: the ingestion benchmark script must keep running.

Runs :func:`run_ingest_benchmark` on a tiny workload and checks the
document structure the full run commits to ``BENCH_ingest.json`` —
including the exactness guarantee both systems carry (the streamed
ECG replay bit-identical to batch analysis on every run).
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

import pytest

BENCHMARKS = pathlib.Path(__file__).parent.parent / "benchmarks"


def _load_module():
    spec = importlib.util.spec_from_file_location(
        "bench_ingest", BENCHMARKS / "bench_ingest.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_ingest", module)
    spec.loader.exec_module(module)
    return module


@pytest.mark.slow
def test_ingest_benchmark_smoke(tmp_path):
    bench = _load_module()
    document = bench.run_ingest_benchmark(
        n_subjects=2, duration_minutes=5.0, repeats=1
    )
    workload = document["workload"]
    assert workload["n_subjects"] == 2
    assert workload["n_ecg_samples"] > 0
    systems = document["systems"]
    assert set(systems) == {"conventional", "quality_scalable"}
    for entry in systems.values():
        # The throughput numbers are only publishable when the streamed
        # replay reproduced batch analysis bit for bit.
        assert entry["bit_identical"] is True
        assert entry["n_beats"] > 0
        assert entry["n_windows"] > 0
        for path in ("batch", "streaming"):
            assert entry[path]["seconds"] > 0
            assert entry[path]["samples_per_sec"] > 0
            assert entry[path]["windows_per_sec"] > 0
        assert entry["streaming_overhead_factor"] > 0
    # document must round-trip through JSON (what main() writes)
    out = tmp_path / "BENCH_ingest.json"
    out.write_text(json.dumps(document, indent=2))
    assert json.loads(out.read_text()) == document


@pytest.mark.slow
def test_ingest_benchmark_main_writes_json(tmp_path, capsys):
    bench = _load_module()
    out = tmp_path / "bench.json"
    assert bench.main(
        [
            "--subjects", "1",
            "--minutes", "5",
            "--repeats", "1",
            "--output", str(out),
        ]
    ) == 0
    document = json.loads(out.read_text())
    assert document["workload"]["n_subjects"] == 1
    assert "identical=True" in capsys.readouterr().out


def test_committed_bench_document_is_current():
    """The committed BENCH_ingest.json matches the script's schema."""
    committed = BENCHMARKS.parent / "BENCH_ingest.json"
    document = json.loads(committed.read_text())
    assert document["benchmark"] == "ingest"
    for entry in document["systems"].values():
        assert entry["bit_identical"] is True
