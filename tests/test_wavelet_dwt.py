"""Unit and property tests for :mod:`repro.wavelets.dwt`."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TransformError
from repro.wavelets import dwt_level, idwt_level, wavedec, waverec


def _random_signal(rng, n, complex_valued=False):
    x = rng.standard_normal(n)
    if complex_valued:
        x = x + 1j * rng.standard_normal(n)
    return x


class TestSingleLevel:
    def test_haar_matches_hand_computation(self):
        x = np.array([1.0, 3.0, 5.0, 7.0])
        approx, detail = dwt_level(x, "haar")
        s = np.sqrt(2.0)
        np.testing.assert_allclose(approx, [4.0 / s * 1.0, 12.0 / s], rtol=1e-12)
        np.testing.assert_allclose(detail, [-2.0 / s, -2.0 / s], rtol=1e-12)

    def test_output_lengths(self, paper_basis, rng):
        x = _random_signal(rng, 64)
        approx, detail = dwt_level(x, paper_basis)
        assert approx.size == detail.size == 32

    def test_energy_preservation(self, paper_basis, rng):
        x = _random_signal(rng, 128)
        approx, detail = dwt_level(x, paper_basis)
        energy_in = float(x @ x)
        energy_out = float(approx @ approx + detail @ detail)
        assert np.isclose(energy_in, energy_out, rtol=1e-10)

    def test_perfect_reconstruction(self, paper_basis, rng):
        x = _random_signal(rng, 64)
        approx, detail = dwt_level(x, paper_basis)
        np.testing.assert_allclose(idwt_level(approx, detail, paper_basis), x,
                                   atol=1e-10)

    def test_complex_input_transforms_channelwise(self, paper_basis, rng):
        z = _random_signal(rng, 32, complex_valued=True)
        approx, detail = dwt_level(z, paper_basis)
        ar, dr = dwt_level(z.real, paper_basis)
        ai, di = dwt_level(z.imag, paper_basis)
        np.testing.assert_allclose(approx, ar + 1j * ai, atol=1e-12)
        np.testing.assert_allclose(detail, dr + 1j * di, atol=1e-12)

    def test_constant_signal_has_zero_detail(self, paper_basis):
        x = np.full(32, 5.0)
        approx, detail = dwt_level(x, paper_basis)
        np.testing.assert_allclose(detail, 0.0, atol=1e-10)
        np.testing.assert_allclose(approx, 5.0 * np.sqrt(2.0), atol=1e-10)

    def test_odd_length_rejected(self):
        with pytest.raises(TransformError, match="even length"):
            dwt_level(np.ones(5), "haar")

    def test_2d_rejected(self):
        with pytest.raises(TransformError, match="1-D"):
            dwt_level(np.ones((4, 4)), "haar")

    def test_idwt_shape_mismatch_rejected(self):
        with pytest.raises(TransformError):
            idwt_level(np.ones(4), np.ones(8), "haar")


class TestMultiLevel:
    def test_levels_and_shapes(self, rng):
        x = _random_signal(rng, 64)
        dec = wavedec(x, "haar", levels=3)
        assert dec.levels == 3
        assert dec.approx.size == 8
        assert tuple(d.size for d in dec.details) == (8, 16, 32)

    def test_coefficient_vector_length(self, paper_basis, rng):
        x = _random_signal(rng, 128)
        dec = wavedec(x, paper_basis, levels=4)
        assert dec.coefficient_vector().size == 128

    def test_roundtrip(self, paper_basis, rng):
        x = _random_signal(rng, 256)
        dec = wavedec(x, paper_basis, levels=5)
        np.testing.assert_allclose(waverec(dec), x, atol=1e-9)

    def test_energy_by_band_sums_to_total(self, paper_basis, rng):
        x = _random_signal(rng, 64)
        dec = wavedec(x, paper_basis, levels=2)
        assert np.isclose(sum(dec.energy_by_band().values()), float(x @ x),
                          rtol=1e-10)

    def test_band_names(self, rng):
        dec = wavedec(_random_signal(rng, 32), "haar", levels=3)
        assert set(dec.energy_by_band()) == {"A3", "D3", "D2", "D1"}

    def test_invalid_levels_rejected(self):
        with pytest.raises(TransformError):
            wavedec(np.ones(8), "haar", levels=0)

    def test_indivisible_length_rejected(self):
        with pytest.raises(TransformError, match="not divisible"):
            wavedec(np.ones(12), "haar", levels=3)


class TestProperties:
    """Property-based invariants of the periodic DWT."""

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        log_n=st.integers(min_value=2, max_value=7),
        basis=st.sampled_from(["haar", "db2", "db4"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, seed, log_n, basis):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(1 << log_n)
        approx, detail = dwt_level(x, basis)
        np.testing.assert_allclose(idwt_level(approx, detail, basis), x, atol=1e-9)

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        log_n=st.integers(min_value=2, max_value=7),
        basis=st.sampled_from(["haar", "db2", "db4"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_parseval_property(self, seed, log_n, basis):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(1 << log_n)
        approx, detail = dwt_level(x, basis)
        assert np.isclose(
            float(x @ x), float(approx @ approx + detail @ detail), rtol=1e-9
        )

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        basis=st.sampled_from(["haar", "db2", "db4"]),
        scale=st.floats(min_value=-100.0, max_value=100.0,
                        allow_nan=False, allow_infinity=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_linearity(self, seed, basis, scale):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(32)
        y = rng.standard_normal(32)
        ax, dx = dwt_level(x, basis)
        ay, dy = dwt_level(y, basis)
        a_mix, d_mix = dwt_level(x + scale * y, basis)
        np.testing.assert_allclose(a_mix, ax + scale * ay, atol=1e-7)
        np.testing.assert_allclose(d_mix, dx + scale * dy, atol=1e-7)

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        shift=st.integers(min_value=0, max_value=15),
    )
    @settings(max_examples=30, deadline=None)
    def test_even_shift_covariance(self, seed, shift):
        """Circular shift by 2s shifts both subbands by s (any basis)."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(32)
        approx, detail = dwt_level(x, "db2")
        a2, d2 = dwt_level(np.roll(x, -2 * shift), "db2")
        np.testing.assert_allclose(a2, np.roll(approx, -shift), atol=1e-9)
        np.testing.assert_allclose(d2, np.roll(detail, -shift), atol=1e-9)
