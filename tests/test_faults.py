"""The fault-injection harness is deterministic and self-consistent.

:mod:`repro.testing.faults` is test infrastructure, so it gets its own
tests: a fault harness whose triggers fire at the wrong moment (or
differently between runs) produces chaos tests that pass for the wrong
reason.  Everything here runs without sockets except the
:class:`WorkerDeathTrigger` integration check, which uses a stub worker.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.testing import (
    FaultClock,
    FlakyFrameStream,
    FlushLatencyFault,
    SlowFrameStream,
    WorkerDeathTrigger,
)


class FakeStream:
    """Minimal FrameStream stand-in recording traffic."""

    def __init__(self, replies=()):
        self.sent = []
        self.replies = list(replies)
        self.closed = False
        self.bytes_sent = 0

    def send(self, kind, payload=None):
        self.sent.append((kind, payload))

    def recv(self):
        return self.replies.pop(0)

    def close(self):
        self.closed = True


class TestFaultClock:
    def test_manual_advance(self):
        clock = FaultClock(start=10.0)
        assert clock() == 10.0
        clock.advance(2.5)
        assert clock() == 12.5

    def test_skew_rate_scales_advances(self):
        clock = FaultClock(rate=2.0)
        clock.advance(1.0)
        assert clock() == 2.0

    def test_auto_tick(self):
        clock = FaultClock(tick=0.5)
        assert clock() == 0.0
        assert clock() == 0.5
        assert clock.readings == 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            FaultClock(rate=0.0)
        with pytest.raises(ConfigurationError):
            FaultClock(tick=-1.0)
        with pytest.raises(ConfigurationError):
            FaultClock().advance(-1.0)

    def test_install_uninstall_round_trip(self):
        class HubStub:
            _clock = staticmethod(lambda: 42.0)

        hub = HubStub()
        original = hub._clock
        clock = FaultClock(start=5.0).install(hub)
        assert hub._clock is clock
        clock.uninstall()
        assert hub._clock is original


class TestFlushLatencyFault:
    class HubStub:
        def __init__(self, levels):
            self.last_flush_levels = levels

    def test_cost_model_is_exact(self):
        fault = FlushLatencyFault(per_window_ms=10.0, discount=0.5)
        hub = self.HubStub({0: 4, 2: 8})
        # 4 full windows at 10ms + 8 level-2 windows at 2.5ms = 60ms.
        assert fault(hub, 0, 0.0) == pytest.approx(0.060)
        assert fault.history == [pytest.approx(0.060)]

    def test_load_schedule_holds_last_value(self):
        fault = FlushLatencyFault(per_window_ms=1.0, load=(3.0, 1.0))
        hub = self.HubStub({0: 10})
        assert fault(hub, 0, 0.0) == pytest.approx(0.030)
        assert fault(hub, 0, 0.0) == pytest.approx(0.010)
        assert fault(hub, 0, 0.0) == pytest.approx(0.010)  # holds
        assert fault.calls == 3

    def test_empty_flush_costs_nothing(self):
        fault = FlushLatencyFault()
        assert fault(self.HubStub({}), 0, 0.0) == 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            FlushLatencyFault(per_window_ms=-1.0)
        with pytest.raises(ConfigurationError):
            FlushLatencyFault(discount=0.0)
        with pytest.raises(ConfigurationError):
            FlushLatencyFault(discount=1.5)
        with pytest.raises(ConfigurationError):
            FlushLatencyFault(load=(-2.0,))

    def test_install(self):
        class HubStub:
            _flush_latency_fault = None

        hub = HubStub()
        fault = FlushLatencyFault().install(hub)
        assert hub._flush_latency_fault is fault


class TestSlowFrameStream:
    def test_counts_and_delegates(self):
        sleeps = []
        inner = FakeStream(replies=[("pong", {})])
        slow = SlowFrameStream(
            inner, send_delay=0.2, recv_delay=0.1, sleep=sleeps.append
        )
        slow.send("ping", {})
        assert slow.recv() == ("pong", {})
        assert inner.sent == [("ping", {})]
        assert sleeps == [0.2, 0.1]
        assert slow.delayed == 2

    def test_zero_delay_never_sleeps(self):
        sleeps = []
        slow = SlowFrameStream(FakeStream(), sleep=sleeps.append)
        slow.send("ping")
        assert sleeps == []

    def test_attribute_passthrough(self):
        inner = FakeStream()
        assert SlowFrameStream(inner).bytes_sent == 0


class TestFlakyFrameStream:
    def test_fail_after_sends(self):
        inner = FakeStream()
        flaky = FlakyFrameStream(inner, fail_after_sends=2)
        flaky.send("a")
        with pytest.raises(ConnectionError, match="send #2"):
            flaky.send("b")
        assert inner.closed
        assert flaky.failures == 1
        assert inner.sent == [("a", None)]

    def test_fail_after_recvs(self):
        flaky = FlakyFrameStream(
            FakeStream(replies=[("pong", {})]), fail_after_recvs=2
        )
        assert flaky.recv() == ("pong", {})
        with pytest.raises(ConnectionError, match="recv #2"):
            flaky.recv()

    def test_fail_on_kind(self):
        inner = FakeStream()
        flaky = FlakyFrameStream(inner, fail_kinds=("task",))
        flaky.send("array", {"key": 0})
        with pytest.raises(ConnectionError, match="task"):
            flaky.send("task", {})
        assert inner.sent == [("array", {"key": 0})]

    def test_seeded_loss_is_reproducible(self):
        def failure_point(seed):
            flaky = FlakyFrameStream(
                FakeStream(), drop_rate=0.3, seed=seed
            )
            for i in range(1000):
                try:
                    flaky.send("m")
                except ConnectionError:
                    return i
            return None

        first = failure_point(7)
        assert first is not None
        assert failure_point(7) == first
        assert failure_point(8) != first  # and the seed matters

    def test_rejects_bad_drop_rate(self):
        with pytest.raises(ConfigurationError):
            FlakyFrameStream(FakeStream(), drop_rate=1.5)


class TestWorkerDeathTrigger:
    class WorkerStub:
        def __init__(self):
            self.tasks = 0
            self.dropped = 0

        def run_task(self, *args, **kwargs):
            self.tasks += 1
            return "ok"

        def _drop(self):
            self.dropped += 1

    def test_dies_after_armed_count(self):
        worker = self.WorkerStub()
        trigger = WorkerDeathTrigger(worker, after_tasks=2)
        assert worker.run_task() == "ok"
        assert worker.run_task() == "ok"
        with pytest.raises(ConnectionError, match="worker death"):
            worker.run_task()
        assert worker.dropped == 1
        assert trigger.deaths == 1
        assert trigger.tasks_passed == 2
        # One-shot: the wrapper passes through after firing.
        assert worker.run_task() == "ok"

    def test_rearm_and_disarm(self):
        worker = self.WorkerStub()
        trigger = WorkerDeathTrigger(worker, after_tasks=0)
        with pytest.raises(ConnectionError):
            worker.run_task()
        trigger.arm(0)
        trigger.disarm()
        assert worker.run_task() == "ok"
        trigger.arm(0)
        with pytest.raises(ConnectionError):
            worker.run_task()
        assert trigger.deaths == 2

    def test_cancel_restores_original(self):
        worker = self.WorkerStub()
        original = worker.run_task
        trigger = WorkerDeathTrigger(worker, after_tasks=0)
        trigger.cancel()
        assert worker.run_task == original
        assert worker.run_task() == "ok"
        assert worker.dropped == 0

    def test_rejects_negative_arm(self):
        with pytest.raises(ConfigurationError):
            WorkerDeathTrigger(self.WorkerStub(), after_tasks=-1)
