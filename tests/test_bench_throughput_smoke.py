"""Smoke test: the throughput benchmark script must keep running.

Runs :func:`run_throughput_benchmark` on a small workload and checks the
document structure the full 24 h run commits to ``BENCH_throughput.json``.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

BENCHMARKS = pathlib.Path(__file__).parent.parent / "benchmarks"


def _load_module():
    spec = importlib.util.spec_from_file_location(
        "bench_throughput", BENCHMARKS / "bench_throughput.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_throughput", module)
    spec.loader.exec_module(module)
    return module


def test_throughput_benchmark_smoke(tmp_path):
    bench = _load_module()
    document = bench.run_throughput_benchmark(duration_hours=0.2, repeats=1)
    assert document["workload"]["n_windows"] >= 3
    systems = document["systems"]
    assert set(systems) == {
        "conventional_split_radix",
        "quality_scalable_wavelet_mode3",
    }
    for entry in systems.values():
        assert entry["sequential_windows_per_sec"] > 0
        assert entry["batched_windows_per_sec"] > 0
        assert entry["speedup"] > 0
        # the batched path must agree with the sequential oracle
        assert entry["max_rel_diff_spectrogram"] < 1e-6
        # the provider sweep: explicit is always swept and is its own
        # 1.0x baseline; every provider must be allclose to the oracle
        # with identical modelled op counts
        sweep = entry["providers"]
        per_provider = sweep["per_provider"]
        assert "explicit" in per_provider
        assert per_provider["explicit"]["speedup_vs_explicit"] == 1.0
        assert sweep["best_provider"] in per_provider
        assert sweep["best_speedup_vs_explicit"] >= 1.0
        for provider_entry in per_provider.values():
            assert provider_entry["allclose_vs_oracle"] is True
            assert provider_entry["opcounts_match_oracle"] is True
            assert provider_entry["windows_per_sec"] > 0
        alloc = entry["steady_state_alloc"]
        assert alloc["arena_alloc_bytes_per_window"] >= 0
        assert alloc["no_arena_alloc_bytes_per_window"] > 0
        # The arena must cut batched-analysis allocation churn.
        assert alloc["alloc_reduction_factor"] > 1.0
    # document must round-trip through JSON (what main() writes)
    out = tmp_path / "BENCH_throughput.json"
    out.write_text(json.dumps(document, indent=2))
    assert json.loads(out.read_text()) == document


def test_throughput_benchmark_main_writes_json(tmp_path, capsys):
    bench = _load_module()
    out = tmp_path / "bench.json"
    bench.main(["--hours", "0.2", "--repeats", "1", "--output", str(out)])
    document = json.loads(out.read_text())
    assert document["workload"]["duration_hours"] == 0.2
    assert "windows/s" in capsys.readouterr().out
