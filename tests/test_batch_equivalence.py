"""Batched execution must match the sequential oracle exactly.

The batched windowed-PSA engine (``transform_batch`` on the FFT
backends, ``FastLomb.periodogram_batch``, ``WelchLomb.analyze(batched=
True)``) is required to reproduce the sequential per-window path:
``np.allclose`` on every spectrum and **exact equality** on executed
operation counts, across all pruning modes, ragged window sizes and both
Fast-Lomb scalings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SignalError
from repro.ffts import PruningSpec, SplitRadixFFT, WaveletFFT, split_radix_fft_batch
from repro.lomb import FastLomb, WelchLomb, extirpolate, extirpolate_batch

PRUNING_MODES = {
    "exact": PruningSpec.none(),
    "band-drop": PruningSpec.band_only(),
    "static-twiddle": PruningSpec(twiddle_fraction=0.4),
    "paper-mode2": PruningSpec.paper_mode(2),
    "dynamic-twiddle": PruningSpec(twiddle_fraction=0.3, dynamic=True),
    "paper-mode3-dynamic": PruningSpec.paper_mode(3, dynamic=True),
}


def _rr_series(rng, minutes=2.0, hf_amp=0.05, lf_amp=0.02, mean_rr=0.85):
    """Synthetic RR tachogram with LF (0.1 Hz) and HF (0.25 Hz) tones."""
    n = int(minutes * 60.0 / mean_rr) + 8
    beat_clock = np.cumsum(np.full(n, mean_rr))
    rr = (
        mean_rr
        + lf_amp * np.sin(2 * np.pi * 0.1 * beat_clock)
        + hf_amp * np.sin(2 * np.pi * 0.25 * beat_clock)
        + 0.003 * rng.standard_normal(n)
    )
    times = np.cumsum(rr)
    return times - times[0], rr


def _ragged_windows(rng, n_windows=7):
    """Windows of deliberately different durations and beat counts."""
    windows = []
    for i in range(n_windows):
        minutes = 1.5 + 0.25 * (i % 3)
        t, x = _rr_series(rng, minutes=minutes, mean_rr=0.7 + 0.05 * (i % 4))
        windows.append((t, x))
    return windows


class TestBackendBatchEquivalence:
    @pytest.mark.parametrize("use_numpy", [True, False])
    def test_split_radix_batch_matches_rows(self, rng, use_numpy):
        backend = SplitRadixFFT(64, use_numpy=use_numpy)
        x = rng.standard_normal((9, 64)) + 1j * rng.standard_normal((9, 64))
        batch, counts = backend.transform_batch_with_counts(x)
        assert len(counts) == 9
        for i in range(9):
            row, row_counts = backend.transform_with_counts(x[i])
            np.testing.assert_allclose(batch[i], row, rtol=1e-12, atol=1e-12)
            assert counts[i] == row_counts

    def test_split_radix_fft_batch_matches_numpy(self, rng):
        x = rng.standard_normal((5, 128)) + 1j * rng.standard_normal((5, 128))
        np.testing.assert_allclose(
            split_radix_fft_batch(x), np.fft.fft(x, axis=1), atol=1e-9
        )

    def test_split_radix_fft_batch_validates_like_sequential(self, rng):
        bad = rng.standard_normal((3, 32)).astype(complex)
        bad[1, 4] = np.nan
        with pytest.raises(SignalError):
            split_radix_fft_batch(bad)
        with pytest.raises(SignalError):
            split_radix_fft_batch(np.zeros(32, dtype=complex))

    @pytest.mark.parametrize("mode", sorted(PRUNING_MODES))
    @pytest.mark.parametrize("sub_backend", ["numpy", "split-radix"])
    def test_wavelet_batch_matches_rows(self, rng, mode, sub_backend):
        plan = WaveletFFT(
            64, pruning=PRUNING_MODES[mode], sub_backend=sub_backend
        )
        x = rng.standard_normal((8, 64)) + 1j * rng.standard_normal((8, 64))
        batch, counts = plan.transform_batch_with_counts(x)
        assert len(counts) == 8
        for i in range(8):
            row, row_counts = plan.transform_with_counts(x[i])
            np.testing.assert_allclose(batch[i], row, rtol=1e-12, atol=1e-12)
            assert counts[i] == row_counts, mode

    def test_wavelet_batch_multilevel(self, rng):
        plan = WaveletFFT(64, levels=2, pruning=PruningSpec.paper_mode(1))
        x = rng.standard_normal((4, 64)) + 1j * rng.standard_normal((4, 64))
        batch = plan.transform_batch(x)
        for i in range(4):
            np.testing.assert_allclose(
                batch[i], plan.transform(x[i]), rtol=1e-12, atol=1e-12
            )

    def test_batch_rejects_wrong_width(self, rng):
        plan = WaveletFFT(64)
        with pytest.raises(SignalError):
            plan.transform_batch(np.zeros((3, 32), dtype=complex))
        with pytest.raises(SignalError):
            SplitRadixFFT(64).transform_batch(np.zeros(64, dtype=complex))


class TestExtirpolateBatch:
    def test_rows_match_sequential_exactly(self, rng):
        rows, width, size = 6, 40, 128
        pos = rng.uniform(0, size, (rows, width))
        pos[1, 5:9] = np.floor(pos[1, 5:9])  # mix in exact cells
        vals = rng.standard_normal((rows, width))
        batch = extirpolate_batch(vals, pos, size)
        for i in range(rows):
            np.testing.assert_array_equal(
                batch[i], extirpolate(vals[i], pos[i], size)
            )

    def test_ragged_lengths_ignore_padding(self, rng):
        rows, width, size = 5, 30, 64
        lengths = np.array([30, 12, 25, 4, 18])
        pos = rng.uniform(0, size, (rows, width))
        vals = rng.standard_normal((rows, width))
        # garbage beyond each row's length must not leak through
        pos[0, :] = pos[0, :]
        batch = extirpolate_batch(vals, pos, size, lengths=lengths)
        for i, k in enumerate(lengths):
            np.testing.assert_array_equal(
                batch[i], extirpolate(vals[i, :k], pos[i, :k], size)
            )

    def test_invalid_inputs(self, rng):
        with pytest.raises(SignalError):
            extirpolate_batch(np.zeros((2, 4)), np.full((2, 4), 99.0), 32)
        with pytest.raises(SignalError):
            extirpolate_batch(np.zeros(4), np.zeros(4), 32)
        with pytest.raises(SignalError):
            extirpolate_batch(
                np.zeros((2, 4)), np.zeros((2, 4)), 32, lengths=np.array([5, 1])
            )


class TestFastLombBatch:
    @pytest.mark.parametrize("scaling", ["standard", "denormalized"])
    @pytest.mark.parametrize("mode", sorted(PRUNING_MODES))
    def test_ragged_windows_match_sequential(self, rng, scaling, mode):
        engine = FastLomb(
            backend=WaveletFFT(512, pruning=PRUNING_MODES[mode]),
            max_frequency=0.4,
            scaling=scaling,
        )
        windows = _ragged_windows(rng)
        batch = engine.periodogram_batch(windows, count_ops=True)
        assert len(batch) == len(windows)
        for (t, x), spectrum in zip(windows, batch):
            oracle = engine.periodogram(t, x, count_ops=True)
            np.testing.assert_array_equal(
                spectrum.frequencies, oracle.frequencies
            )
            np.testing.assert_allclose(
                spectrum.power, oracle.power, rtol=1e-9, atol=1e-12
            )
            assert spectrum.counts == oracle.counts
            assert spectrum.n_samples == oracle.n_samples
            assert np.isclose(spectrum.variance, oracle.variance, rtol=1e-12)

    def test_split_radix_backend(self, rng):
        engine = FastLomb(backend=SplitRadixFFT(512), max_frequency=0.4)
        windows = _ragged_windows(rng, n_windows=4)
        batch = engine.periodogram_batch(windows, count_ops=True)
        for (t, x), spectrum in zip(windows, batch):
            oracle = engine.periodogram(t, x, count_ops=True)
            np.testing.assert_allclose(spectrum.power, oracle.power, rtol=1e-9)
            assert spectrum.counts == oracle.counts

    def test_sequential_fallback_without_transform_batch(self, rng):
        class MinimalBackend:
            """Implements only the sequential protocol methods."""

            def __init__(self, n):
                self.n = n
                self._inner = SplitRadixFFT(n)

            def transform(self, x):
                return self._inner.transform(x)

            def transform_with_counts(self, x):
                return self._inner.transform_with_counts(x)

            def static_counts(self):
                return self._inner.static_counts()

        engine = FastLomb(backend=MinimalBackend(512), max_frequency=0.4)
        windows = _ragged_windows(rng, n_windows=3)
        batch = engine.periodogram_batch(windows)
        for (t, x), spectrum in zip(windows, batch):
            oracle = engine.periodogram(t, x)
            np.testing.assert_allclose(spectrum.power, oracle.power, rtol=1e-12)

    def test_count_ops_fallback_without_batch_counts(self, rng):
        class BatchOnlyBackend:
            """Implements transform_batch but not the counting variant."""

            def __init__(self, n):
                self.n = n
                self._inner = SplitRadixFFT(n)

            def transform(self, x):
                return self._inner.transform(x)

            def transform_with_counts(self, x):
                return self._inner.transform_with_counts(x)

            def static_counts(self):
                return self._inner.static_counts()

            def transform_batch(self, x):
                return self._inner.transform_batch(x)

        engine = FastLomb(backend=BatchOnlyBackend(512), max_frequency=0.4)
        windows = _ragged_windows(rng, n_windows=3)
        batch = engine.periodogram_batch(windows, count_ops=True)
        for (t, x), spectrum in zip(windows, batch):
            oracle = engine.periodogram(t, x, count_ops=True)
            np.testing.assert_allclose(spectrum.power, oracle.power, rtol=1e-12)
            assert spectrum.counts == oracle.counts

    def test_empty_batch(self):
        assert FastLomb().periodogram_batch([]) == []

    def test_batch_validation(self, rng):
        engine = FastLomb(max_frequency=0.4)
        t, x = _rr_series(rng)
        bad_t = t.copy()
        bad_t[3] = bad_t[2]  # not strictly increasing
        with pytest.raises(SignalError):
            engine.periodogram_batch([(bad_t, x)])
        with pytest.raises(SignalError):
            # exactly-representable constant -> exactly zero variance
            engine.periodogram_batch([(t, np.full_like(x, 1.0))])


class TestWelchBatchEquivalence:
    def _recording(self, rng, minutes=20.0):
        return _rr_series(rng, minutes=minutes)

    @pytest.mark.parametrize(
        "mode", ["exact", "paper-mode2", "paper-mode3-dynamic"]
    )
    def test_welch_matches_sequential(self, rng, mode):
        times, rr = self._recording(rng)
        analyzer = FastLomb(
            backend=WaveletFFT(512, pruning=PRUNING_MODES[mode]),
            max_frequency=0.4,
            scaling="denormalized",
        )
        welch = WelchLomb(analyzer)
        seq = welch.analyze(times, rr, count_ops=True, batched=False)
        bat = welch.analyze(times, rr, count_ops=True, batched=True)
        assert bat.n_windows == seq.n_windows
        assert bat.skipped_windows == seq.skipped_windows
        np.testing.assert_array_equal(bat.frequencies, seq.frequencies)
        np.testing.assert_allclose(
            bat.spectrogram, seq.spectrogram, rtol=1e-9, atol=1e-12
        )
        np.testing.assert_allclose(bat.averaged, seq.averaged, rtol=1e-9)
        np.testing.assert_allclose(bat.window_times, seq.window_times)
        assert bat.counts == seq.counts
        for b, s in zip(bat.window_spectra, seq.window_spectra):
            assert b.counts == s.counts

    def test_welch_split_radix_matches_sequential(self, rng):
        times, rr = self._recording(rng, minutes=12.0)
        welch = WelchLomb(FastLomb(max_frequency=0.4, scaling="denormalized"))
        seq = welch.analyze(times, rr, count_ops=True, batched=False)
        bat = welch.analyze(times, rr, count_ops=True, batched=True)
        np.testing.assert_allclose(
            bat.spectrogram, seq.spectrogram, rtol=1e-9, atol=1e-12
        )
        assert bat.counts == seq.counts

    def test_default_analyze_is_batched_and_consistent(self, rng):
        times, rr = self._recording(rng, minutes=12.0)
        welch = WelchLomb(FastLomb(max_frequency=0.4, scaling="denormalized"))
        default = welch.analyze(times, rr)
        seq = welch.analyze(times, rr, batched=False)
        np.testing.assert_allclose(
            default.spectrogram, seq.spectrogram, rtol=1e-9, atol=1e-12
        )
