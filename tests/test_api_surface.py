"""The public API surface stays pinned to the committed snapshot.

``tools/api_surface.txt`` is the compatibility contract of the PR 4
facade redesign: the names ``repro`` and ``repro.engine`` export, and
the parameter lists of their public callables.  A future PR that wants
to change the surface must regenerate the snapshot
(``python tools/check_public_api.py --update``) so the API change shows
up as an explicit diff — it cannot drift silently.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_public_api", REPO_ROOT / "tools" / "check_public_api.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestApiSurface:
    def test_snapshot_exists(self):
        assert (REPO_ROOT / "tools" / "api_surface.txt").exists(), (
            "tools/api_surface.txt is missing; run "
            "`python tools/check_public_api.py --update`"
        )

    def test_surface_matches_snapshot(self):
        checker = _load_checker()
        committed = checker.SNAPSHOT_PATH.read_text(
            encoding="utf-8"
        ).splitlines()
        current = checker.snapshot_lines()
        assert current == committed, (
            "public API surface drifted from tools/api_surface.txt; "
            "if intentional, run `python tools/check_public_api.py "
            "--update` and commit the diff"
        )

    def test_checker_cli_passes(self, capsys):
        checker = _load_checker()
        assert checker.main([]) == 0
        assert "matches" in capsys.readouterr().out

    def test_facade_names_are_pinned(self):
        """The redesigned entry points are part of the contract."""
        lines = (REPO_ROOT / "tools" / "api_surface.txt").read_text(
            encoding="utf-8"
        )
        for needle in (
            "repro.Engine(",
            "repro.EngineConfig(",
            "repro.StreamingSession(",
            "repro.engine.build_system(config)",
        ):
            assert needle in lines
