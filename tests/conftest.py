"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: spawns worker processes or runs benchmark workloads; "
        "deselect on constrained runners with -m 'not slow'",
    )


@pytest.fixture(autouse=True, scope="session")
def _isolated_cache_dir(tmp_path_factory):
    """Point the persistent autoselect cache at a per-run temp dir.

    Keeps the suite hermetic: no test run reads another run's (or the
    developer's) measured provider choices, and nothing is written under
    the real ``~/.cache``.
    """
    import os

    path = tmp_path_factory.mktemp("repro-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(path)
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(autouse=True)
def _reset_fft_provider_pin():
    """Clear any process-wide FFT-provider pin a test leaves behind.

    The autoselect memo is deliberately kept — it is deterministic per
    process and clearing it would re-run the timing probe per test.
    """
    yield
    from repro.ffts.providers.registry import set_default_provider

    set_default_provider(None)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(0xDA7E2014)


@pytest.fixture(params=["haar", "db2", "db4"])
def paper_basis(request) -> str:
    """Parametrize over the three wavelet bases evaluated in the paper."""
    return request.param
