"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: spawns worker processes or runs benchmark workloads; "
        "deselect on constrained runners with -m 'not slow'",
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(0xDA7E2014)


@pytest.fixture(params=["haar", "db2", "db4"])
def paper_basis(request) -> str:
    """Parametrize over the three wavelet bases evaluated in the paper."""
    return request.param
