"""The ingestion layer's bit-identity contract, end to end.

The tentpole invariant under test: an ECG record replayed
frame-by-frame through :class:`~repro.ingest.ECGSource` (streaming QRS
detection + incremental artifact preprocessing) and fed into any
execution layer finalizes **bit-identical** — spectrogram,
:class:`OpCounts`, per-window time-domain metrics and quality flags —
to the one-shot batch path (:func:`~repro.ingest.ecg_record_to_rr`
followed by :meth:`Engine.analyze`).  The matrix spans both PSA
systems, every pruning mode, and the in-process / shm-pool / socket /
gateway transports.

Alongside the matrix live the satellite suites: preprocessing edge
cases (empty pushes, all-ectopic stretches, boundary artifacts,
monotone time axes) and source-level validation (unsorted/duplicate
beats rejected with :class:`ValidationError`).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecg import make_cohort, synthesize_ecg
from repro.engine import Engine, EngineConfig
from repro.errors import SignalError, ValidationError
from repro.fleet import WorkerDaemon
from repro.hrv.metrics import (
    FLAG_HIGH_CORRECTED,
    WindowMetrics,
)
from repro.hrv.preprocessing import StreamingPreprocessor, filter_artifacts
from repro.hrv.rr import RRSeries
from repro.ingest import (
    BeatTimesSource,
    ECGSource,
    RREvent,
    TachogramSource,
    ecg_frames,
    ecg_record_to_rr,
)

SAMPLING_RATE = 250.0

_MODES = ("exact", "band", "set1", "set2", "set3")


# ----------------------------------------------------------------------
# Shared fixtures: one rendered ECG record + its batch reference
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def ecg_record():
    """A rendered ECG trace of one synthetic patient (~5 minutes)."""
    patient = list(make_cohort())[0]
    rr = patient.rr_series(duration=300.0)
    t, ecg = synthesize_ecg(rr.times, sampling_rate=SAMPLING_RATE, seed=3)
    return t, ecg


@pytest.fixture(scope="module")
def batch_rr(ecg_record) -> RRSeries:
    """Whole-record detection + cleaning: the batch reference."""
    t, ecg = ecg_record
    return ecg_record_to_rr(t, ecg, sampling_rate=SAMPLING_RATE)


def _stream_events(ecg_record, frame_samples: int = 512):
    t, ecg = ecg_record
    source = ECGSource(
        "subject-1",
        ecg_frames(t, ecg, frame_samples=frame_samples),
        sampling_rate=SAMPLING_RATE,
    )
    return list(source)


def _assert_results_identical(streamed, reference):
    """Bitwise equality of two PSAResults, quality surface included."""
    np.testing.assert_array_equal(
        streamed.welch.spectrogram, reference.welch.spectrogram
    )
    np.testing.assert_array_equal(
        streamed.welch.frequencies, reference.welch.frequencies
    )
    np.testing.assert_array_equal(
        streamed.welch.window_times, reference.welch.window_times
    )
    assert streamed.counts == reference.counts
    assert streamed.lf_hf == reference.lf_hf
    assert streamed.window_metrics == reference.window_metrics
    assert streamed.detection.is_arrhythmia == reference.detection.is_arrhythmia


def _run_hub(config: EngineConfig, events, batch_rr) -> tuple:
    """Feed events through a hub under *config*; return (streamed, ref)."""
    with Engine(config) as engine:
        hub = engine.open_hub(count_ops=True)
        for subject, times, values, corrected in events:
            hub.feed(subject, times, values, corrected)
        streamed = hub.finalize("subject-1")
        reference = engine.analyze(batch_rr, count_ops=True)
    return streamed, reference


# ----------------------------------------------------------------------
# The bit-identity matrix
# ----------------------------------------------------------------------


class TestBitIdentityMatrix:
    @pytest.mark.parametrize("mode", _MODES)
    def test_all_modes_in_process(self, ecg_record, batch_rr, mode):
        """Both PSA systems, every pruning mode: stream == batch."""
        events = _stream_events(ecg_record)
        streamed, reference = _run_hub(
            EngineConfig.for_mode(mode, jobs=1), events, batch_rr
        )
        _assert_results_identical(streamed, reference)
        # The quality surface is populated, not vestigial.
        assert len(streamed.window_metrics) == streamed.welch.n_windows
        assert all(
            isinstance(m, WindowMetrics) for m in streamed.window_metrics
        )

    def test_frame_size_invariance(self, ecg_record, batch_rr):
        """Any uplink framing produces the same cleaned RR events."""
        reference = None
        for frame_samples in (128, 512, 4096):
            events = _stream_events(ecg_record, frame_samples=frame_samples)
            t = np.concatenate([e.times for e in events])
            rr = np.concatenate([e.values for e in events])
            corrected = np.concatenate([e.corrected for e in events])
            if reference is None:
                reference = (t, rr, corrected)
            else:
                np.testing.assert_array_equal(t, reference[0])
                np.testing.assert_array_equal(rr, reference[1])
                np.testing.assert_array_equal(corrected, reference[2])
        np.testing.assert_array_equal(reference[0], batch_rr.times)
        np.testing.assert_array_equal(reference[1], batch_rr.intervals)
        np.testing.assert_array_equal(reference[2], batch_rr.corrected)

    @pytest.mark.slow
    def test_shm_pool_transport(self, ecg_record, batch_rr):
        events = _stream_events(ecg_record)
        streamed, reference = _run_hub(
            EngineConfig.for_mode("set3", jobs=2), events, batch_rr
        )
        _assert_results_identical(streamed, reference)

    @pytest.mark.slow
    def test_socket_transport(self, ecg_record, batch_rr):
        events = _stream_events(ecg_record)
        with WorkerDaemon() as daemon:
            daemon.start()
            streamed, reference = _run_hub(
                EngineConfig.for_mode(
                    "set3", jobs=1, workers=(daemon.address,)
                ),
                events,
                batch_rr,
            )
        _assert_results_identical(streamed, reference)

    @pytest.mark.slow
    def test_gateway_transport(self, ecg_record, batch_rr):
        from repro.service import GatewayThread, ServiceClient, ServiceConfig
        from repro.service.wire import result_to_dict

        events = _stream_events(ecg_record)
        with GatewayThread(
            ServiceConfig(listen="127.0.0.1:0", count_ops=True)
        ) as gateway:
            with ServiceClient(gateway.address) as client:
                client.open("subject-1")
                for subject, times, values, corrected in events:
                    client.feed(
                        times, values, np.asarray(corrected, dtype=float)
                    )
                result = client.finalize()
        # The gateway's default tenant runs EngineConfig(): compare
        # against the same config's in-process batch analysis, in the
        # wire's own (bit-exact) JSON form.
        with Engine(EngineConfig()) as engine:
            reference = result_to_dict(engine.analyze(batch_rr, count_ops=True))
        payload = {
            key: value
            for key, value in result.items()
            if key not in ("op", "subject")
        }
        assert payload == reference
        # Quality metrics crossed the wire with every window.
        assert len(payload["window_metrics"]) == payload["n_windows"]

    def test_corrected_beats_flag_windows(self):
        """Perturbed beats get corrected and the flags match batch."""
        patient = list(make_cohort())[1]
        rr = patient.rr_series(duration=300.0)
        beats = np.concatenate([[rr.times[0] - rr.intervals[0]], rr.times])
        # Shove a cluster of beats off their grid — classic ectopics.
        beats = beats.copy()
        for k in range(40, 56, 3):
            beats[k] += 0.22
        raw = RRSeries.from_beat_times(beats)
        reference_rr = filter_artifacts(raw).series
        assert np.count_nonzero(reference_rr.corrected) > 0

        source = BeatTimesSource("subject-1", beats, chunk_beats=17)
        events = list(source)
        config = EngineConfig.for_mode("set3", jobs=1)
        with Engine(config) as engine:
            hub = engine.open_hub(count_ops=True)
            for subject, times, values, corrected in events:
                hub.feed(subject, times, values, corrected)
            streamed = hub.finalize("subject-1")
            reference = engine.analyze(reference_rr, count_ops=True)
        _assert_results_identical(streamed, reference)
        fractions = [m.corrected_fraction for m in streamed.window_metrics]
        assert max(fractions) > 0.0
        assert any(
            m.flags & FLAG_HIGH_CORRECTED
            for m in streamed.window_metrics
            if m.corrected_fraction > 0.05
        ) or all(f <= 0.05 for f in fractions)


# ----------------------------------------------------------------------
# Sources
# ----------------------------------------------------------------------


class TestSources:
    def test_tachogram_source_round_trip(self):
        rr = list(make_cohort())[0].rr_series(duration=200.0)
        events = list(TachogramSource("s", rr, chunk_beats=32))
        np.testing.assert_array_equal(
            np.concatenate([e.times for e in events]), rr.times
        )
        np.testing.assert_array_equal(
            np.concatenate([e.values for e in events]), rr.intervals
        )
        assert all(isinstance(e, RREvent) for e in events)
        assert all(e.subject == "s" for e in events)

    def test_tachogram_source_carries_corrected(self):
        rr = list(make_cohort())[0].rr_series(duration=200.0)
        mask = np.zeros(rr.times.size, dtype=bool)
        mask[5] = True
        series = rr.with_corrected(mask)
        events = list(TachogramSource("s", series, chunk_beats=64))
        np.testing.assert_array_equal(
            np.concatenate([e.corrected for e in events]), mask
        )

    def test_beat_times_source_rejects_unsorted(self):
        with pytest.raises(ValidationError, match="not sorted"):
            BeatTimesSource("s", [0.0, 1.0, 0.5, 2.0])

    def test_beat_times_source_rejects_duplicates(self):
        with pytest.raises(ValidationError, match="duplicates"):
            BeatTimesSource("s", [0.0, 1.0, 1.0, 2.0])

    def test_beat_times_chunking_invariance(self):
        rr = list(make_cohort())[2].rr_series(duration=240.0)
        beats = np.concatenate([[rr.times[0] - rr.intervals[0]], rr.times])
        reference = None
        for chunk in (1, 7, 64, 10_000):
            events = list(BeatTimesSource("s", beats, chunk_beats=chunk))
            t = np.concatenate([e.times for e in events])
            v = np.concatenate([e.values for e in events])
            c = np.concatenate([e.corrected for e in events])
            if reference is None:
                reference = (t, v, c)
            else:
                np.testing.assert_array_equal(t, reference[0])
                np.testing.assert_array_equal(v, reference[1])
                np.testing.assert_array_equal(c, reference[2])
        # and the concatenation equals the batch path
        batch = filter_artifacts(RRSeries.from_beat_times(beats)).series
        np.testing.assert_array_equal(reference[0], batch.times)
        np.testing.assert_array_equal(reference[1], batch.intervals)
        np.testing.assert_array_equal(reference[2], batch.corrected)

    def test_rr_series_from_beat_times_validation(self):
        with pytest.raises(ValidationError, match="not sorted"):
            RRSeries.from_beat_times([0.0, 2.0, 1.0])
        with pytest.raises(ValidationError, match="duplicates"):
            RRSeries.from_beat_times([0.0, 1.0, 1.0])


# ----------------------------------------------------------------------
# Preprocessing edge cases (satellite)
# ----------------------------------------------------------------------


def _steady_rr(n: int, value: float = 0.8):
    intervals = np.full(n, value)
    times = np.cumsum(intervals)
    return times, intervals


class TestPreprocessingEdges:
    def test_empty_push_yields_nothing(self):
        pre = StreamingPreprocessor(window=5)
        t, rr, c = pre.push(np.empty(0), np.empty(0))
        assert t.size == rr.size == c.size == 0

    def test_finalize_empty_record_rejected(self):
        pre = StreamingPreprocessor(window=5)
        with pytest.raises(SignalError, match="shorter than window"):
            pre.finalize()

    def test_record_shorter_than_window_rejected_both_paths(self):
        times, intervals = _steady_rr(4)
        with pytest.raises(SignalError, match="shorter than window"):
            filter_artifacts(RRSeries(times=times, intervals=intervals),
                             window=5)
        pre = StreamingPreprocessor(window=5)
        pre.push(times, intervals)
        with pytest.raises(SignalError, match="shorter than window"):
            pre.finalize()

    def test_all_ectopic_stretch_rejected_both_paths(self):
        times, intervals = _steady_rr(40)
        intervals = intervals.copy()
        intervals[1:40:3] = 1.6  # isolated spikes: 13/40 off-median
        series = RRSeries(times=times, intervals=intervals)
        with pytest.raises(SignalError, match="rejected"):
            filter_artifacts(series, window=5, max_fraction=0.3)
        pre = StreamingPreprocessor(window=5, max_fraction=0.3)
        pre.push(times, intervals)
        with pytest.raises(SignalError, match="rejected"):
            pre.finalize()

    def test_boundary_artifacts_match_batch(self):
        times, intervals = _steady_rr(60)
        intervals = intervals.copy()
        intervals[0] = 1.4    # artifact at the very first interval
        intervals[-1] = 0.3   # and at the very last
        series = RRSeries(times=times, intervals=intervals)
        report = filter_artifacts(series, window=7)
        assert report.series.corrected[0]
        assert report.series.corrected[-1]

        pre = StreamingPreprocessor(window=7)
        outs = [pre.push(times[:13], intervals[:13]),
                pre.push(times[13:], intervals[13:])]
        outs.append(pre.finalize())
        cleaned = np.concatenate([o[1] for o in outs])
        mask = np.concatenate([o[2] for o in outs])
        np.testing.assert_array_equal(cleaned, report.series.intervals)
        np.testing.assert_array_equal(mask, report.series.corrected)

    def test_interpolation_preserves_monotone_times(self):
        rng = np.random.default_rng(11)
        intervals = 0.8 + 0.02 * rng.standard_normal(120)
        intervals[30] = 1.5
        intervals[70] = 0.2
        times = np.cumsum(intervals)
        series = RRSeries(times=times, intervals=intervals)
        report = filter_artifacts(series, window=9)
        # Replacement keeps the time axis: strictly increasing, intact.
        np.testing.assert_array_equal(report.series.times, times)
        assert np.all(np.diff(report.series.times) > 0)
        assert np.all(report.series.intervals > 0)
        assert report.fraction_corrected > 0

    def test_push_after_finalize_rejected(self):
        times, intervals = _steady_rr(20)
        pre = StreamingPreprocessor(window=5)
        pre.push(times, intervals)
        pre.finalize()
        with pytest.raises(SignalError, match="finalized"):
            pre.push(times, intervals)
        with pytest.raises(SignalError, match="finalized"):
            pre.finalize()
