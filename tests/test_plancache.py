"""Plan-cache regression tests.

A cached plan must be indistinguishable from a freshly built one —
identical spectra, identical operation counts — and the memoised
design-time tables must match their from-scratch definitions.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.ffts import (
    PruningSpec,
    SplitRadixFFT,
    WaveletFFT,
    bit_reverse_permutation,
    plan_cache_stats,
    radix2_fft,
    split_radix_plan,
    wavelet_fft,
    wavelet_plan,
)
from repro.ffts.plancache import (
    bit_reversal,
    lagrange_denominators,
    split_radix_twiddles,
    twiddle_pair,
)
from repro.lomb import FastLomb, extirpolation_weights
from repro.wavelets import get_filter
from repro.wavelets import freq as wavelet_freq


class TestDesignTables:
    def test_bit_reversal_memoised_and_correct(self):
        perm_a = bit_reverse_permutation(32)
        perm_b = bit_reverse_permutation(32)
        assert perm_a is perm_b  # shared cache entry
        assert not perm_a.flags.writeable
        # definition check: reversing the 5-bit binary representation
        expected = [int(f"{i:05b}"[::-1], 2) for i in range(32)]
        np.testing.assert_array_equal(perm_a, expected)

    def test_radix2_uses_cached_tables(self, rng):
        x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        np.testing.assert_allclose(radix2_fft(x), np.fft.fft(x), atol=1e-9)

    def test_split_radix_twiddles_match_definition(self):
        w1, w3 = split_radix_twiddles(64)
        k = np.arange(16)
        np.testing.assert_allclose(w1, np.exp(-2j * np.pi * k / 64), atol=1e-15)
        np.testing.assert_allclose(w3, np.exp(-6j * np.pi * k / 64), atol=1e-15)
        assert split_radix_twiddles(64)[0] is w1

    def test_lagrange_denominators_match_factorials(self):
        for order in (2, 3, 4, 7):
            cached = lagrange_denominators(order)
            expected = [
                ((-1.0) ** (order - 1 - c))
                * math.factorial(c)
                * math.factorial(order - 1 - c)
                for c in range(order)
            ]
            np.testing.assert_array_equal(cached, expected)
            assert lagrange_denominators(order) is cached

    def test_extirpolation_weights_use_cached_denominators(self):
        cells, weights = extirpolation_weights(7.3, 64)
        assert np.isclose(weights.sum(), 1.0, rtol=1e-12)
        assert cells.size == weights.size == 4

    def test_twiddle_pair_matches_uncached_responses(self):
        bank = get_filter("db2")
        hl, hh = twiddle_pair(32, bank)
        ref_hl, ref_hh = wavelet_freq.twiddle_pair(32, bank)
        np.testing.assert_allclose(hl, ref_hl, atol=1e-15)
        np.testing.assert_allclose(hh, ref_hh, atol=1e-15)
        assert twiddle_pair(32, bank)[0] is hl


class TestPlanCaches:
    @pytest.mark.parametrize(
        "pruning",
        [
            None,
            PruningSpec.band_only(),
            PruningSpec.paper_mode(3),
            PruningSpec.paper_mode(2, dynamic=True),
        ],
    )
    def test_cached_wavelet_plan_matches_fresh_plan(self, rng, pruning):
        cached = wavelet_plan(128, pruning=pruning)
        fresh = WaveletFFT(128, pruning=pruning)
        x = rng.standard_normal(128) + 1j * rng.standard_normal(128)
        out_cached, counts_cached = cached.transform_with_counts(x)
        out_fresh, counts_fresh = fresh.transform_with_counts(x)
        np.testing.assert_array_equal(out_cached, out_fresh)
        assert counts_cached == counts_fresh
        assert cached.static_counts() == fresh.static_counts()

    def test_wavelet_plan_identity(self):
        a = wavelet_plan(64, pruning=PruningSpec.paper_mode(1))
        b = wavelet_plan(64, pruning=PruningSpec.paper_mode(1))
        assert a is b
        assert wavelet_plan(64, pruning=PruningSpec.paper_mode(2)) is not a
        assert wavelet_plan(64, basis="db2", pruning=PruningSpec.paper_mode(1)) is not a

    def test_calibrated_thresholds_are_not_cached(self, rng):
        """Data-derived dynamic thresholds must not grow the plan cache."""
        spec = PruningSpec.paper_mode(3, dynamic=True)
        before = plan_cache_stats()["wavelet_plans"]
        a = wavelet_plan(64, pruning=spec.with_dynamic_threshold(0.123))
        b = wavelet_plan(64, pruning=spec.with_dynamic_threshold(0.123))
        assert plan_cache_stats()["wavelet_plans"] == before
        assert a is not b  # built fresh, but numerically identical
        x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        np.testing.assert_array_equal(a.transform(x), b.transform(x))

    def test_split_radix_plan_identity_and_equivalence(self, rng):
        a = split_radix_plan(64)
        assert split_radix_plan(64) is a
        fresh = SplitRadixFFT(64)
        x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        np.testing.assert_array_equal(a.transform(x), fresh.transform(x))
        assert a.static_counts() == fresh.static_counts()

    def test_wavelet_fft_wrapper_uses_cache(self, rng):
        x = rng.standard_normal(64)
        before = plan_cache_stats()["wavelet_plans"]
        out1 = wavelet_fft(x)
        mid = plan_cache_stats()["wavelet_plans"]
        out2 = wavelet_fft(x)
        after = plan_cache_stats()["wavelet_plans"]
        assert mid >= before
        assert after == mid  # second call resolved from the cache
        np.testing.assert_array_equal(out1, out2)
        np.testing.assert_allclose(out1, np.fft.fft(x), atol=1e-8)

    def test_fastlomb_default_backend_is_shared(self):
        a = FastLomb(workspace_size=256)
        b = FastLomb(workspace_size=256)
        assert a.backend is b.backend

    def test_stats_shape(self):
        stats = plan_cache_stats()
        assert {
            "bit_reversal",
            "split_radix_twiddles",
            "lagrange_denominators",
            "twiddle_pairs",
            "keep_masks",
            "wavelet_plans",
            "split_radix_plans",
        } <= set(stats)
        assert all(v >= 0 for v in stats.values())

    def test_shared_plan_serves_systems(self):
        from repro.core.config import PSAConfig
        from repro.core.system import ConventionalPSA, QualityScalablePSA

        config = PSAConfig()
        conv_a = ConventionalPSA(config)
        conv_b = ConventionalPSA(config)
        assert conv_a.backend is conv_b.backend
        prop_a = QualityScalablePSA(config, pruning=PruningSpec.paper_mode(3))
        prop_b = QualityScalablePSA(config, pruning=PruningSpec.paper_mode(3))
        assert prop_a.backend is prop_b.backend


class TestBoundedCache:
    """The LRU layer under the plan caches: bounds, recency, pins."""

    def _make(self, maxsize=3):
        from repro.ffts.plancache import _BoundedCache

        return _BoundedCache(maxsize=maxsize)

    def test_get_put_roundtrip_and_counters(self):
        cache = self._make()
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction_order(self):
        cache = self._make(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a: b is now least recently used
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_pinned_entries_survive_pressure(self):
        cache = self._make(maxsize=1)
        cache.put("keep", 1)
        cache.pin("keep")
        for i in range(5):
            cache.put(f"junk{i}", i)
        assert cache.get("keep") == 1

    def test_pin_unknown_key_is_noop(self):
        cache = self._make()
        cache.pin("absent")
        assert cache.stats()["pinned"] == 0

    def test_pop_discards_pin(self):
        cache = self._make()
        cache.put("a", 1)
        cache.pin("a")
        assert cache.pop("a") == 1
        assert cache.stats()["pinned"] == 0

    def test_clear_empties_everything(self):
        cache = self._make()
        cache.put("a", 1)
        cache.pin("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["pinned"] == 0

    def test_detail_surface_shape(self):
        from repro.ffts.plancache import plan_cache_detail

        detail = plan_cache_detail()
        assert {
            "twiddle_pairs",
            "keep_masks",
            "wavelet_plans",
            "split_radix_plans",
            "provider_plans",
        } <= set(detail)
        for row in detail.values():
            assert {
                "size",
                "maxsize",
                "pinned",
                "hits",
                "misses",
                "evictions",
            } == set(row)

    def test_warm_pins_provider_plan(self):
        from repro.ffts.plancache import (
            _PROVIDER_PLANS,
            warm_execution_caches,
        )

        warm_execution_caches(64, provider="numpy")
        assert "numpy" in _PROVIDER_PLANS._pinned
