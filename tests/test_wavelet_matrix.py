"""Tests for the dense operator identities of paper Section IV.B."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TransformError
from repro.wavelets import (
    butterfly_block_matrix,
    dft_matrix,
    dwt_level,
    dwt_matrix,
    even_odd_permutation_matrix,
    packet_matrix,
    wavelet_packet,
)


class TestDwtMatrix:
    @pytest.mark.parametrize("n", [4, 8, 16, 32])
    def test_orthogonality(self, n, paper_basis):
        w = dwt_matrix(n, paper_basis)
        np.testing.assert_allclose(w @ w.T, np.eye(n), atol=1e-10)

    def test_matches_functional_dwt(self, paper_basis, rng):
        n = 32
        x = rng.standard_normal(n)
        w = dwt_matrix(n, paper_basis)
        approx, detail = dwt_level(x, paper_basis)
        np.testing.assert_allclose(w @ x, np.concatenate([approx, detail]),
                                   atol=1e-10)

    def test_haar_4x4_structure(self):
        w = dwt_matrix(4, "haar")
        s = 1.0 / np.sqrt(2.0)
        expected = np.array(
            [
                [s, s, 0, 0],
                [0, 0, s, s],
                [s, -s, 0, 0],
                [0, 0, s, -s],
            ]
        )
        np.testing.assert_allclose(w, expected, atol=1e-12)

    def test_non_power_of_two_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            dwt_matrix(12, "haar")


class TestDftPieces:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_dft_matrix_matches_numpy(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(dft_matrix(n) @ x, np.fft.fft(x), atol=1e-9)

    def test_even_odd_permutation(self):
        p = even_odd_permutation_matrix(8)
        x = np.arange(8.0)
        np.testing.assert_allclose(p @ x, [0, 2, 4, 6, 1, 3, 5, 7])

    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_radix2_factorization(self, n):
        """Paper eq. 5: F_N = [I D; I -D] diag(F_half, F_half) P_N."""
        half = n // 2
        d = np.diag(np.exp(-2j * np.pi * np.arange(half) / n))
        eye = np.eye(half)
        butterfly = np.block([[eye, d], [eye, -d]])
        f_half = dft_matrix(half)
        block = np.zeros((n, n), dtype=complex)
        block[:half, :half] = f_half
        block[half:, half:] = f_half
        reconstructed = butterfly @ block @ even_odd_permutation_matrix(n)
        np.testing.assert_allclose(reconstructed, dft_matrix(n), atol=1e-9)


class TestWaveletFactorization:
    """The central identity (paper eq. 6): F_N = [A B; C D] diag(F, F) W_N."""

    @pytest.mark.parametrize("n", [4, 8, 16, 32])
    def test_factorization_identity(self, n, paper_basis):
        half = n // 2
        block = np.zeros((n, n), dtype=complex)
        block[:half, :half] = dft_matrix(half)
        block[half:, half:] = dft_matrix(half)
        lhs = butterfly_block_matrix(n, paper_basis) @ block @ dwt_matrix(
            n, paper_basis
        )
        np.testing.assert_allclose(lhs, dft_matrix(n), atol=1e-8)

    @pytest.mark.parametrize("n", [8, 16])
    def test_factorization_applied_to_signal(self, n, paper_basis, rng):
        x = rng.standard_normal(n)
        approx, detail = dwt_level(x, paper_basis)
        sub = np.concatenate([np.fft.fft(approx), np.fft.fft(detail)])
        y = butterfly_block_matrix(n, paper_basis) @ sub
        np.testing.assert_allclose(y, np.fft.fft(x), atol=1e-9)

    def test_block_matrix_quadrants_are_diagonal(self):
        n = 16
        block = butterfly_block_matrix(n, "db2")
        half = n // 2
        for rows, cols in [(slice(0, half), slice(0, half)),
                           (slice(0, half), slice(half, n)),
                           (slice(half, n), slice(0, half)),
                           (slice(half, n), slice(half, n))]:
            quadrant = block[rows, cols]
            off_diag = quadrant - np.diag(np.diag(quadrant))
            np.testing.assert_allclose(off_diag, 0.0, atol=1e-12)


class TestPacketMatrix:
    @pytest.mark.parametrize("depth", [0, 1, 2, 3])
    def test_orthogonality(self, depth, paper_basis):
        n = 16
        p = packet_matrix(n, paper_basis, depth=depth)
        np.testing.assert_allclose(p @ p.T, np.eye(n), atol=1e-9)

    def test_depth_one_equals_dwt_matrix(self, paper_basis):
        np.testing.assert_allclose(
            packet_matrix(16, paper_basis, depth=1),
            dwt_matrix(16, paper_basis),
            atol=1e-12,
        )

    def test_matches_packet_table_leaves(self, paper_basis, rng):
        n = 16
        x = rng.standard_normal(n)
        table = wavelet_packet(x, paper_basis)
        leaves = table.levels[-1].ravel()
        np.testing.assert_allclose(
            packet_matrix(n, paper_basis) @ x, leaves, atol=1e-9
        )

    def test_invalid_depth_rejected(self):
        with pytest.raises(TransformError):
            packet_matrix(8, "haar", depth=4)
