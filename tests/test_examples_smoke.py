"""Smoke tests: the example scripts must run end to end."""

from __future__ import annotations

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart_runs(capsys):
    out = _run("quickstart.py", capsys)
    assert "ECG samples" in out
    assert "ingested:" in out
    assert "LF/HF" in out
    assert "SDNN" in out
    assert "energy savings" in out


def test_energy_budget_tuning_runs(capsys):
    out = _run("energy_budget_tuning.py", capsys)
    assert "Q_DES" in out
    assert "Pareto frontier" in out


def test_gateway_demo_runs(capsys):
    out = _run("gateway_demo.py", capsys)
    assert out.count("bit-identical") == 5
    assert "reconnected" in out
    assert "drained cleanly" in out


def test_ecg_ward_runs(capsys):
    out = _run("ecg_ward.py", capsys)
    assert out.count("bit-identical") == 3
    assert "beats corrected in flight" in out
    assert "high_corrected" in out
    assert "DIVERGED" not in out


def test_distributed_fleet_runs(capsys):
    out = _run("distributed_fleet.py", capsys)
    assert out.count("bit-identical") == 4
    assert "2 remote daemon(s)" in out
    assert "shut down cleanly" in out


@pytest.mark.parametrize(
    "name",
    [
        "arrhythmia_screening.py",
        "holter_monitoring.py",
        "ward_monitoring.py",
    ],
)
def test_long_examples_importable(name):
    """The heavier examples are compiled (syntax/import check) here and
    executed in full by the benchmark/CI run; see examples/."""
    source = (EXAMPLES / name).read_text()
    compile(source, name, "exec")
