"""Command-line interface: ``python -m repro <command>``.

The subcommands cover the library's everyday uses without writing any
code:

* ``demo``        — quickstart comparison on one synthetic patient,
* ``screen``      — cohort screening under a chosen pruning mode or a
  declarative ``--config config.json`` (``--jobs N`` shards the cohort
  over N worker processes, ``--provider`` pins the FFT execution
  engine),
* ``stream``      — replay recordings as interleaved timed events
  through the multiplexed streaming hub
  (:class:`repro.engine.StreamHub` via its asyncio transport), or —
  with ``--connect HOST:PORT`` — as a network client of a running
  ``serve`` gateway,
* ``serve``       — run the network service gateway: framed
  newline-JSON stream ingestion plus the REST result API over
  per-tenant streaming hubs (:mod:`repro.service`); SIGTERM drains
  gracefully,
* ``worker``      — serve this host as a fleet worker daemon for
  ``--workers`` fleets,
* ``engine``      — inspect, resolve and round-trip the declarative
  engine configuration (:class:`repro.engine.EngineConfig`),
* ``energy``      — energy report of a pruning mode on the node model,
* ``complexity``  — the Fig. 5 operation-count table for a given N,
* ``tune``        — per-host batch chunk-size probe (fleet auto-tuner),
* ``providers``   — list/probe the FFT execution provider registry,
* ``profile``     — per-stage timing (and optional allocation) profile
  of a streaming workload (:mod:`repro.perf`).

Analysis commands are thin drivers over the engine facade
(:mod:`repro.engine`): flags build or override an
:class:`~repro.engine.EngineConfig`, and execution runs through
:class:`~repro.engine.Engine`.
"""

from __future__ import annotations

import argparse

import numpy as np

from .analysis.reporting import format_percent, format_table
from .core.system import QualityScalablePSA
from .ecg.database import make_cohort
from .engine import Engine, EngineConfig
from .errors import ConfigurationError
from .ffts.pruning import PruningSpec
from .ffts.split_radix import split_radix_counts
from .ffts.wavelet_fft import WaveletFFT

__all__ = ["main", "build_parser", "parse_mode", "parse_slo"]

_MODES = ("exact", "band", "set1", "set2", "set3")


def parse_mode(name: str, dynamic: bool = False) -> PruningSpec:
    """Translate a CLI mode name into a :class:`PruningSpec`."""
    name = name.lower()
    if name == "exact":
        return PruningSpec.none()
    if name == "band":
        return PruningSpec.band_only()
    if name.startswith("set") and name[3:] in ("1", "2", "3"):
        return PruningSpec.paper_mode(int(name[3:]), dynamic=dynamic)
    raise argparse.ArgumentTypeError(
        f"unknown mode {name!r}; choose from {', '.join(_MODES)}"
    )


def parse_slo(text: str):
    """Translate a ``--slo`` value into an :class:`SLOSpec`.

    Accepts either a bare number (the target p95 flush latency in
    milliseconds, everything else defaulted) or a full SLOSpec JSON
    object for tuning hysteresis, policy, floors and tiers.
    """
    from .engine import SLOSpec

    text = text.strip()
    if text.startswith("{"):
        return SLOSpec.from_json(text)
    try:
        target = float(text)
    except ValueError:
        raise ConfigurationError(
            f"--slo expects a target p95 in milliseconds or an SLOSpec "
            f"JSON object, got {text!r}"
        ) from None
    return SLOSpec(target_p95_ms=target)


def _config_from_args(args, default_mode: str = "set3") -> EngineConfig:
    """Build the :class:`EngineConfig` a command's flags describe.

    ``--config FILE`` loads the declarative base; explicit flags
    (``--mode``, ``--provider``, ``--jobs``) override its fields —
    the CLI layer of the documented explicit → config → env →
    auto-probe precedence chain.
    """
    if getattr(args, "config", None):
        config = EngineConfig.from_file(args.config)
        if args.mode is not None:
            moded = EngineConfig.for_mode(args.mode, args.dynamic)
            config = config.replace(system=moded.system, pruning=moded.pruning)
        elif args.dynamic:
            # --dynamic modifies a --mode; silently ignoring it against
            # a config file would run a different analysis than asked.
            raise ConfigurationError(
                "--dynamic requires --mode when --config is given "
                "(the config file already fixes the pruning spec)"
            )
    else:
        config = EngineConfig.for_mode(
            args.mode if args.mode is not None else default_mode,
            args.dynamic,
        )
    if getattr(args, "provider", None) is not None:
        config = config.replace(provider=args.provider)
    if getattr(args, "jobs", None) is not None:
        # 0 is the CLI's one-per-CPU sentinel (None in config terms).
        config = config.replace(jobs=None if args.jobs == 0 else args.jobs)
    if getattr(args, "workers", None):
        # Repeatable and comma-splittable: --workers a:1 --workers b:2,c:3
        addresses = [
            address.strip()
            for value in args.workers
            for address in value.split(",")
            if address.strip()
        ]
        config = config.replace(workers=tuple(addresses))
    if getattr(args, "slo", None) is not None:
        config = config.replace(slo=parse_slo(args.slo))
    return config


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quality-scalable HRV spectral analysis (DATE 2014 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="quickstart comparison on one patient")
    demo.add_argument("--patient", default="rsa-05")
    demo.add_argument("--duration", type=float, default=600.0)

    from .ffts.providers import provider_names

    screen = sub.add_parser("screen", help="screen the synthetic cohort")
    screen.add_argument(
        "--config",
        default=None,
        metavar="FILE",
        help="declarative EngineConfig JSON file (see the engine command)",
    )
    screen.add_argument("--mode", default=None, choices=_MODES)
    screen.add_argument("--dynamic", action="store_true")
    screen.add_argument("--patients", type=int, default=8)
    screen.add_argument("--duration", type=float, default=300.0)
    screen.add_argument(
        "--ecg",
        action="store_true",
        help="start from raw ECG: render each patient's waveform, "
        "detect QRS beats and clean the RR intervals "
        "(repro.ingest) before screening",
    )
    screen.add_argument(
        "--sampling-rate",
        type=float,
        default=250.0,
        help="ECG sampling rate in Hz for --ecg (default: 250)",
    )
    screen.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the cohort (0 = one per CPU)",
    )
    screen.add_argument(
        "--provider",
        default=None,
        choices=provider_names(),
        help="FFT execution provider to pin (see the providers command)",
    )
    screen.add_argument(
        "--workers",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help="remote fleet worker daemon to schedule shards onto "
        "(repeatable; comma-separated lists accepted)",
    )

    stream = sub.add_parser(
        "stream",
        help="replay recordings as interleaved events through the "
        "streaming hub",
    )
    stream.add_argument(
        "--config",
        default=None,
        metavar="FILE",
        help="declarative EngineConfig JSON file (see the engine command)",
    )
    stream.add_argument("--mode", default=None, choices=_MODES)
    stream.add_argument("--dynamic", action="store_true")
    stream.add_argument("--patients", type=int, default=4)
    stream.add_argument("--duration", type=float, default=300.0)
    stream.add_argument(
        "--input",
        default=None,
        metavar="FILE",
        help="CSV of 'subject,t,rr' beat rows to replay instead of the "
        "synthetic cohort",
    )
    stream.add_argument(
        "--ecg",
        action="store_true",
        help="replay raw ECG frames instead of beat events: each "
        "subject's waveform is rendered, streamed through the "
        "incremental QRS detector and artifact preprocessor "
        "(repro.ingest.ECGSource), and the cleaned RR events carry "
        "corrected-beat masks into the hub",
    )
    stream.add_argument(
        "--sampling-rate",
        type=float,
        default=250.0,
        help="ECG sampling rate in Hz for --ecg (default: 250)",
    )
    stream.add_argument(
        "--frame",
        type=int,
        default=512,
        dest="frame_samples",
        help="ECG samples per uplink frame for --ecg (default: 512)",
    )
    stream.add_argument(
        "--chunk",
        type=int,
        default=16,
        help="beats per uplink event (each event is one subject's burst)",
    )
    stream.add_argument(
        "--round",
        type=int,
        default=64,
        dest="round_events",
        help="events per shared-batch flush round",
    )
    stream.add_argument(
        "--speed",
        type=float,
        default=0.0,
        help="replay speed multiplier (0 = fast-forward, 1 = real time)",
    )
    stream.add_argument(
        "--verify",
        action="store_true",
        help="re-analyse each finished recording in one batch and check "
        "the streamed result is bit-identical",
    )
    stream.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the shared analysis batches "
        "(0 = one per CPU)",
    )
    stream.add_argument(
        "--provider",
        default=None,
        choices=provider_names(),
        help="FFT execution provider to pin (see the providers command)",
    )
    stream.add_argument(
        "--workers",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help="remote fleet worker daemon to schedule span batches onto "
        "(repeatable; comma-separated lists accepted)",
    )
    stream.add_argument(
        "--slo",
        default=None,
        metavar="MS|JSON",
        help="attach the quality-adaptive SLO controller: a target p95 "
        "flush latency in milliseconds (e.g. 50), or a full SLOSpec "
        "JSON object; overloaded subjects are stepped down the "
        "paper's degradation ladder and recover when load subsides",
    )
    stream.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="replay through a running 'serve' gateway instead of an "
        "in-process hub (one framed connection per subject; --verify "
        "assumes the server tenant runs the same engine config as the "
        "local flags build)",
    )
    stream.add_argument(
        "--tenant",
        default="default",
        help="tenant name for --connect (default: default)",
    )
    stream.add_argument(
        "--token",
        default="dev-token",
        help="tenant token for --connect (default: dev-token)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the network service gateway (streams + REST)",
        description="Run the ingestion gateway: one port serving the "
        "framed newline-JSON stream protocol (hello/feed/finalize over "
        "per-tenant streaming hubs, windows pushed back with "
        "backpressure) and the REST result API (POST /v1/analyze, GET "
        "/v1/subjects/<id>/windows, GET /v1/stats).  Results are "
        "bit-identical to in-process Engine.analyze.  SIGTERM/SIGINT "
        "drain gracefully: accepting stops, every tenant's subjects "
        "finalize, results are pushed to connected clients.",
    )
    serve.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="address to bind (overrides the config file; port 0 = "
        "ephemeral, printed on startup)",
    )
    serve.add_argument(
        "--config",
        default=None,
        metavar="FILE",
        help="declarative ServiceConfig JSON file (tenants, tokens, "
        "per-tenant engine configs); defaults to one 'default' tenant "
        "with token 'dev-token'",
    )
    serve.add_argument(
        "--count-ops",
        action="store_true",
        help="count executed operations in every tenant hub (OpCounts "
        "in results — the bit-identity verification surface)",
    )

    worker = sub.add_parser(
        "worker",
        help="serve this host as a fleet worker daemon",
        description="Run a fleet worker daemon: listen for a scheduler's "
        "connection, reconstruct its exact engine (config blob, pinned "
        "provider and chunk size, warmed plan caches, workspace arena) "
        "and analyse the span batches it ships — bit-identically to the "
        "scheduler running them locally.  Use --listen HOST:0 to bind an "
        "ephemeral port (the bound address is printed on startup).",
    )
    worker.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="address to listen on (default 127.0.0.1:0 = ephemeral port)",
    )
    worker.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="seconds between idle-connection heartbeat probes "
        "(default: the library's HEARTBEAT_INTERVAL; must be > 0)",
    )

    engine_cmd = sub.add_parser(
        "engine",
        help="inspect/resolve/round-trip the declarative engine config",
    )
    engine_cmd.add_argument(
        "--config",
        default=None,
        metavar="FILE",
        help="EngineConfig JSON file to inspect (defaults to flag-built)",
    )
    engine_cmd.add_argument("--mode", default=None, choices=_MODES)
    engine_cmd.add_argument("--dynamic", action="store_true")
    engine_cmd.add_argument(
        "--provider", default=None, choices=provider_names()
    )
    engine_cmd.add_argument("--jobs", type=int, default=None)
    engine_cmd.add_argument(
        "--json",
        action="store_true",
        help="print the config as JSON (pipe into a file for --config)",
    )
    engine_cmd.add_argument(
        "--resolve",
        action="store_true",
        help="resolve execution settings (may run the autoselect probe)",
    )

    energy = sub.add_parser("energy", help="energy report for a pruning mode")
    energy.add_argument("--mode", default="set3", choices=_MODES)
    energy.add_argument("--dynamic", action="store_true")
    energy.add_argument("--no-vfs", action="store_true")
    energy.add_argument("--whole-window", action="store_true")

    complexity = sub.add_parser(
        "complexity", help="Fig. 5 operation-count table"
    )
    complexity.add_argument("--n", type=int, default=512)

    tune = sub.add_parser(
        "tune", help="probe this host's batched-execution chunk size"
    )
    tune.add_argument("--workspace", type=int, default=512)
    tune.add_argument(
        "--measure",
        action="store_true",
        help="time candidate chunk sizes instead of using the cache model",
    )

    providers = sub.add_parser(
        "providers", help="list or probe the FFT execution providers"
    )
    providers.add_argument("--workspace", type=int, default=512)
    providers.add_argument(
        "--probe",
        action="store_true",
        help="run the autoselect micro-benchmark and show per-provider "
        "timings",
    )

    profile = sub.add_parser(
        "profile",
        help="per-stage timing profile of a streaming workload",
        description="Replay a synthetic streaming cohort through the hub "
        "with the per-stage profiler enabled and print where each flush "
        "spends its time (extirpolation, FFT dispatch, Lomb combine, "
        "assembly, hub flush), plus the workspace arena's reuse "
        "counters.",
    )
    profile.add_argument(
        "--config",
        default=None,
        metavar="FILE",
        help="declarative EngineConfig JSON file (see the engine command)",
    )
    profile.add_argument("--mode", default=None, choices=_MODES)
    profile.add_argument("--dynamic", action="store_true")
    profile.add_argument("--patients", type=int, default=4)
    profile.add_argument("--duration", type=float, default=300.0)
    profile.add_argument(
        "--chunk",
        type=int,
        default=16,
        help="beats per uplink event (each event is one subject's burst)",
    )
    profile.add_argument(
        "--round",
        type=int,
        default=64,
        dest="round_events",
        help="events per shared-batch flush round",
    )
    profile.add_argument(
        "--alloc",
        action="store_true",
        help="also trace net allocations per stage (starts tracemalloc; "
        "adds measurement overhead)",
    )
    profile.add_argument(
        "--no-arena",
        action="store_true",
        help="disable the workspace arena (profile the allocating path "
        "for comparison)",
    )
    profile.add_argument(
        "--provider",
        default=None,
        choices=provider_names(),
        help="FFT execution provider to pin (see the providers command)",
    )
    return parser


def _cmd_demo(args) -> int:
    patient = make_cohort().get(args.patient)
    rr = patient.rr_series(duration=args.duration)
    with Engine(EngineConfig.for_mode("exact")) as exact_engine:
        reference = exact_engine.analyze(rr)
    with Engine(EngineConfig.for_mode("set3")) as pruned_engine:
        approx = pruned_engine.analyze(rr)
    rows = [
        ["conventional", f"{reference.lf_hf:.3f}",
         str(reference.detection.is_arrhythmia)],
        ["band + 60%", f"{approx.lf_hf:.3f}",
         str(approx.detection.is_arrhythmia)],
    ]
    print(format_table(["system", "LF/HF", "arrhythmia?"], rows,
                       title=f"patient {patient.patient_id}"))
    return 0


def _cmd_screen(args) -> int:
    config = _config_from_args(args)
    cohort = make_cohort()
    patients = list(cohort)[: args.patients]
    if args.ecg:
        # Full sensor path: render each patient's ECG waveform, detect
        # QRS beats and clean the RR intervals before screening.
        from .ecg import synthesize_ecg
        from .ingest import ecg_record_to_rr

        recordings = []
        for index, patient in enumerate(patients):
            rr = patient.rr_series(duration=args.duration)
            t, ecg = synthesize_ecg(
                rr.times, sampling_rate=args.sampling_rate, seed=index
            )
            recordings.append(
                ecg_record_to_rr(t, ecg, sampling_rate=args.sampling_rate)
            )
    else:
        recordings = [
            patient.rr_series(duration=args.duration) for patient in patients
        ]
    # The facade owns execution: the fleet engine shards the cohort's
    # Welch windows over the worker pool (jobs=1 runs the identical
    # pipeline in-process), pinned to the config's resolved provider
    # and chunk size.
    with Engine(config) as engine:
        results = engine.analyze_cohort(recordings)
    rows = []
    correct = 0
    for patient, result in zip(patients, results):
        expected = patient.patient_id.startswith("rsa")
        ok = result.detection.is_arrhythmia == expected
        correct += ok
        rows.append(
            [patient.patient_id, f"{result.lf_hf:.3f}",
             str(result.detection.is_arrhythmia), "ok" if ok else "MISS"]
        )
    title = (
        "screening under mode "
        f"{config.pruning.describe() if config.system != 'conventional' else 'exact'}"
    )
    print(format_table(["patient", "LF/HF", "flagged", "verdict"], rows,
                       title=title))
    print(f"\n{correct}/{len(patients)} correct")
    return 0 if correct == len(patients) else 1


def _load_event_file(path) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Parse a CSV of ``subject,t,rr`` beat rows into per-subject arrays."""
    beats: dict[str, tuple[list, list]] = {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, 1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split(",")
                if len(parts) != 3:
                    raise ConfigurationError(
                        f"{path}:{line_no}: expected 'subject,t,rr', "
                        f"got {line!r}"
                    )
                try:
                    t, rr = float(parts[1]), float(parts[2])
                except ValueError:
                    raise ConfigurationError(
                        f"{path}:{line_no}: t and rr must be numbers, "
                        f"got {line!r}"
                    ) from None
                times, values = beats.setdefault(parts[0].strip(), ([], []))
                times.append(t)
                values.append(rr)
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read event file {path!r}: {exc}"
        ) from None
    if not beats:
        raise ConfigurationError(f"event file {path!r} holds no beat rows")
    return {
        subject: (np.asarray(times), np.asarray(values))
        for subject, (times, values) in beats.items()
    }


def _timed_events(recordings, beats_per_event: int):
    """Chunk per-subject beats into events, interleaved by beat time.

    Each event is ``(at, subject, times, values, corrected)`` — one
    subject's burst of up to ``beats_per_event`` beats, stamped with
    its first beat instant; sorting by the stamp reproduces the
    arrival order a ward of independent wearables would deliver.
    """
    events = []
    for subject, (times, values) in recordings.items():
        for lo in range(0, times.size, beats_per_event):
            hi = min(lo + beats_per_event, times.size)
            events.append(
                (float(times[lo]), subject, times[lo:hi], values[lo:hi],
                 None)
            )
    events.sort(key=lambda event: event[0])
    return events


def _ecg_replay_inputs(args):
    """Raw-ECG replay: render waveforms, stream them through ingestion.

    Returns ``(recordings, events)`` where ``recordings`` maps subject
    to the *batch-reference* cleaned :class:`RRSeries`
    (:func:`~repro.ingest.ecg_record_to_rr` of the whole record — what
    ``--verify`` compares against) and ``events`` are the timed
    ``(at, subject, t, rr, corrected)`` bursts an
    :class:`~repro.ingest.ECGSource` emits frame by frame.
    """
    from .ecg import synthesize_ecg
    from .ingest import ECGSource, ecg_frames, ecg_record_to_rr

    if args.frame_samples < 1:
        raise ConfigurationError(
            f"--frame must be >= 1, got {args.frame_samples}"
        )
    if args.patients < 1:
        raise ConfigurationError(
            f"--patients must be >= 1, got {args.patients}"
        )
    recordings = {}
    events = []
    for index, patient in enumerate(list(make_cohort())[: args.patients]):
        rr = patient.rr_series(duration=args.duration)
        t, ecg = synthesize_ecg(
            rr.times, sampling_rate=args.sampling_rate, seed=index
        )
        recordings[patient.patient_id] = ecg_record_to_rr(
            t, ecg, sampling_rate=args.sampling_rate
        )
        source = ECGSource(
            patient.patient_id,
            ecg_frames(t, ecg, frame_samples=args.frame_samples),
            sampling_rate=args.sampling_rate,
        )
        for subject, times, values, corrected in source:
            events.append(
                (float(times[0]), subject, times, values, corrected)
            )
    events.sort(key=lambda event: event[0])
    return recordings, events


def _replay_inputs(args):
    """The recordings and interleaved events a stream replay drives.

    ``recordings`` maps subject to the batch-reference
    :class:`RRSeries`; events are ``(at, subject, t, rr, corrected)``.
    """
    from .hrv.rr import RRSeries

    if args.chunk < 1:
        raise ConfigurationError(f"--chunk must be >= 1, got {args.chunk}")
    if args.round_events < 1:
        raise ConfigurationError(
            f"--round must be >= 1, got {args.round_events}"
        )
    if args.ecg:
        if args.input:
            raise ConfigurationError(
                "--ecg and --input are mutually exclusive"
            )
        recordings, events = _ecg_replay_inputs(args)
    else:
        if args.input:
            pairs = _load_event_file(args.input)
        else:
            if args.patients < 1:
                raise ConfigurationError(
                    f"--patients must be >= 1, got {args.patients}"
                )
            pairs = {}
            for patient in list(make_cohort())[: args.patients]:
                rr = patient.rr_series(duration=args.duration)
                pairs[patient.patient_id] = (rr.times, rr.intervals)
        events = _timed_events(pairs, args.chunk)
        recordings = {
            subject: RRSeries(times=times, intervals=values)
            for subject, (times, values) in pairs.items()
        }
    if not events:
        raise ConfigurationError("nothing to replay: no beats in any subject")
    return recordings, events


def _cmd_stream_connect(args) -> int:
    """Replay through a running gateway instead of an in-process hub."""
    import time as time_mod

    from .service import ServiceClient

    recordings, events = _replay_inputs(args)
    clients: dict = {}
    try:
        clock = events[0][0]
        for at, subject, times, values, corrected in events:
            client = clients.get(subject)
            if client is None:
                client = ServiceClient(
                    args.connect, tenant=args.tenant, token=args.token
                )
                client.open(subject)
                clients[subject] = client
            if args.speed > 0 and at > clock:
                time_mod.sleep((at - clock) / args.speed)
                clock = at
            client.feed(
                times, values,
                None if corrected is None
                else np.asarray(corrected, dtype=float),
            )
        results = {
            subject: client.finalize() for subject, client in clients.items()
        }
    finally:
        for client in clients.values():
            client.close()
    rows = []
    exit_code = 0
    reference_engine = None
    if args.verify:
        reference_engine = Engine(_config_from_args(args))
    try:
        for subject, rr in recordings.items():
            result = results[subject]
            row = [
                subject,
                str(rr.times.size),
                str(len(clients[subject].windows)),
                str(result["n_windows"]),
                f"{result['lf_hf']:.3f}",
                str(result["detection"]["is_arrhythmia"]),
            ]
            if args.verify:
                reference = reference_engine.analyze(rr)
                identical = np.array_equal(
                    np.asarray(result["spectrogram"]),
                    reference.welch.spectrogram,
                ) and np.array_equal(
                    np.asarray(result["window_times"]),
                    reference.welch.window_times,
                ) and result.get("window_metrics") == [
                    metrics.to_dict()
                    for metrics in reference.window_metrics
                ]
                row.append("ok" if identical else "MISMATCH")
                exit_code = exit_code or (0 if identical else 1)
            rows.append(row)
    finally:
        if reference_engine is not None:
            reference_engine.close()
    headers = ["subject", "beats", "pushed", "windows", "LF/HF", "flagged"]
    if args.verify:
        headers.append("vs local")
    wire_bytes = sum(
        client.bytes_sent + client.bytes_received
        for client in clients.values()
    )
    print(format_table(
        headers,
        rows,
        title=f"streamed {len(events)} events over {len(recordings)} "
        f"subjects through {args.connect} "
        f"({wire_bytes / 1024.0:.0f} KiB on the wire)",
    ))
    return exit_code


def _cmd_stream(args) -> int:
    import asyncio

    if args.connect:
        return _cmd_stream_connect(args)
    config = _config_from_args(args)
    recordings, events = _replay_inputs(args)

    async def replay(hub):
        async def reader():
            clock = events[0][0]
            for at, subject, times, values, corrected in events:
                if args.speed > 0 and at > clock:
                    await asyncio.sleep((at - clock) / args.speed)
                    clock = at
                yield subject, times, values, corrected

        return await hub.serve(reader(), round_events=args.round_events)

    with Engine(config) as engine:
        hub = engine.open_hub()
        results = asyncio.run(replay(hub))
        rows = []
        exit_code = 0
        for subject, rr in recordings.items():
            result = results[subject]
            row = [
                subject,
                str(rr.times.size),
                str(result.welch.n_windows),
                f"{result.lf_hf:.3f}",
                str(result.detection.is_arrhythmia),
            ]
            if args.verify:
                reference = engine.analyze(rr)
                identical = np.array_equal(
                    reference.welch.spectrogram, result.welch.spectrogram
                ) and np.array_equal(
                    reference.welch.window_times, result.welch.window_times
                ) and (
                    reference.window_metrics == result.window_metrics
                )
                row.append("ok" if identical else "MISMATCH")
                exit_code = exit_code or (0 if identical else 1)
            rows.append(row)
        headers = ["subject", "beats", "windows", "LF/HF", "flagged"]
        if args.verify:
            headers.append("vs batch")
        print(format_table(
            headers,
            rows,
            title=f"streamed {len(events)} events over "
            f"{len(recordings)} subjects "
            f"(rounds of {args.round_events})",
        ))
        if config.slo is not None:
            stats = hub.controller_stats()
            ladder = stats["ladder"]
            shed = sum(
                count
                for level, count in stats["windows_by_level"].items()
                if level > 0
            )
            total = sum(stats["windows_by_level"].values())
            slo_rows = [
                [subject, str(level), ladder[level]]
                for subject, level in sorted(stats["levels"].items())
            ]
            p95 = stats["p95_ms"]
            print()
            print(format_table(
                ["subject", "level", "quality"],
                slo_rows,
                title=(
                    f"SLO controller: p95 "
                    f"{'--' if p95 is None else f'{p95:.1f} ms'} over "
                    f"{stats['flushes']} flushes, "
                    f"{stats['steps_down']} down / "
                    f"{stats['steps_up']} up, "
                    f"{shed}/{total} windows degraded"
                ),
            ))
    return exit_code


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from .service import GatewayServer, ServiceConfig

    config = (
        ServiceConfig.from_file(args.config)
        if args.config
        else ServiceConfig()
    )
    if args.listen:
        config = config.replace(listen=args.listen)
    if args.count_ops:
        config = config.replace(count_ops=True)

    async def run() -> int:
        server = GatewayServer(config)
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(server.shutdown()),
                )
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        tenants = ", ".join(spec.name for spec in config.tenants)
        print(
            f"gateway listening on {server.address} "
            f"(tenants: {tenants}); SIGTERM drains gracefully",
            flush=True,
        )
        await server.serve_forever()
        wire = server.stats()["wire"]
        print(
            f"drained: {wire['connections']} connections, "
            f"{wire['frames_in']} frames in / {wire['frames_out']} out, "
            f"{wire['http_requests']} HTTP requests"
        )
        return 0

    return asyncio.run(run())


def _cmd_worker(args) -> int:
    from .fleet.remote import HEARTBEAT_INTERVAL, run_worker_daemon

    interval = (
        HEARTBEAT_INTERVAL
        if args.heartbeat_interval is None
        else args.heartbeat_interval
    )
    return run_worker_daemon(args.listen, heartbeat_interval=interval)


def _cmd_engine(args) -> int:
    config = _config_from_args(args, default_mode="exact")
    if args.json:
        print(config.to_json())
        return 0
    round_tripped = EngineConfig.from_json(config.to_json())
    rows = [
        ["system", config.system],
        ["pruning", config.pruning.describe()],
        ["fft size", str(config.psa.fft_size)],
        ["window", f"{config.psa.window_seconds:.0f} s / "
                   f"{config.psa.overlap:.0%} overlap"],
        ["basis", config.psa.basis],
        ["scaling", config.psa.scaling],
        ["bands", ", ".join(
            f"{band.name} [{band.low}, {band.high})" for band in config.bands
        )],
        ["provider", config.provider or "-- (resolve at run time)"],
        ["chunk windows", str(config.chunk_windows)
         if config.chunk_windows else "-- (resolve at run time)"],
        ["jobs", str(config.jobs) if config.jobs else "one per CPU"],
        ["JSON round-trip", "ok" if round_tripped == config else "MISMATCH"],
    ]
    if args.resolve:
        resolved = config.resolve()
        rows += [
            ["resolved provider",
             f"{resolved.provider} ({resolved.provider_source})"],
            ["resolved chunk",
             f"{resolved.chunk_windows} ({resolved.chunk_source})"],
            ["resolved jobs", f"{resolved.jobs} ({resolved.jobs_source})"],
        ]
    print(format_table(["field", "value"], rows, title="engine config"))
    return 0 if round_tripped == config else 1


def _cmd_energy(args) -> int:
    spec = parse_mode(args.mode, args.dynamic)
    system = QualityScalablePSA(pruning=spec)
    report = system.energy_report(
        apply_vfs=not args.no_vfs, fft_only=not args.whole_window
    )
    scope = "whole window" if args.whole_window else "FFT kernel"
    point = report.approximate.operating_point
    rows = [
        ["mode", spec.describe()],
        ["scope", scope],
        ["cycle reduction", format_percent(report.cycle_reduction)],
        ["energy savings", format_percent(report.energy_savings)],
        ["operating point", f"{point.voltage:.2f} V / "
                            f"{point.frequency / 1e6:.0f} MHz"],
        ["VFS applied", str(report.vfs_applied)],
    ]
    print(format_table(["quantity", "value"], rows, title="energy report"))
    return 0


def _cmd_complexity(args) -> int:
    baseline = split_radix_counts(args.n)
    rows = [["split-radix", str(baseline.adds), str(baseline.mults), "--"]]
    for basis in ("haar", "db2", "db4"):
        for label, spec in (
            ("no approx", PruningSpec.none()),
            ("band drop", PruningSpec.band_only()),
            ("band + 60%", PruningSpec.paper_mode(3)),
        ):
            counts = WaveletFFT(args.n, basis=basis, pruning=spec).static_counts()
            rows.append(
                [f"{basis} ({label})", str(counts.adds), str(counts.mults),
                 format_percent(counts.savings_vs(baseline), signed=True)]
            )
    print(format_table(["kernel", "adds", "mults", "savings"], rows,
                       title=f"operation counts, N={args.n}"))
    return 0


def _cmd_tune(args) -> int:
    from .fleet.tuning import autotune_chunk_windows, measure_chunk_windows
    from .lomb.fast import BATCH_CHUNK_WINDOWS

    if args.measure:
        tuning = measure_chunk_windows(workspace_size=args.workspace)
    else:
        tuning = autotune_chunk_windows(args.workspace)
    cache = (
        f"{tuning.cache_bytes / 1024:.0f} KiB"
        if tuning.cache_bytes
        else "undetected"
    )
    rows = [
        ["workspace size", str(tuning.workspace_size)],
        ["last-level cache", cache],
        ["chunk windows", str(tuning.chunk_windows)],
        ["source", tuning.source],
        ["fixed default", str(BATCH_CHUNK_WINDOWS)],
        ["fft provider", tuning.provider or "--"],
    ]
    if tuning.timings:
        for candidate, seconds in sorted(tuning.timings.items()):
            rows.append([f"  probe {candidate}", f"{seconds * 1e3:.1f} ms"])
    print(format_table(["quantity", "value"], rows, title="chunk tuning"))
    return 0


def _cmd_providers(args) -> int:
    from .envpins import provider_env_pin
    from .errors import ConfigurationError
    from .ffts.providers import registry

    availability = registry.available_providers()
    descriptions = registry.provider_descriptions()
    probe = registry.autoselect(args.workspace) if args.probe else None
    # Report the resolution state without side effects: the plain
    # listing must neither run the timing probe nor die on a bad env
    # pin — only --probe pays for the micro-benchmark.
    pin = registry.get_default_provider_name()
    env_value = provider_env_pin()
    if pin is not None:
        active = pin
    elif env_value is not None and env_value != "auto":
        try:
            active = registry.resolve_provider_name(None, args.workspace)
        except ConfigurationError:
            active = f"invalid env pin {env_value!r}"
    else:
        cached = registry.autoselect_cached(args.workspace)
        active = cached.provider if cached is not None else "auto (unprobed)"
    rows = []
    for name in registry.provider_names():
        status = "yes" if availability[name] else "missing dependency"
        marks = []
        if name == active:
            marks.append("active")
        if probe is not None and probe.provider == name:
            marks.append("probe winner")
        timing = ""
        if probe is not None and probe.timings and name in probe.timings:
            timing = f"{probe.timings[name] * 1e3:.2f} ms"
        rows.append(
            [name, status, ", ".join(marks) or "--", timing or "--",
             descriptions[name]]
        )
    print(format_table(
        ["provider", "available", "state", "probe", "description"],
        rows,
        title=f"FFT execution providers (workspace {args.workspace})",
    ))
    env = registry.PROVIDER_ENV_VAR
    print(f"\nresolution: pin={pin or '--'}, {env}="
          f"{env_value if env_value is not None else '--'}, active={active}")
    return 0


def _cmd_profile(args) -> int:
    import tracemalloc

    if args.chunk < 1:
        raise ConfigurationError(f"--chunk must be >= 1, got {args.chunk}")
    if args.round_events < 1:
        raise ConfigurationError(
            f"--round must be >= 1, got {args.round_events}"
        )
    if args.patients < 1:
        raise ConfigurationError(
            f"--patients must be >= 1, got {args.patients}"
        )
    config = _config_from_args(args).replace(
        profile=True, arena=not args.no_arena
    )
    recordings = {}
    for patient in list(make_cohort())[: args.patients]:
        rr = patient.rr_series(duration=args.duration)
        recordings[patient.patient_id] = (rr.times, rr.intervals)
    events = _timed_events(recordings, args.chunk)
    started_tracing = False
    if args.alloc and not tracemalloc.is_tracing():
        tracemalloc.start()
        started_tracing = True
    try:
        with Engine(config) as engine:
            if args.alloc:
                engine.profiler.trace_alloc = True
            hub = engine.open_hub()
            rounds = 0
            for lo in range(0, len(events), args.round_events):
                for _, subject, times, values, corrected in events[
                    lo : lo + args.round_events
                ]:
                    hub.feed(subject, times, values, corrected)
                hub.flush()
                rounds += 1
            results = hub.finalize_all()
            hub.close()
            windows = sum(r.welch.n_windows for r in results.values())
            print(
                f"streamed {len(events)} events over "
                f"{len(recordings)} subjects in {rounds} rounds "
                f"({windows} windows)\n"
            )
            print(engine.profiler.format_report())
            if engine.arena is not None:
                stats = engine.arena.stats()
                print(
                    f"\narena: {stats['hits']} hits / "
                    f"{stats['misses']} misses / "
                    f"{stats['evictions']} evictions, "
                    f"{stats['pooled_bytes'] / 1024.0:.0f} KiB pooled in "
                    f"{stats['pooled_buffers']} buffers"
                )
            else:
                print("\narena: disabled (--no-arena)")
    finally:
        if started_tracing:
            tracemalloc.stop()
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "screen": _cmd_screen,
        "stream": _cmd_stream,
        "serve": _cmd_serve,
        "worker": _cmd_worker,
        "engine": _cmd_engine,
        "energy": _cmd_energy,
        "complexity": _cmd_complexity,
        "tune": _cmd_tune,
        "providers": _cmd_providers,
        "profile": _cmd_profile,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
