"""Iterative radix-2 Cooley-Tukey FFT.

Included as a second conventional baseline (ablation for the choice of
split radix in the paper): correct numerics plus an exact count of the
real operations a twiddle-aware radix-2 implementation performs.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_1d_complex_array, require_power_of_two
from .opcount import COMPLEX_ADD, COMPLEX_MULT, OpCounts

__all__ = ["radix2_fft", "radix2_counts", "bit_reverse_permutation"]


def bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation that orders inputs for the iterative butterflies."""
    n = require_power_of_two(n, "n")
    bits = int(np.log2(n))
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        reversed_indices = (reversed_indices << 1) | (indices & 1)
        indices >>= 1
    return reversed_indices


def radix2_fft(x) -> np.ndarray:
    """Compute the DFT of *x* (power-of-two length) iteratively.

    Decimation-in-time with an explicit bit-reversal pass; matches
    ``numpy.fft.fft`` to floating-point accuracy.
    """
    arr = as_1d_complex_array(x, "x")
    n = require_power_of_two(arr.size, "len(x)")
    data = arr[bit_reverse_permutation(n)]
    span = 1
    while span < n:
        twiddles = np.exp(-1j * np.pi * np.arange(span) / span)
        data = data.reshape(-1, 2 * span)
        upper = data[:, :span]
        lower = data[:, span:] * twiddles
        data = np.hstack([upper + lower, upper - lower]).reshape(-1)
        span *= 2
    return data


def radix2_counts(n: int) -> OpCounts:
    """Exact real-operation counts of the twiddle-aware radix-2 FFT.

    Per stage every butterfly performs one complex multiplication and two
    complex additions; multiplications by the trivial twiddles 1 and -i
    are free (sign/swap only), which is the standard optimisation.
    """
    n = require_power_of_two(n, "n")
    total = OpCounts()
    span = 1
    while span < n:
        butterflies_per_group = span
        groups = n // (2 * span)
        trivial_per_group = 1 if span < 2 else 2  # k = 0, and k = span/2 (-i)
        generic = (butterflies_per_group - trivial_per_group) * groups
        if generic < 0:
            generic = 0
        total = total + COMPLEX_MULT.scaled(generic)
        total = total + COMPLEX_ADD.scaled(2 * butterflies_per_group * groups)
        span *= 2
    return total
