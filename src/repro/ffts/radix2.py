"""Iterative radix-2 Cooley-Tukey FFT.

Included as a second conventional baseline (ablation for the choice of
split radix in the paper): correct numerics plus an exact count of the
real operations a twiddle-aware radix-2 implementation performs.

Design-time data (the bit-reversal permutation and per-stage twiddle
vectors) is memoised in :mod:`~repro.ffts.plancache` rather than rebuilt
on every call.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_1d_complex_array, require_power_of_two
from .opcount import COMPLEX_ADD, COMPLEX_MULT, OpCounts
from .plancache import bit_reversal, radix2_stage_twiddles

__all__ = ["radix2_fft", "radix2_counts", "bit_reverse_permutation"]


def bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation that orders inputs for the iterative butterflies.

    Memoised per size via the plan cache; the returned array is shared
    and read-only (index with it, do not mutate it).
    """
    return bit_reversal(n)


def radix2_fft(x) -> np.ndarray:
    """Compute the DFT of *x* (power-of-two length) iteratively.

    Decimation-in-time with an explicit bit-reversal pass; matches
    ``numpy.fft.fft`` to floating-point accuracy.
    """
    arr = as_1d_complex_array(x, "x")
    n = require_power_of_two(arr.size, "len(x)")
    data = arr[bit_reverse_permutation(n)]
    for twiddles in radix2_stage_twiddles(n):
        span = twiddles.size
        data = data.reshape(-1, 2 * span)
        upper = data[:, :span]
        lower = data[:, span:] * twiddles
        data = np.hstack([upper + lower, upper - lower]).reshape(-1)
    return data


def radix2_counts(n: int) -> OpCounts:
    """Exact real-operation counts of the twiddle-aware radix-2 FFT.

    Per stage every butterfly performs one complex multiplication and two
    complex additions; multiplications by the trivial twiddles 1 and -i
    are free (sign/swap only), which is the standard optimisation.
    """
    n = require_power_of_two(n, "n")
    total = OpCounts()
    span = 1
    while span < n:
        butterflies_per_group = span
        groups = n // (2 * span)
        trivial_per_group = 1 if span < 2 else 2  # k = 0, and k = span/2 (-i)
        generic = (butterflies_per_group - trivial_per_group) * groups
        if generic < 0:
            generic = 0
        total = total + COMPLEX_MULT.scaled(generic)
        total = total + COMPLEX_ADD.scaled(2 * butterflies_per_group * groups)
        span *= 2
    return total
