"""FFT substrate: baselines, the DWT-based FFT, pruning and op accounting.

Exposes the conventional kernels the paper compares against (split radix,
radix-2, direct DFT), the wavelet-domain FFT of Section IV with its two
pruning stages, the operation-count framework behind Fig. 5 and the
energy model, and the multi-provider execution layer
(:mod:`repro.ffts.providers`) that decouples the analysis model from
the numerical engine running it.
"""

from .backends import FFTBackend, SplitRadixFFT
from .providers import (
    FFTProvider,
    autoselect,
    available_providers,
    get_provider,
    set_default_provider,
)
from .dft import direct_dft, direct_dft_counts
from .opcount import (
    COMPLEX_ADD,
    COMPLEX_MULT,
    DYNAMIC_CHECK,
    REAL_SCALED_COMPLEX_MULT,
    OpCounts,
)
from .plancache import (
    clear_plan_caches,
    plan_cache_stats,
    split_radix_plan,
    wavelet_plan,
)
from .pruning import (
    TWIDDLE_SETS,
    PruningSpec,
    static_twiddle_mask,
    twiddle_threshold_for_fraction,
)
from .radix2 import bit_reverse_permutation, radix2_counts, radix2_fft
from .split_radix import split_radix_counts, split_radix_fft, split_radix_fft_batch
from .wavelet_fft import WaveletFFT, dwt_stage_cost, wavelet_fft

__all__ = [
    "COMPLEX_ADD",
    "COMPLEX_MULT",
    "DYNAMIC_CHECK",
    "FFTBackend",
    "FFTProvider",
    "REAL_SCALED_COMPLEX_MULT",
    "OpCounts",
    "SplitRadixFFT",
    "PruningSpec",
    "autoselect",
    "available_providers",
    "get_provider",
    "set_default_provider",
    "TWIDDLE_SETS",
    "WaveletFFT",
    "bit_reverse_permutation",
    "clear_plan_caches",
    "direct_dft",
    "direct_dft_counts",
    "dwt_stage_cost",
    "plan_cache_stats",
    "radix2_counts",
    "radix2_fft",
    "split_radix_counts",
    "split_radix_fft",
    "split_radix_fft_batch",
    "split_radix_plan",
    "static_twiddle_mask",
    "twiddle_threshold_for_fraction",
    "wavelet_fft",
    "wavelet_plan",
]
