"""Provider registry: naming, availability, pinning and auto-selection.

Every transform-executing kernel (:class:`~repro.ffts.backends.SplitRadixFFT`,
the sub-FFT stage of :class:`~repro.ffts.wavelet_fft.WaveletFFT`, the
fused real path of :class:`~repro.lomb.fast.FastLomb`) resolves its
engine through this module.  Resolution order mirrors the chunk-size
tuner (:mod:`repro.fleet.tuning`):

1. an explicit per-call / per-kernel pin (``provider=`` arguments),
2. a process-wide :func:`set_default_provider` pin (what the fleet
   engine installs in every worker so sharded runs stay deterministic),
3. the ``REPRO_FFT_PROVIDER`` environment variable (a provider name, or
   ``"auto"`` to force the probe),
4. a lazy, memoised :func:`autoselect` micro-benchmark that times each
   available provider once per workspace size and keeps the fastest —
   measured choices persist to a small on-disk cache keyed by machine
   identity (hostname, CPU count, numpy/scipy versions), so later
   processes on the same host skip the probe entirely;
   ``REPRO_FFT_PROVIDER=auto`` forces a fresh probe and refreshes it.

A pinned-but-unavailable provider (``REPRO_FFT_PROVIDER=scipy`` without
scipy installed) falls back to ``numpy`` rather than failing — the
optional dependency must never take the pipeline down; an *unknown*
name is always a :class:`~repro.errors.ConfigurationError`.

Provider instances are plan handles cached in
:mod:`~repro.ffts.plancache` (one stateless instance per name), so
repeated resolution is a dictionary lookup.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ...envpins import PROVIDER_ENV_VAR, cache_dir_env_pin, provider_env_pin
from ...errors import ConfigurationError
from .base import FFTProvider

__all__ = [
    "PROVIDER_ENV_VAR",
    "ProviderChoice",
    "active_provider",
    "autoselect",
    "autoselect_cache_path",
    "autoselect_cached",
    "available_providers",
    "build_provider",
    "clear_autoselect_disk_cache",
    "clear_provider_state",
    "get_default_provider_name",
    "get_provider",
    "provider_descriptions",
    "provider_names",
    "register_provider",
    "resolve_provider_name",
    "set_default_provider",
]

#: Name every fallback resolves to; registered unconditionally.
_FALLBACK = "numpy"


def _make_explicit() -> FFTProvider:
    from .explicit import ExplicitProvider

    return ExplicitProvider()


def _make_numpy() -> FFTProvider:
    from .numpy_fft import NumpyFFTProvider

    return NumpyFFTProvider()


def _make_scipy() -> FFTProvider:
    from .scipy_fft import ScipyFFTProvider

    return ScipyFFTProvider()


def _scipy_available() -> bool:
    from . import scipy_fft

    return scipy_fft.scipy_available()


@dataclass(frozen=True)
class _ProviderEntry:
    factory: Callable[[], FFTProvider]
    available: Callable[[], bool]
    description: str


#: Registration order is the listing order (oracle first, then the
#: engines in increasing dependency weight).  The GPU slot (cupy) is
#: the intended next registration — see ROADMAP.
_REGISTRY: dict[str, _ProviderEntry] = {
    "explicit": _ProviderEntry(
        factory=_make_explicit,
        available=lambda: True,
        description="explicit split-radix recursion (op-count oracle)",
    ),
    "numpy": _ProviderEntry(
        factory=_make_numpy,
        available=lambda: True,
        description="numpy.fft pocketfft (always available)",
    ),
    "scipy": _ProviderEntry(
        factory=_make_scipy,
        available=_scipy_available,
        description="scipy.fft pocketfft, multi-threaded batches (optional)",
    ),
}

_default_override: str | None = None
_autoselected: dict[int, "ProviderChoice"] = {}

#: File name of the persistent autoselect cache inside the cache dir.
_DISK_CACHE_NAME = "fft_autoselect.json"

#: Probe geometry: one small batch per provider, best-of-``_PROBE_REPEATS``.
#: Kept tiny so the lazy first-use probe costs milliseconds (the same
#: reasoning that keeps :func:`repro.fleet.tuning.autotune_chunk_windows`
#: from timing anything heavyweight at first use).
_PROBE_ROWS = 64
_PROBE_REPEATS = 3


def register_provider(
    name: str,
    factory: Callable[[], FFTProvider],
    available: Callable[[], bool],
    description: str = "",
) -> None:
    """Register an additional provider (the extension point for GPU etc.).

    Names are normalised (stripped, lowercased) exactly as lookups are.
    Re-registering an existing name replaces it; the plan-handle cache
    and the autoselect memo are invalidated so the new factory wins.
    """
    name = str(name).strip().lower()
    _REGISTRY[name] = _ProviderEntry(
        factory=factory, available=available, description=description
    )
    from .. import plancache

    plancache.invalidate_provider_plan(name)
    clear_provider_state(keep_default=True)


def provider_names() -> tuple[str, ...]:
    """Registered provider names in listing order."""
    return tuple(_REGISTRY)


def require_known(name: str) -> str:
    """Validate a provider name, returning it normalised."""
    name = str(name).strip().lower()
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown FFT provider {name!r}; registered providers: "
            f"{', '.join(_REGISTRY)}"
        )
    return name


def available_providers() -> dict[str, bool]:
    """Mapping of every registered provider name to its availability."""
    return {name: entry.available() for name, entry in _REGISTRY.items()}


def provider_descriptions() -> dict[str, str]:
    """Mapping of every registered provider name to its one-liner."""
    return {name: entry.description for name, entry in _REGISTRY.items()}


def build_provider(name: str) -> FFTProvider:
    """Construct a provider instance (plancache calls this; use
    :func:`get_provider`, which returns the shared cached handle)."""
    return _REGISTRY[require_known(name)].factory()


def get_provider(name: str) -> FFTProvider:
    """The shared instance of provider *name*.

    Raises :class:`~repro.errors.ConfigurationError` for unknown names
    and for known-but-unavailable ones (an explicit request for scipy
    without scipy installed is an error; only the *resolution* chain
    falls back silently).
    """
    name = require_known(name)
    if not _REGISTRY[name].available():
        raise ConfigurationError(
            f"FFT provider {name!r} is not available on this host "
            "(optional dependency missing)"
        )
    from .. import plancache

    return plancache.provider_plan(name)


def set_default_provider(name: str | None) -> None:
    """Pin the process-wide default provider; ``None`` clears the pin.

    The fleet engine pins every worker to the parent's resolved choice
    so a sharded cohort runs one engine end-to-end (bit-identical
    merges need every shard rounding the same way).
    """
    global _default_override
    if name is None:
        _default_override = None
        return
    name = require_known(name)
    if not _REGISTRY[name].available():
        raise ConfigurationError(
            f"cannot pin unavailable FFT provider {name!r}"
        )
    _default_override = name


def get_default_provider_name() -> str | None:
    """The explicit process-wide pin, if any (used to save/restore it)."""
    return _default_override


@dataclass(frozen=True)
class ProviderChoice:
    """Outcome of one provider auto-selection probe.

    Attributes
    ----------
    provider:
        The chosen provider name.
    workspace_size:
        Transform size the probe ran at.
    source:
        ``"measured"`` (timing probe ran), ``"disk-cache"`` (a prior
        process's measured choice was read back from the persistent
        cache) or ``"fallback"`` (only one provider available — nothing
        to compare).
    timings:
        Name-to-seconds map of the probe (``None`` on the fallback and
        disk-cache paths).
    """

    provider: str
    workspace_size: int
    source: str
    timings: dict[str, float] | None = None


# ----------------------------------------------------------------------
# Persistent autoselect cache
# ----------------------------------------------------------------------
#
# The timing probe is cheap but not free (milliseconds per process), and
# a fleet re-runs it in every short-lived CLI invocation.  Measured
# choices are therefore persisted to a small JSON file keyed by the
# machine identity that could change the outcome — hostname, CPU count
# and the numpy/scipy versions — plus the workspace size, so a later
# process on the same host skips straight to the remembered winner.
# ``REPRO_FFT_PROVIDER=auto`` bypasses the file and forces a fresh probe
# (refreshing the stored choice); persistence failures are silently
# ignored (the cache is an optimisation, never a dependency).


def autoselect_cache_path() -> str:
    """Path of the persistent autoselect cache file.

    Lives under ``$REPRO_CACHE_DIR`` when set
    (:func:`repro.envpins.cache_dir_env_pin`), else
    ``~/.cache/repro/``.
    """
    base = cache_dir_env_pin()
    if base is None:
        base = os.path.join(os.path.expanduser("~"), ".cache", "repro")
    return os.path.join(base, _DISK_CACHE_NAME)


def _disk_cache_key(workspace_size: int) -> str:
    """Identity under which a measured choice stays valid."""
    try:
        import scipy

        scipy_version = scipy.__version__
    except ImportError:  # pragma: no cover - scipy is optional
        scipy_version = "none"
    return "|".join(
        [
            socket.gethostname(),
            f"cpu{os.cpu_count() or 1}",
            f"numpy{np.__version__}",
            f"scipy{scipy_version}",
            f"ws{int(workspace_size)}",
        ]
    )


def _disk_cache_load(workspace_size: int) -> str | None:
    """The remembered provider for this machine key, if any."""
    try:
        with open(autoselect_cache_path(), encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict):
        return None
    value = data.get(_disk_cache_key(workspace_size))
    return value if isinstance(value, str) else None


def _disk_cache_store(workspace_size: int, provider: str) -> None:
    """Persist a measured choice (atomic, best-effort)."""
    path = autoselect_cache_path()
    try:
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
        if not isinstance(data, dict):
            data = {}
        data[_disk_cache_key(workspace_size)] = provider
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
        os.replace(tmp, path)
    except OSError:
        pass


def clear_autoselect_disk_cache() -> None:
    """Delete the persistent autoselect cache file (test/refresh hook)."""
    try:
        os.remove(autoselect_cache_path())
    except OSError:
        pass


def autoselect(
    workspace_size: int = 512,
    rows: int = _PROBE_ROWS,
    repeats: int = _PROBE_REPEATS,
) -> ProviderChoice:
    """Time the available fast providers once, keep the best (memoised).

    The probe transforms one small complex batch per provider
    (best-of-*repeats*); the result is memoised per workspace size so
    the lazy first-use path pays it once per process.  Selection only
    affects throughput — all providers are ``np.allclose``-equivalent
    and operation counts are modelled, never measured.
    """
    # The probe only *times* engines, so any nearby size works — but
    # the explicit provider requires powers of two, and callers may ask
    # about arbitrary workspace sizes (the CLI does).  Round down.
    workspace_size = 1 << (max(int(workspace_size), 8).bit_length() - 1)
    cached = _autoselected.get(workspace_size)
    if cached is not None:
        return cached
    # The explicit oracle is not a probe candidate: it is orders of
    # magnitude slower than any pocketfft engine (timing it would
    # dominate the first-use probe cost), and letting timing noise
    # install it as the process default would be pathological.  It
    # stays selectable through every pin.
    names = [
        name
        for name, entry in _REGISTRY.items()
        if name != "explicit" and entry.available()
    ]
    if not names:
        choice = ProviderChoice(
            provider="explicit",
            workspace_size=workspace_size,
            source="fallback",
        )
        _autoselected[workspace_size] = choice
        return choice
    if len(names) == 1:
        choice = ProviderChoice(
            provider=names[0], workspace_size=workspace_size, source="fallback"
        )
        _autoselected[workspace_size] = choice
        return choice
    # Only the measured branch consults the disk cache: fallback choices
    # are trivially recomputed, and ``REPRO_FFT_PROVIDER=auto`` is the
    # documented "re-probe this host" override, so it bypasses the file
    # (the fresh measurement below then refreshes it).
    force_probe = provider_env_pin() == "auto"
    if not force_probe:
        remembered = _disk_cache_load(workspace_size)
        if remembered in names:
            choice = ProviderChoice(
                provider=remembered,
                workspace_size=workspace_size,
                source="disk-cache",
            )
            _autoselected[workspace_size] = choice
            return choice
    rng = np.random.default_rng(2014)
    batch = (
        rng.standard_normal((rows, workspace_size))
        + 1j * rng.standard_normal((rows, workspace_size))
    )
    timings: dict[str, float] = {}
    for name in names:
        provider = get_provider(name)
        provider.fft_batch(batch)  # warm plans untimed
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            provider.fft_batch(batch)
            best = min(best, time.perf_counter() - start)
        timings[name] = best
    choice = ProviderChoice(
        provider=min(timings, key=timings.get),
        workspace_size=workspace_size,
        source="measured",
        timings=timings,
    )
    _autoselected[workspace_size] = choice
    _disk_cache_store(workspace_size, choice.provider)
    return choice


def autoselect_cached(workspace_size: int = 512) -> ProviderChoice | None:
    """The memoised :func:`autoselect` result, without running the probe.

    Lets read-only consumers (the CLI listing) report the resolution
    state truthfully instead of forcing a timing probe as a side
    effect.
    """
    workspace_size = 1 << (max(int(workspace_size), 8).bit_length() - 1)
    return _autoselected.get(workspace_size)


def resolve_provider_name(
    name: str | None = None, workspace_size: int = 512
) -> str:
    """Resolve the provider name the dispatch chain would use.

    ``name`` is an explicit caller pin (validated strictly); otherwise
    the process pin, the environment variable and the lazy autoselect
    probe are consulted in that order.  An env-pinned provider that is
    unavailable on this host resolves to ``"numpy"`` (the documented
    optional-dependency fallback).
    """
    if name is not None:
        name = require_known(name)
        if not _REGISTRY[name].available():
            raise ConfigurationError(
                f"FFT provider {name!r} is not available on this host"
            )
        return name
    if _default_override is not None:
        return _default_override
    env = provider_env_pin()
    if env is not None:
        if env == "auto":
            return autoselect(workspace_size).provider
        env = require_known(env)
        if not _REGISTRY[env].available():
            return _FALLBACK
        return env
    return autoselect(workspace_size).provider


def active_provider(workspace_size: int = 512) -> FFTProvider:
    """The provider instance the dispatch chain resolves to right now."""
    return get_provider(resolve_provider_name(None, workspace_size))


def clear_provider_state(keep_default: bool = False) -> None:
    """Drop the autoselect memo (and, by default, the process pin).

    Test-isolation hook; cached provider *instances* live in
    :func:`repro.ffts.plancache.provider_plan` and are cleared with
    :func:`repro.ffts.plancache.clear_plan_caches`.
    """
    global _default_override
    _autoselected.clear()
    if not keep_default:
        _default_override = None
