"""Multi-provider FFT execution layer.

Decouples *what transform the paper's system asks for* (and what it
costs on the modelled sensor node) from *which numerical engine executes
it on the host*.  Three providers ship:

* ``explicit`` — the explicit split-radix recursion, the op-count
  oracle every other provider is tested against;
* ``numpy``    — ``numpy.fft`` pocketfft, the always-available default;
* ``scipy``    — ``scipy.fft`` pocketfft with multi-threaded batches,
  auto-skipped when the optional dependency is missing.

Selection goes through :mod:`~repro.ffts.providers.registry`: an
explicit pin, :func:`set_default_provider`, the ``REPRO_FFT_PROVIDER``
environment variable, or a lazy micro-benchmark probe
(:func:`autoselect`).  See ``python -m repro providers`` for the live
view of this registry.
"""

from .base import FFTProvider
from .registry import (
    PROVIDER_ENV_VAR,
    ProviderChoice,
    active_provider,
    autoselect,
    available_providers,
    clear_provider_state,
    get_default_provider_name,
    get_provider,
    provider_descriptions,
    provider_names,
    register_provider,
    resolve_provider_name,
    set_default_provider,
)

__all__ = [
    "FFTProvider",
    "PROVIDER_ENV_VAR",
    "ProviderChoice",
    "active_provider",
    "autoselect",
    "available_providers",
    "clear_provider_state",
    "get_default_provider_name",
    "get_provider",
    "provider_descriptions",
    "provider_names",
    "register_provider",
    "resolve_provider_name",
    "set_default_provider",
]
