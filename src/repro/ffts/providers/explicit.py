"""The explicit split-radix provider — the repository's op-count oracle.

Executes every transform through the explicit split-radix recursion of
:mod:`repro.ffts.split_radix` (the kernels whose closed-form operation
counts the paper's complexity model is built on).  It is the slowest
provider by a wide margin — pure-numpy recursion against pocketfft —
but its numerics define the equivalence oracle every faster provider is
benchmarked and tested against, and it is the engine behind
``use_numpy=False`` / ``sub_backend="split-radix"`` pins.
"""

from __future__ import annotations

import numpy as np

from ..split_radix import split_radix_fft, split_radix_fft_batch
from .. import plancache

__all__ = ["ExplicitProvider"]


class ExplicitProvider:
    """Explicit split-radix recursion (oracle; slow, dependency-free)."""

    name = "explicit"
    description = "explicit split-radix recursion (op-count oracle)"

    def fft(self, x: np.ndarray) -> np.ndarray:
        return split_radix_fft(x)

    def rfft(self, x: np.ndarray) -> np.ndarray:
        return self.rfft_batch(
            np.ascontiguousarray(x, dtype=np.float64)[None, :]
        )[0]

    def fft_batch(self, x: np.ndarray) -> np.ndarray:
        return split_radix_fft_batch(x)

    def rfft_batch(self, x: np.ndarray) -> np.ndarray:
        """Real-input half spectra via one half-length complex transform.

        The classic real-FFT untangling: pack even/odd samples into a
        length-``n/2`` complex vector, run one explicit split-radix
        transform of that half length, and recombine — so the fused
        real path costs this provider the same work per real transform
        as the packed complex pipeline did, not a full-length FFT per
        workspace.
        """
        arr = np.ascontiguousarray(x, dtype=np.float64)
        rows, n = arr.shape
        if n < 4:
            full = split_radix_fft_batch(arr.astype(np.complex128))
            return full[:, : n // 2 + 1]
        half = n // 2
        z = arr[:, 0::2] + 1j * arr[:, 1::2]
        spectrum = split_radix_fft_batch(z)
        # Z[k] for k = 0..half (Z[half] wraps to Z[0]) and conj(Z[half-k]).
        z_pos = np.concatenate([spectrum, spectrum[:, :1]], axis=1)
        z_neg = np.conj(
            np.concatenate([spectrum[:, :1], spectrum[:, ::-1]], axis=1)
        )
        even = 0.5 * (z_pos + z_neg)
        odd = -0.5j * (z_pos - z_neg)
        twiddles = np.exp(-2j * np.pi * np.arange(half + 1) / n)
        return even + twiddles * odd

    def warm(self, n: int) -> None:
        size = int(n)
        while size >= 4:
            plancache.split_radix_twiddles(size)
            size //= 2
