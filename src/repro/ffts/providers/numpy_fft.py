"""The ``numpy.fft`` (pocketfft) provider — the fast, always-available engine.

This is the engine the repository historically hard-wired behind
``use_numpy=True`` / ``sub_backend="numpy"``; the provider layer makes
it one selectable engine among several.  pocketfft keeps an internal
per-size plan cache, so :meth:`warm` simply runs one tiny transform of
each flavour — the fleet engine does this pre-fork so workers inherit
the plans copy-on-write.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NumpyFFTProvider"]


class NumpyFFTProvider:
    """``numpy.fft`` (pocketfft) execution."""

    name = "numpy"
    description = "numpy.fft pocketfft (always available)"
    #: pocketfft (numpy >= 2.0) writes batch results into ``out=``
    #: natively — same plan, same arithmetic, just no fresh allocation.
    supports_out = True

    def fft(self, x: np.ndarray) -> np.ndarray:
        return np.fft.fft(x)

    def rfft(self, x: np.ndarray) -> np.ndarray:
        return np.fft.rfft(x)

    def fft_batch(
        self, x: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        return np.fft.fft(x, axis=1, out=out)

    def rfft_batch(
        self, x: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        return np.fft.rfft(x, axis=1, out=out)

    def warm(self, n: int) -> None:
        np.fft.fft(np.zeros(n, dtype=np.complex128))
        np.fft.rfft(np.zeros(n, dtype=np.float64))
