"""The ``scipy.fft`` provider — pocketfft with multi-threaded execution.

scipy is an **optional** dependency (the ``fast`` extra:
``pip install '.[fast]'`` from the source tree, or plain
``pip install scipy``): the module never imports it at
package-import time, and the registry skips this provider entirely
when the import fails, so the library keeps working on numpy alone.  When present, batch transforms pass
``workers=`` so pocketfft splits the rows across threads — the win over
the numpy provider appears on multi-core hosts with large batches; on a
single CPU the two are equivalent (same pocketfft core).

Thread-count note: ``workers`` splits whole rows between threads and
every row's transform is computed independently, so results are
bit-identical regardless of the worker count — the fleet engine's
shard-exactness guarantee survives this provider.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["ScipyFFTProvider", "scipy_available"]


def _load_scipy_fft():
    """Import ``scipy.fft`` lazily; ``None`` when scipy is not installed."""
    try:
        import scipy.fft as scipy_fft
    except ImportError:  # pragma: no cover - depends on environment
        return None
    return scipy_fft


def scipy_available() -> bool:
    """Whether the optional scipy dependency is importable.

    Test suites monkeypatch this to exercise the registry's
    scipy-missing fallback on hosts that do have scipy.
    """
    return _load_scipy_fft() is not None


class ScipyFFTProvider:
    """``scipy.fft`` pocketfft with ``workers=`` row threading."""

    name = "scipy"
    description = "scipy.fft pocketfft with multi-threaded batches (optional)"

    def __init__(self, workers: int | None = None):
        fft_module = _load_scipy_fft()
        if fft_module is None:
            raise ImportError(
                "scipy is not installed; install it (pip install scipy, "
                "or the package's 'fast' extra: pip install '.[fast]') "
                "to enable this provider"
            )
        self._fft = fft_module
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = max(1, int(workers))

    def fft(self, x: np.ndarray) -> np.ndarray:
        return self._fft.fft(x)

    def rfft(self, x: np.ndarray) -> np.ndarray:
        return self._fft.rfft(x)

    def fft_batch(
        self, x: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        # scipy.fft exposes no out= parameter; per the FFTProvider
        # contract the destination is advisory, so it is ignored and a
        # fresh array returned (supports_out stays unset/False).
        return self._fft.fft(x, axis=1, workers=self.workers)

    def rfft_batch(
        self, x: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        return self._fft.rfft(x, axis=1, workers=self.workers)

    def warm(self, n: int) -> None:
        self._fft.fft(np.zeros(n, dtype=np.complex128))
        self._fft.rfft(np.zeros(n, dtype=np.float64))
