"""The :class:`FFTProvider` protocol — pluggable numerical FFT engines.

The analysis model (which transform the paper's system asks for, and what
it *costs* on the sensor node) is decoupled from the numerical engine
that executes it on the host.  A provider is a stateless executor of
plain power-of-two DFTs:

* ``fft(x)`` / ``fft_batch(x2d)`` — complex spectra of one vector / of a
  dense ``(n_rows, n)`` batch,
* ``rfft(x)`` / ``rfft_batch(x2d)`` — half spectra (``n//2 + 1`` bins)
  of real input, the fast path the Lomb combine uses when no spectrum
  post-processing (pruning equalisation) is in play,
* ``warm(n)`` — pre-build any per-size execution state (twiddle chains,
  pocketfft plans) so fleet workers inherit it copy-on-write pre-fork.

The batch entry points accept an optional ``out=`` destination so the
steady-state streaming path can reuse workspace-arena buffers instead of
allocating a fresh spectrum per call.  ``out=`` is strictly advisory:
a provider that cannot write in place (scipy's pocketfft wrapper takes
no ``out``; third-party providers may predate the keyword) simply
ignores it and returns a fresh array, and callers must always use the
*returned* array.  Providers that do honor it advertise
``supports_out = True`` — the dispatch layer
(:class:`repro.ffts.backends.SplitRadixFFT`) checks that flag before
passing a destination, so pre-``out=`` providers keep working
unchanged (the explicit oracle deliberately stays that way).

Providers never participate in operation accounting: modelled op counts
always come from the explicit split-radix / wavelet closed forms, which
is what keeps every provider's counts identical by construction.  The
contract is numerical: every provider's spectra must be ``np.allclose``
to the explicit kernels (the oracle), and per-row results must not
depend on how rows were batched together (composition independence, the
property the fleet engine's bit-identical shard merging rests on).

Concrete providers live next to this module (``explicit``, ``numpy``,
``scipy``); the registry (:mod:`~repro.ffts.providers.registry`) selects
between them.  Provider instances are cached as plan handles in
:mod:`~repro.ffts.plancache`.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["FFTProvider"]


@runtime_checkable
class FFTProvider(Protocol):
    """Structural type of a numerical FFT execution engine."""

    #: Registry name (``"explicit"``, ``"numpy"``, ``"scipy"``, ...).
    name: str
    #: One-line description for the CLI listing.
    description: str

    def fft(self, x: np.ndarray) -> np.ndarray: ...

    def rfft(self, x: np.ndarray) -> np.ndarray: ...

    def fft_batch(
        self, x: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray: ...

    def rfft_batch(
        self, x: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray: ...

    def warm(self, n: int) -> None: ...
