"""Module-level plan cache for design-time transform data.

Every kernel in this library separates *planning* (computing twiddle
factors, pruning masks, index permutations, interpolation tables) from
*execution*.  Planning is pure — it depends only on the transform
geometry ``(n, basis, levels, pruning, order)`` — yet the convenience
entry points historically re-derived it on every call: ``radix2_fft``
rebuilt its bit-reversal permutation, ``wavelet_fft`` re-planned a full
:class:`~repro.ffts.wavelet_fft.WaveletFFT`, and every ``extirpolate``
call recomputed the Lagrange denominator table from ``math.factorial``.

This module is the single memoisation point for all of that design-time
data.  Cached arrays are returned **read-only** (callers only ever index
or multiply by them) and cached plan objects are stateless after
construction, so sharing them between analysers is safe.  Caches are
process-wide, size-bounded LRU maps (:class:`_BoundedCache`) guarded by
the GIL; a racing rebuild is harmless (both threads compute the same
value), entries :func:`warm_execution_caches` deliberately warmed are
pinned against eviction, and :func:`plan_cache_detail` surfaces each
cache's hit/miss/eviction counters.

The cache is what makes the batched execution engine cheap to drive:
:class:`~repro.core.system.ConventionalPSA` /
:class:`~repro.core.system.QualityScalablePSA` instances and repeated
:class:`~repro.lomb.fast.FastLomb` constructions all resolve to the same
shared, fully-planned kernels.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from functools import lru_cache
from typing import TYPE_CHECKING

import numpy as np

from .._validation import require_power_of_two
from ..errors import SignalError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..wavelets.filters import WaveletFilter
    from .backends import SplitRadixFFT
    from .providers.base import FFTProvider
    from .pruning import PruningSpec
    from .wavelet_fft import WaveletFFT

__all__ = [
    "bit_reversal",
    "split_radix_twiddles",
    "radix2_stage_twiddles",
    "lagrange_denominators",
    "twiddle_pair",
    "wavelet_keep_masks",
    "wavelet_plan",
    "split_radix_plan",
    "provider_plan",
    "warm_execution_caches",
    "plan_cache_stats",
    "plan_cache_detail",
    "clear_plan_caches",
]

#: Bound on the memoised design-table functions below.  Each entry is a
#: per-size table; 256 distinct geometries is far beyond any real run
#: (one study uses a handful of workspace sizes) while keeping a
#: pathological size sweep from growing the tables without limit.
_TABLE_CACHE_SIZE = 256


class _BoundedCache:
    """Size-bounded LRU mapping with pin protection for warmed entries.

    The dictionary caches below used to be unbounded — fine for a study
    that visits a handful of geometries, but a long-lived server sweeping
    sizes or ad-hoc filter banks would grow them forever.  This wrapper
    keeps plain-dict semantics (``get``/``put``/``len``/``clear``) and
    adds:

    * **LRU eviction** past ``maxsize`` — a ``get`` or ``put`` refreshes
      the entry's recency; the least recently used *unpinned* entry goes
      first.
    * **Pins** — :func:`warm_execution_caches` pins what it warms, so a
      deliberately warmed fleet plan can never be evicted by cache
      pressure from incidental geometries (pinned entries do not count
      against ``maxsize``).
    * **Counters** — hits/misses/evictions, surfaced by
      :func:`plan_cache_detail`.
    """

    def __init__(self, maxsize: int):
        self.maxsize = int(maxsize)
        self._data: OrderedDict = OrderedDict()
        self._pinned: set = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key, default=None):
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        self._evict()

    def pin(self, key) -> None:
        """Protect *key* from eviction (no-op when absent)."""
        if key in self._data:
            self._pinned.add(key)

    def _evict(self) -> None:
        over = (len(self._data) - len(self._pinned)) - self.maxsize
        if over <= 0:
            return
        for key in list(self._data):
            if over <= 0:
                break
            if key in self._pinned:
                continue
            del self._data[key]
            self.evictions += 1
            over -= 1

    def pop(self, key, default=None):
        self._pinned.discard(key)
        return self._data.pop(key, default)

    def clear(self) -> None:
        self._data.clear()
        self._pinned.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def stats(self) -> dict[str, int]:
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "pinned": len(self._pinned),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


def _freeze(arr: np.ndarray) -> np.ndarray:
    """Mark a cached array immutable so shared plans cannot be corrupted."""
    arr.setflags(write=False)
    return arr


# ----------------------------------------------------------------------
# Index permutations and twiddle tables
# ----------------------------------------------------------------------


@lru_cache(maxsize=_TABLE_CACHE_SIZE)
def bit_reversal(n: int) -> np.ndarray:
    """Memoised bit-reversal permutation for the iterative radix-2 FFT.

    The returned array is read-only and shared between callers; index
    with it (``x[perm]``) rather than mutating it.
    """
    n = require_power_of_two(n, "n")
    bits = int(np.log2(n))
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        reversed_indices = (reversed_indices << 1) | (indices & 1)
        indices >>= 1
    return _freeze(reversed_indices)


@lru_cache(maxsize=_TABLE_CACHE_SIZE)
def split_radix_twiddles(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Memoised ``(w1, w3)`` twiddle pair of one split-radix recursion level.

    ``w1[k] = exp(-2j pi k / n)`` and ``w3[k] = exp(-6j pi k / n)`` for
    ``k < n/4`` — the factors applied to the two odd quarter-length
    sub-transforms.  Recursion levels share the cache, so planning a
    length-``n`` transform also warms every smaller size it visits.
    """
    n = require_power_of_two(n, "n")
    k = np.arange(n // 4)
    w1 = np.exp(-2j * np.pi * k / n)
    w3 = np.exp(-6j * np.pi * k / n)
    return _freeze(w1), _freeze(w3)


@lru_cache(maxsize=_TABLE_CACHE_SIZE)
def radix2_stage_twiddles(n: int) -> tuple[np.ndarray, ...]:
    """Memoised per-stage twiddle vectors of the iterative radix-2 FFT."""
    n = require_power_of_two(n, "n")
    stages: list[np.ndarray] = []
    span = 1
    while span < n:
        stages.append(_freeze(np.exp(-1j * np.pi * np.arange(span) / span)))
        span *= 2
    return tuple(stages)


@lru_cache(maxsize=_TABLE_CACHE_SIZE)
def lagrange_denominators(order: int) -> np.ndarray:
    """Memoised reverse-Lagrange denominator table of one interpolation order.

    ``denom[c] = (-1)^(order-1-c) * c! * (order-1-c)!`` — the constant part
    of the extirpolation weights, previously rebuilt from
    ``math.factorial`` on every :func:`~repro.lomb.extirpolation.extirpolate`
    call.
    """
    order = int(order)
    if order < 2 or order > 10:
        raise SignalError(f"order must be in [2, 10], got {order}")
    denominators = np.array(
        [
            ((-1.0) ** (order - 1 - c))
            * math.factorial(c)
            * math.factorial(order - 1 - c)
            for c in range(order)
        ]
    )
    return _freeze(denominators)


# ----------------------------------------------------------------------
# Wavelet-FFT design data
# ----------------------------------------------------------------------

_TWIDDLE_PAIRS = _BoundedCache(maxsize=128)
_KEEP_MASKS = _BoundedCache(maxsize=128)
_WAVELET_PLANS = _BoundedCache(maxsize=64)
_SPLIT_RADIX_PLANS = _BoundedCache(maxsize=64)


def _bank_key(bank: "WaveletFilter") -> tuple:
    """Hashable identity of a filter bank (registry name is not enough
    for ad-hoc :class:`WaveletFilter` instances, so the taps are keyed)."""
    return (bank.name, bank.lowpass.tobytes(), bank.highpass.tobytes())


def twiddle_pair(n: int, bank: "WaveletFilter") -> tuple[np.ndarray, np.ndarray]:
    """Memoised ``(H_L, H_H)`` modified twiddle factors of paper eq. 6.

    Equivalent to :func:`repro.wavelets.freq.twiddle_pair` but cached per
    ``(n, filter bank)``; building the responses loops over the filter
    taps and is the most expensive step of :class:`WaveletFFT` planning.
    """
    key = (require_power_of_two(n, "n"), *_bank_key(bank))
    pair = _TWIDDLE_PAIRS.get(key)
    if pair is None:
        from ..wavelets.freq import filter_response

        pair = (
            _freeze(filter_response(bank.lowpass, n)),
            _freeze(filter_response(bank.highpass, n)),
        )
        _TWIDDLE_PAIRS.put(key, pair)
    return pair


def wavelet_keep_masks(
    n: int, bank: "WaveletFilter", band_drop: bool, twiddle_fraction: float
) -> tuple[np.ndarray, np.ndarray]:
    """Memoised static keep-masks over the HL/HH factor applications.

    Band drop removes the whole HH channel before the twiddle-set
    fraction is applied to the remaining applications (the paper's Modes
    combine both levers); see :class:`~repro.ffts.wavelet_fft.WaveletFFT`
    for how dynamic pruning reuses these masks as its candidate set.
    """
    n = require_power_of_two(n, "n")
    key = (n, *_bank_key(bank), bool(band_drop), float(twiddle_fraction))
    masks = _KEEP_MASKS.get(key)
    if masks is None:
        from .pruning import static_twiddle_mask

        hl, hh = twiddle_pair(n, bank)
        hh_active = not band_drop
        if twiddle_fraction > 0:
            if hh_active:
                mags = np.concatenate([np.abs(hl), np.abs(hh)])
                keep = static_twiddle_mask(mags, twiddle_fraction)
                hl_keep = keep[:n]
                hh_keep = keep[n:]
            else:
                hl_keep = static_twiddle_mask(np.abs(hl), twiddle_fraction)
                hh_keep = np.zeros(n, dtype=bool)
        else:
            hl_keep = np.ones(n, dtype=bool)
            hh_keep = (
                np.ones(n, dtype=bool) if hh_active else np.zeros(n, dtype=bool)
            )
        masks = (_freeze(hl_keep), _freeze(hh_keep))
        _KEEP_MASKS.put(key, masks)
    return masks


# ----------------------------------------------------------------------
# Whole-plan caches
# ----------------------------------------------------------------------


def wavelet_plan(
    n: int,
    basis="haar",
    levels: int = 1,
    pruning: "PruningSpec | None" = None,
    sub_backend: str = "auto",
) -> "WaveletFFT":
    """Shared, fully-planned :class:`WaveletFFT` for the given geometry.

    Plans are stateless after construction, so one instance safely serves
    every caller with the same ``(n, basis, levels, pruning, sub_backend)``
    key — this is what keeps :func:`~repro.ffts.wavelet_fft.wavelet_fft`
    and repeated :class:`~repro.core.system.QualityScalablePSA`
    construction from re-deriving twiddles and masks.

    Whole plans are only cached for design-time geometries.  A spec
    carrying a calibrated ``dynamic_threshold`` is keyed by a
    data-derived float — per-recording calibration would grow the cache
    without bound — so those plans are built fresh each time (still
    cheap: their twiddles and masks come from the shared caches above).
    """
    from ..wavelets.filters import WaveletFilter, get_filter
    from .pruning import PruningSpec
    from .wavelet_fft import WaveletFFT

    bank = basis if isinstance(basis, WaveletFilter) else get_filter(basis)
    spec = pruning if pruning is not None else PruningSpec.none()
    if spec.dynamic_threshold is not None:
        return WaveletFFT(
            n, basis=bank, levels=levels, pruning=spec, sub_backend=sub_backend
        )
    key = (
        require_power_of_two(n, "n"),
        *_bank_key(bank),
        int(levels),
        spec,
        sub_backend,
    )
    plan = _WAVELET_PLANS.get(key)
    if plan is None:
        plan = WaveletFFT(
            n, basis=bank, levels=levels, pruning=spec, sub_backend=sub_backend
        )
        _WAVELET_PLANS.put(key, plan)
    return plan


def split_radix_plan(n: int, use_numpy: bool = True) -> "SplitRadixFFT":
    """Shared :class:`SplitRadixFFT` plan (stateless, safe to share)."""
    from .backends import SplitRadixFFT

    key = (require_power_of_two(n, "n"), bool(use_numpy))
    plan = _SPLIT_RADIX_PLANS.get(key)
    if plan is None:
        plan = SplitRadixFFT(n, use_numpy=use_numpy)
        _SPLIT_RADIX_PLANS.put(key, plan)
    return plan


_PROVIDER_PLANS = _BoundedCache(maxsize=32)


def provider_plan(name: str) -> "FFTProvider":
    """Shared execution-provider handle (stateless, safe to share).

    One instance per registered provider name; built through
    :func:`repro.ffts.providers.registry.build_provider`.  Callers go
    through :func:`repro.ffts.providers.registry.get_provider`, which
    validates the name and its availability first.
    """
    plan = _PROVIDER_PLANS.get(name)
    if plan is None:
        from .providers.registry import build_provider

        plan = build_provider(name)
        _PROVIDER_PLANS.put(name, plan)
    return plan


def invalidate_provider_plan(name: str) -> None:
    """Drop one cached provider handle (re-registration hook)."""
    _PROVIDER_PLANS.pop(name, None)


# ----------------------------------------------------------------------
# Pre-fork warm-up
# ----------------------------------------------------------------------


def warm_execution_caches(
    n: int, order: int = 4, provider: str | None = None
) -> None:
    """Build every execution-time table an ``n``-point run can touch.

    Plan construction warms the design-time caches, but some tables are
    only resolved at *transform* time (the split-radix twiddle chain of
    the explicit recursion, the radix-2 stage tables, the Lagrange
    extirpolation denominators, the execution provider's per-size
    state).  The fleet engine calls this in the parent **before**
    forking its worker pool so the tables are inherited copy-on-write
    instead of being rebuilt once per worker; spawn-based pools call it
    again in each worker's initializer, where it warms that process's
    own caches.

    ``provider`` names the resolved FFT execution provider to warm for
    size ``n`` (and the half-size the fused real path and wavelet
    sub-FFTs use); ``None`` skips provider warm-up.
    """
    n = require_power_of_two(n, "n")
    size = n
    while size >= 4:
        split_radix_twiddles(size)
        size //= 2
    bit_reversal(n)
    radix2_stage_twiddles(n)
    lagrange_denominators(order)
    if provider is not None:
        from .providers.registry import get_provider

        engine = get_provider(provider)
        engine.warm(n)
        if n >= 8:
            engine.warm(n // 2)
        # A deliberately warmed provider handle must survive cache
        # pressure from incidental geometries for the process lifetime.
        _PROVIDER_PLANS.pin(provider)


# ----------------------------------------------------------------------
# Introspection / test hooks
# ----------------------------------------------------------------------


def plan_cache_stats() -> dict[str, int]:
    """Current entry counts of every cache (for tests and diagnostics).

    Values are plain entry counts; see :func:`plan_cache_detail` for the
    bounded caches' hit/miss/eviction/pin counters.
    """
    return {
        "bit_reversal": bit_reversal.cache_info().currsize,
        "split_radix_twiddles": split_radix_twiddles.cache_info().currsize,
        "radix2_stage_twiddles": radix2_stage_twiddles.cache_info().currsize,
        "lagrange_denominators": lagrange_denominators.cache_info().currsize,
        "twiddle_pairs": len(_TWIDDLE_PAIRS),
        "keep_masks": len(_KEEP_MASKS),
        "wavelet_plans": len(_WAVELET_PLANS),
        "split_radix_plans": len(_SPLIT_RADIX_PLANS),
        "provider_plans": len(_PROVIDER_PLANS),
    }


def plan_cache_detail() -> dict[str, dict[str, int]]:
    """Per-cache LRU counters (size/maxsize/pinned/hits/misses/evictions).

    Complements the flat entry counts of :func:`plan_cache_stats` with
    the bounded caches' behaviour counters — the diagnostic surface for
    confirming a warmed fleet keeps hitting its pinned plans.
    """
    return {
        "twiddle_pairs": _TWIDDLE_PAIRS.stats(),
        "keep_masks": _KEEP_MASKS.stats(),
        "wavelet_plans": _WAVELET_PLANS.stats(),
        "split_radix_plans": _SPLIT_RADIX_PLANS.stats(),
        "provider_plans": _PROVIDER_PLANS.stats(),
    }


def clear_plan_caches() -> None:
    """Drop every cached table and plan (test isolation hook)."""
    bit_reversal.cache_clear()
    split_radix_twiddles.cache_clear()
    radix2_stage_twiddles.cache_clear()
    lagrange_denominators.cache_clear()
    _TWIDDLE_PAIRS.clear()
    _KEEP_MASKS.clear()
    _WAVELET_PLANS.clear()
    _SPLIT_RADIX_PLANS.clear()
    _PROVIDER_PLANS.clear()
