"""Operation accounting for the transform kernels.

The paper's complexity results (Fig. 5) and its energy model are driven by
*real* operation counts — real multiplications, real additions and (for
dynamic pruning) comparisons.  This module defines the count container and
the costing conventions shared by all kernels:

* a generic complex x complex multiplication costs 4 mults + 2 adds,
* a real scalar times a complex value costs 2 mults,
* multiplication by zero (a pruned factor) is free,
* a complex addition costs 2 real adds,
* a runtime significance check (dynamic pruning) costs 1 add (the
  ``|re| + |im|`` magnitude proxy), 1 mult (product with the factor
  magnitude) and 1 comparison per checked term.

These conventions are what a fixed-point C kernel on the paper's sensor
node would exhibit, and they reproduce the paper's reported savings (the
integration tests against the paper's tables document the calibration).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "OpCounts",
    "COMPLEX_MULT",
    "REAL_SCALED_COMPLEX_MULT",
    "COMPLEX_ADD",
    "DYNAMIC_CHECK",
]


@dataclass(frozen=True)
class OpCounts:
    """Immutable tally of real arithmetic operations.

    Attributes
    ----------
    mults:
        Real multiplications.
    adds:
        Real additions/subtractions.
    compares:
        Magnitude comparisons (only dynamic pruning issues these).
    """

    mults: int = 0
    adds: int = 0
    compares: int = 0

    def __add__(self, other: "OpCounts") -> "OpCounts":
        if not isinstance(other, OpCounts):
            return NotImplemented
        return OpCounts(
            mults=self.mults + other.mults,
            adds=self.adds + other.adds,
            compares=self.compares + other.compares,
        )

    def __radd__(self, other):
        # Lets ``sum(...)`` start from the int 0.
        if other == 0:
            return self
        return self.__add__(other)

    def scaled(self, factor: int) -> "OpCounts":
        """Counts for *factor* repetitions of the same kernel."""
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        return OpCounts(
            mults=self.mults * factor,
            adds=self.adds * factor,
            compares=self.compares * factor,
        )

    def approx_scaled(self, factor: float) -> "OpCounts":
        """Expected counts under a fractional execution probability.

        Used for design-time estimates of data-dependent kernels (e.g.
        dynamic pruning keeps a calibrated fraction of candidate terms);
        results are rounded to the nearest whole operation.
        """
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        return OpCounts(
            mults=int(round(self.mults * factor)),
            adds=int(round(self.adds * factor)),
            compares=int(round(self.compares * factor)),
        )

    @property
    def total(self) -> int:
        """All arithmetic operations (the quantity Fig. 5 plots)."""
        return self.mults + self.adds + self.compares

    @property
    def arithmetic(self) -> int:
        """Mults + adds, excluding comparisons."""
        return self.mults + self.adds

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view for reporting."""
        return {
            "mults": self.mults,
            "adds": self.adds,
            "compares": self.compares,
            "total": self.total,
        }

    def savings_vs(self, baseline: "OpCounts") -> float:
        """Fractional reduction in total ops relative to *baseline*.

        Positive values mean fewer operations than the baseline (a saving),
        negative values an overhead, matching the way the paper quotes
        e.g. "28% fewer computations than split-radix".
        """
        if baseline.total == 0:
            raise ValueError("baseline has no operations")
        return 1.0 - self.total / baseline.total


#: Cost of one generic complex x complex multiplication.
COMPLEX_MULT = OpCounts(mults=4, adds=2)

#: Cost of scaling a complex value by a purely real (or imaginary) factor.
REAL_SCALED_COMPLEX_MULT = OpCounts(mults=2)

#: Cost of one complex addition.
COMPLEX_ADD = OpCounts(adds=2)

#: Runtime cost of one dynamic-pruning significance check.
DYNAMIC_CHECK = OpCounts(mults=1, adds=1, compares=1)
