"""Uniform FFT-backend interface used by the Fast-Lomb kernel.

Both the conventional system (split-radix FFT, Section II.B) and the
proposed system (pruned wavelet FFT, Sections IV-V) plug into Fast-Lomb
through the same protocol:

* ``transform(x)`` — complex spectrum of a length-``n`` vector,
* ``transform_with_counts(x)`` — same plus executed :class:`OpCounts`,
* ``static_counts()`` — design-time operation counts,
* ``transform_batch(x2d)`` — row-wise spectra of a dense
  ``(n_windows, n)`` batch (the windowed-PSA execution engine),
* ``transform_batch_with_counts(x2d)`` — same plus per-row counts.

:class:`~repro.ffts.wavelet_fft.WaveletFFT` already satisfies it; this
module adds the conventional baseline.  Third-party kernels that only
implement the three sequential methods still work: the Fast-Lomb batch
driver falls back to per-window calls when ``transform_batch`` is
missing.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from .._validation import (
    as_1d_complex_array,
    as_2d_complex_array,
    require_power_of_two,
)
from ..errors import TransformError
from .opcount import OpCounts
from .split_radix import split_radix_counts, split_radix_fft, split_radix_fft_batch

__all__ = ["FFTBackend", "SplitRadixFFT"]


@runtime_checkable
class FFTBackend(Protocol):
    """Structural type of every FFT kernel Fast-Lomb can drive."""

    n: int

    def transform(self, x) -> np.ndarray: ...

    def transform_with_counts(self, x) -> tuple[np.ndarray, OpCounts]: ...

    def static_counts(self) -> OpCounts: ...

    def transform_batch(self, x) -> np.ndarray: ...

    def transform_batch_with_counts(
        self, x
    ) -> tuple[np.ndarray, tuple[OpCounts, ...]]: ...


class SplitRadixFFT:
    """The conventional baseline kernel behind the original PSA system.

    Parameters
    ----------
    n:
        Transform size (power of two).
    use_numpy:
        When True (default) the numerics go through ``numpy.fft`` — this
        is "the numpy backend": the result is identical to the explicit
        split-radix recursion but much faster for cohort-scale
        experiments.  Operation counts always use the split-radix closed
        forms either way.
    """

    def __init__(self, n: int, use_numpy: bool = True):
        self.n = require_power_of_two(n, "n")
        self._use_numpy = bool(use_numpy)
        self._counts = split_radix_counts(self.n)

    def transform(self, x) -> np.ndarray:
        arr = as_1d_complex_array(x, "x")
        if arr.size != self.n:
            raise TransformError(
                f"input length {arr.size} does not match plan size {self.n}"
            )
        if self._use_numpy:
            return np.fft.fft(arr)
        return split_radix_fft(arr)

    def transform_with_counts(self, x) -> tuple[np.ndarray, OpCounts]:
        return self.transform(x), self._counts

    def transform_batch(self, x) -> np.ndarray:
        """Row-wise spectra of a ``(n_windows, n)`` batch.

        Dispatches to ``numpy.fft`` along axis 1 or to the batched
        split-radix recursion; each row matches :meth:`transform`.
        """
        arr = as_2d_complex_array(x, "x", width=self.n)
        if self._use_numpy:
            return np.fft.fft(arr, axis=1)
        return split_radix_fft_batch(arr)

    def transform_batch_with_counts(
        self, x
    ) -> tuple[np.ndarray, tuple[OpCounts, ...]]:
        """Batched transform plus the (static) per-row operation counts."""
        out = self.transform_batch(x)
        return out, (self._counts,) * out.shape[0]

    def static_counts(self) -> OpCounts:
        return self._counts
