"""Uniform FFT-backend interface used by the Fast-Lomb kernel.

Both the conventional system (split-radix FFT, Section II.B) and the
proposed system (pruned wavelet FFT, Sections IV-V) plug into Fast-Lomb
through the same protocol:

* ``transform(x)`` — complex spectrum of a length-``n`` vector,
* ``transform_with_counts(x)`` — same plus executed :class:`OpCounts`,
* ``static_counts()`` — design-time operation counts,
* ``transform_batch(x2d)`` — row-wise spectra of a dense
  ``(n_windows, n)`` batch (the windowed-PSA execution engine),
* ``transform_batch_with_counts(x2d)`` — same plus per-row counts.

:class:`~repro.ffts.wavelet_fft.WaveletFFT` already satisfies it; this
module adds the conventional baseline.  Third-party kernels that only
implement the three sequential methods still work: the Fast-Lomb batch
driver falls back to per-window calls when ``transform_batch`` is
missing.

Execution vs. accounting: since the provider layer landed, the
*numerics* of :class:`SplitRadixFFT` run on whichever FFT execution
provider the registry resolves (:mod:`repro.ffts.providers` — numpy,
scipy, or the explicit split-radix oracle), while the *operation
counts* always come from the split-radix closed forms.  The optional
``rfft`` / ``rfft_batch`` methods expose the provider's real-input
half-spectrum path; Fast-Lomb uses them to skip the pack/unpack stage
when no spectrum post-processing is in play.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from .._validation import (
    as_1d_complex_array,
    as_2d_complex_array,
    require_power_of_two,
)
from ..errors import TransformError
from .opcount import OpCounts
from .providers.base import FFTProvider
from .providers.registry import active_provider, get_provider, require_known
from .split_radix import split_radix_counts

__all__ = ["FFTBackend", "SplitRadixFFT"]


@runtime_checkable
class FFTBackend(Protocol):
    """Structural type of every FFT kernel Fast-Lomb can drive."""

    n: int

    def transform(self, x) -> np.ndarray: ...

    def transform_with_counts(self, x) -> tuple[np.ndarray, OpCounts]: ...

    def static_counts(self) -> OpCounts: ...

    def transform_batch(self, x) -> np.ndarray: ...

    def transform_batch_with_counts(
        self, x
    ) -> tuple[np.ndarray, tuple[OpCounts, ...]]: ...

    # Backends may additionally expose ``supports_out = True`` plus an
    # optional ``out=`` keyword on transform_batch/rfft_batch; callers
    # must check the flag before passing a destination (see
    # :mod:`repro.ffts.providers.base` for the contract).


class SplitRadixFFT:
    """The conventional baseline kernel behind the original PSA system.

    Parameters
    ----------
    n:
        Transform size (power of two).
    use_numpy:
        When True (default) the numerics dispatch through the active
        execution provider (:mod:`repro.ffts.providers` — historically
        this was hard-wired ``numpy.fft``): the result is
        ``np.allclose`` to the explicit split-radix recursion but much
        faster for cohort-scale experiments.  ``use_numpy=False`` pins
        the explicit oracle.  Operation counts always use the
        split-radix closed forms either way.
    provider:
        Optional per-kernel provider pin (a registry name).  ``None``
        defers to the registry's resolution chain (process pin,
        ``REPRO_FFT_PROVIDER``, lazy autoselect) on every call, so a
        long-lived plan follows later pins.
    """

    def __init__(
        self, n: int, use_numpy: bool = True, provider: str | None = None
    ):
        self.n = require_power_of_two(n, "n")
        self._use_numpy = bool(use_numpy)
        if provider is None and not self._use_numpy:
            provider = "explicit"
        if provider is not None:
            provider = require_known(provider)
            get_provider(provider)  # fail at planning if unavailable
        self.provider = provider
        self._counts = split_radix_counts(self.n)

    def _engine(self) -> FFTProvider:
        if self.provider is not None:
            return get_provider(self.provider)
        return active_provider(self.n)

    def transform(self, x) -> np.ndarray:
        arr = as_1d_complex_array(x, "x")
        if arr.size != self.n:
            raise TransformError(
                f"input length {arr.size} does not match plan size {self.n}"
            )
        return self._engine().fft(arr)

    def transform_with_counts(self, x) -> tuple[np.ndarray, OpCounts]:
        return self.transform(x), self._counts

    @property
    def supports_out(self) -> bool:
        """Whether batch calls can honor ``out=`` right now.

        Delegates to the provider the *next* call would resolve (the
        pin chain can change between calls); the explicit oracle and
        third-party providers without the flag report False, and
        callers then simply omit ``out=``.
        """
        return bool(getattr(self._engine(), "supports_out", False))

    def transform_batch(self, x, out: np.ndarray | None = None) -> np.ndarray:
        """Row-wise spectra of a ``(n_windows, n)`` batch.

        Dispatches to the resolved execution provider along axis 1;
        each row matches :meth:`transform`.  ``out=`` is forwarded only
        to providers advertising ``supports_out`` — per the provider
        contract it is advisory, and callers must use the returned
        array.
        """
        arr = as_2d_complex_array(x, "x", width=self.n)
        engine = self._engine()
        if out is not None and getattr(engine, "supports_out", False):
            return engine.fft_batch(arr, out=out)
        return engine.fft_batch(arr)

    def transform_batch_with_counts(
        self, x
    ) -> tuple[np.ndarray, tuple[OpCounts, ...]]:
        """Batched transform plus the (static) per-row operation counts."""
        out = self.transform_batch(x)
        return out, (self._counts,) * out.shape[0]

    def rfft(self, x) -> np.ndarray:
        """Half spectrum (``n//2 + 1`` bins) of one real length-n vector.

        The fused real path of Fast-Lomb: mathematically identical to
        ``transform(x)[: n//2 + 1]`` for real input, at roughly half
        the complex work.  Modelled counts are unchanged — the sensor
        node is costed on the paper's packed complex pipeline.
        """
        arr = np.ascontiguousarray(x, dtype=np.float64)
        if arr.ndim != 1 or arr.size != self.n:
            raise TransformError(
                f"rfft expects a real length-{self.n} vector, got shape "
                f"{arr.shape}"
            )
        return self._engine().rfft(arr)

    def rfft_batch(self, x, out: np.ndarray | None = None) -> np.ndarray:
        """Row-wise half spectra of a real ``(n_windows, n)`` batch.

        ``out=`` follows the same advisory contract as
        :meth:`transform_batch`.
        """
        arr = np.ascontiguousarray(x, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != self.n:
            raise TransformError(
                f"rfft_batch expects a real (rows, {self.n}) batch, got "
                f"shape {arr.shape}"
            )
        engine = self._engine()
        if out is not None and getattr(engine, "supports_out", False):
            return engine.rfft_batch(arr, out=out)
        return engine.rfft_batch(arr)

    def static_counts(self) -> OpCounts:
        return self._counts
