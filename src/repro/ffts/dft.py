"""Direct O(N^2) discrete Fourier transform.

Used as the correctness reference for the fast kernels and as the
worst-case baseline in complexity ablations.  Never used inside the PSA
pipeline itself.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_1d_complex_array
from .opcount import COMPLEX_ADD, COMPLEX_MULT, OpCounts

__all__ = ["direct_dft", "direct_dft_counts"]


def direct_dft(x) -> np.ndarray:
    """Compute the DFT of *x* by direct summation.

    Accepts real or complex input of any length >= 1 and returns the
    complex spectrum with the same convention as ``numpy.fft.fft``.
    """
    arr = as_1d_complex_array(x, "x")
    n = arr.size
    k = np.arange(n)
    phases = np.exp(-2j * np.pi * np.outer(k, k) / n)
    return phases @ arr


def direct_dft_counts(n: int) -> OpCounts:
    """Real-operation count of the direct DFT on complex input.

    Each of the N^2 terms is a generic complex multiplication except the
    first row and column (twiddle 1); each output accumulates N - 1
    complex additions.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    nontrivial_mults = (n - 1) * (n - 1)
    return COMPLEX_MULT.scaled(nontrivial_mults) + COMPLEX_ADD.scaled(n * (n - 1))
