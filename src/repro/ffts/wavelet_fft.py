"""The DWT-based FFT (paper Section IV.B) with significance-driven pruning.

The kernel implements the factorization of eq. 6:

    F_N x = [A B; C D] · [F_{N/2} L ; F_{N/2} H],   [L; H] = W_N x

i.e. one periodic DWT level, two half-length sub-DFTs and a stage of
*modified butterflies* whose twiddle factors are the frequency responses
of the wavelet filters.  ``levels > 1`` recurses the same scheme into the
sub-DFTs (the full binary-tree wavelet packet of Fig. 4); ``levels = 1``
with split-radix sub-DFTs is the configuration whose operation counts the
paper reports, and is the default.

Operation-count conventions (see :mod:`repro.ffts.opcount` and DESIGN.md):
counts model a complex-input transform (the Fast-Lomb packs its two real
workspaces into one complex FFT), the DWT stage is costed as the
lifting/factorized implementation a sensor node would ship, and sub-DFTs
use the closed-form split-radix counts.  Numerical results are exact
(validated against ``numpy.fft``) regardless of the counting model.

Batched execution: :meth:`WaveletFFT.transform_batch` applies the plan to
a dense ``(n_windows, N)`` batch — the DWT stage, both sub-FFTs, the
static keep-masks and the per-row dynamic pruning thresholds all run as
whole-batch array operations with no per-row Python iteration, and
:meth:`WaveletFFT.transform_batch_with_counts` reports executed
:class:`OpCounts` **per row** (identical to what the sequential path
would have counted for that row).  Design-time data (twiddle pairs,
static masks, whole plans) is memoised in :mod:`~repro.ffts.plancache`.
"""

from __future__ import annotations

import numpy as np

from .._validation import (
    as_1d_complex_array,
    as_2d_complex_array,
    require_power_of_two,
)
from ..errors import ConfigurationError, TransformError
from ..wavelets.dwt import dwt_level, dwt_level_batch
from ..wavelets.filters import WaveletFilter, get_filter
from . import plancache
from .opcount import (
    COMPLEX_ADD,
    COMPLEX_MULT,
    DYNAMIC_CHECK,
    REAL_SCALED_COMPLEX_MULT,
    OpCounts,
)
from .providers import registry
from .pruning import PruningSpec
from .split_radix import split_radix_counts

__all__ = ["WaveletFFT", "wavelet_fft", "dwt_stage_cost"]

_ZERO_ATOL = 1e-12

#: Cap on the band-drop equalisation gain (bins near N/2 are dead after
#: the drop; boosting them would only amplify noise).
_MAX_EQUALIZER_GAIN = 16.0

#: Fraction of a dynamic mode's candidate terms expected to be pruned:
#: the calibrated data threshold sits at this quantile of the candidate
#: data-magnitude distribution (design-time choice, see core.calibration).
DYNAMIC_DATA_FRACTION = 0.75

#: Factor classification codes used by the op counter.
_FACTOR_ZERO = 0
_FACTOR_AXIS = 1  # purely real or purely imaginary: 2 real mults
_FACTOR_GENERIC = 2  # generic complex: 4 real mults + 2 real adds


def dwt_stage_cost(bank: WaveletFilter) -> tuple[int, int]:
    """(mults, adds) per *complex* DWT output sample for the given basis.

    Haar is costed as the factorized butterfly ``s*(a +/- b)`` (1 mult +
    1 add per real output); longer Daubechies banks as their lifting
    factorization, which needs ``taps + 1`` mults and ``taps`` adds per
    complex output — about half the cost of direct convolution and what
    an optimised embedded implementation would use.
    """
    if bank.length == 2:
        return (2, 2)
    return (bank.length + 1, bank.length)


def _classify_factors(factors: np.ndarray) -> np.ndarray:
    """Map each complex factor to its multiplication-cost class."""
    codes = np.full(factors.shape, _FACTOR_GENERIC, dtype=np.int8)
    real_only = np.abs(factors.imag) <= _ZERO_ATOL
    imag_only = np.abs(factors.real) <= _ZERO_ATOL
    codes[real_only | imag_only] = _FACTOR_AXIS
    codes[real_only & imag_only] = _FACTOR_ZERO
    return codes


def _mult_cost(codes: np.ndarray, active: np.ndarray) -> OpCounts:
    """Total multiplication cost of the active factor applications."""
    generic = int(np.count_nonzero(active & (codes == _FACTOR_GENERIC)))
    axis = int(np.count_nonzero(active & (codes == _FACTOR_AXIS)))
    return COMPLEX_MULT.scaled(generic) + REAL_SCALED_COMPLEX_MULT.scaled(axis)


class WaveletFFT:
    """Plan-and-execute DWT-based FFT with optional pruning.

    Parameters
    ----------
    n:
        Transform size (power of two, >= 4).
    basis:
        Wavelet basis name or :class:`~repro.wavelets.filters.WaveletFilter`;
        the paper evaluates ``"haar"`` (chosen), ``"db2"`` and ``"db4"``.
    levels:
        Depth of the wavelet stage.  1 (default) is the paper's
        configuration — eq. 6 with fast sub-DFTs; larger values recurse
        toward the full packet tree of Fig. 4 (pruning stays at the top).
    pruning:
        A :class:`~repro.ffts.pruning.PruningSpec`; ``None`` means exact.
    sub_backend:
        Innermost sub-DFT numerics: ``"auto"`` (default) dispatches
        through the active execution provider's resolution chain
        (:mod:`repro.ffts.providers`), ``"split-radix"`` pins the
        explicit baseline recursion, and any registered provider name
        (``"numpy"``, ``"scipy"``, ...) pins that provider.  All
        produce ``np.allclose`` results; operation counts always use
        the split-radix closed forms.
    """

    def __init__(
        self,
        n: int,
        basis="haar",
        levels: int = 1,
        pruning: PruningSpec | None = None,
        sub_backend: str = "auto",
    ):
        self.n = require_power_of_two(n, "n")
        if self.n < 4:
            raise ConfigurationError(f"WaveletFFT needs n >= 4, got {n}")
        self.bank = basis if isinstance(basis, WaveletFilter) else get_filter(basis)
        max_levels = int(np.log2(self.n)) - 1
        if not 1 <= levels <= max_levels:
            raise ConfigurationError(
                f"levels must be in [1, {max_levels}] for n={self.n}, got {levels}"
            )
        self.levels = int(levels)
        self.pruning = pruning if pruning is not None else PruningSpec.none()
        if sub_backend not in ("auto", "split-radix"):
            try:
                sub_backend = registry.require_known(sub_backend)
            except Exception:
                raise ConfigurationError(
                    "sub_backend must be 'auto', 'split-radix' or a "
                    f"registered FFT provider name, got {sub_backend!r}"
                ) from None
            registry.get_provider(sub_backend)  # fail now if unavailable
        self.sub_backend = sub_backend

        hl, hh = plancache.twiddle_pair(self.n, self.bank)
        self._hl = hl
        self._hh = hh
        self._hl_codes = _classify_factors(hl)
        self._hh_codes = _classify_factors(hh)

        # Static keep-masks over factor applications (memoised in the plan
        # cache).  Band drop removes the whole HH channel before the
        # twiddle-set fraction is applied to the remaining applications
        # (the paper's Modes combine both).  Dynamic pruning uses the same
        # masks to define its *candidates*: a term is eliminated at run
        # time only when its factor is statically below the set threshold
        # AND its data magnitude is below the calibrated data threshold —
        # a subset of the static victims, hence the lower distortion at a
        # small energy overhead (paper Section VI.C).
        self._hh_active = not self.pruning.band_drop
        self._hl_keep, self._hh_keep = plancache.wavelet_keep_masks(
            self.n, self.bank, self.pruning.band_drop, self.pruning.twiddle_fraction
        )

        self._child: WaveletFFT | None = None
        if self.levels > 1:
            self._child = WaveletFFT(
                self.n // 2,
                basis=self.bank,
                levels=self.levels - 1,
                pruning=None,
                sub_backend=sub_backend,
            )

    # ------------------------------------------------------------------
    # Numerics
    # ------------------------------------------------------------------

    def _sub_engine(self):
        """The execution provider behind the innermost sub-DFTs.

        ``"auto"`` defers to the registry's resolution chain on every
        call (so long-lived cached plans follow later provider pins);
        ``"split-radix"`` maps to the explicit oracle provider and any
        other value is a pinned provider name (validated at planning,
        availability included).
        """
        if self.sub_backend == "auto":
            return registry.active_provider(self.n // 2)
        if self.sub_backend == "split-radix":
            return registry.get_provider("explicit")
        return registry.get_provider(self.sub_backend)

    def _sub_transform(self, x: np.ndarray) -> np.ndarray:
        if self._child is not None:
            return self._child.transform(x)
        return self._sub_engine().fft(x)

    def _sub_transform_batch(self, x: np.ndarray) -> np.ndarray:
        if self._child is not None:
            return self._child.transform_batch(x)
        return self._sub_engine().fft_batch(x)

    def _runtime_keep_masks(
        self, l_tiled: np.ndarray, h_tiled: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Dynamic keep-masks and the number of comparisons spent.

        Candidates are the terms whose factor falls below the static set
        threshold (known at design time, so only those pay a check).  A
        candidate survives when its data magnitude proxy ``|re| + |im|``
        reaches the calibrated data threshold; with no calibrated value
        the per-sample quantile at ``DYNAMIC_DATA_FRACTION`` is used.
        """
        spec = self.pruning
        hl_cand = (~self._hl_keep) & (self._hl_codes != _FACTOR_ZERO)
        proxy_l = np.abs(l_tiled.real) + np.abs(l_tiled.imag)
        pieces = [proxy_l[hl_cand]]
        if h_tiled is not None:
            hh_cand = (~self._hh_keep) & (self._hh_codes != _FACTOR_ZERO)
            proxy_h = np.abs(h_tiled.real) + np.abs(h_tiled.imag)
            pieces.append(proxy_h[hh_cand])
        else:
            hh_cand = np.zeros(self.n, dtype=bool)
        proxies = np.concatenate(pieces)
        checks = int(proxies.size)
        if spec.dynamic_threshold is not None:
            threshold = spec.dynamic_threshold
        elif checks:
            threshold = float(np.quantile(proxies, DYNAMIC_DATA_FRACTION))
        else:
            threshold = 0.0
        hl_keep = self._hl_keep | (hl_cand & (proxy_l >= threshold))
        if h_tiled is not None:
            hh_keep = self._hh_keep | (hh_cand & (proxy_h >= threshold))
        else:
            hh_keep = np.zeros(self.n, dtype=bool)
        return hl_keep, hh_keep, checks

    def transform(self, x) -> np.ndarray:
        """Apply the (possibly pruned) transform; returns the spectrum."""
        result, _ = self._execute(x, count=False)
        return result

    def transform_with_counts(self, x) -> tuple[np.ndarray, OpCounts]:
        """Apply the transform and report the real operations performed."""
        result, breakdown = self._execute(x, count=True)
        return result, sum(breakdown.values(), OpCounts())

    def count_breakdown(self, x) -> dict[str, OpCounts]:
        """Per-stage operation counts for the given input."""
        _, breakdown = self._execute(x, count=True)
        return breakdown

    def _execute(
        self, x, count: bool
    ) -> tuple[np.ndarray, dict[str, OpCounts]]:
        arr = as_1d_complex_array(x, "x")
        if arr.size != self.n:
            raise TransformError(
                f"input length {arr.size} does not match plan size {self.n}"
            )
        spec = self.pruning
        xl, xh = dwt_level(arr, self.bank)
        sub_l = self._sub_transform(xl)
        l_tiled = np.tile(sub_l, 2)
        if self._hh_active:
            sub_h = self._sub_transform(xh)
            h_tiled = np.tile(sub_h, 2)
        else:
            h_tiled = None

        if spec.dynamic and not spec.is_exact:
            hl_keep, hh_keep, checks = self._runtime_keep_masks(l_tiled, h_tiled)
        else:
            hl_keep, hh_keep, checks = self._hl_keep, self._hh_keep, 0

        hl_active = hl_keep & (self._hl_codes != _FACTOR_ZERO)
        hh_active = hh_keep & (self._hh_codes != _FACTOR_ZERO)

        out = np.where(hl_active, self._hl, 0.0) * l_tiled
        if h_tiled is not None:
            out = out + np.where(hh_active, self._hh, 0.0) * h_tiled

        breakdown: dict[str, OpCounts] = {}
        if count:
            breakdown = self._count_stages(hl_active, hh_active, checks)
        return out, breakdown

    # ------------------------------------------------------------------
    # Batched numerics
    # ------------------------------------------------------------------

    def transform_batch(self, x) -> np.ndarray:
        """Apply the plan to a ``(n_rows, n)`` batch; returns the spectra.

        Each row is transformed exactly as :meth:`transform` would have
        transformed it (dynamic pruning thresholds are still calibrated
        per row), but the whole batch executes as dense array operations.
        """
        result, _ = self._execute_batch(x, count=False)
        return result

    def transform_batch_with_counts(
        self, x
    ) -> tuple[np.ndarray, tuple[OpCounts, ...]]:
        """Batched transform plus the executed :class:`OpCounts` per row."""
        result, per_row = self._execute_batch(x, count=True)
        return result, per_row

    def _runtime_keep_masks_batch(
        self, l_tiled: np.ndarray, h_tiled: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Per-row dynamic keep-masks over a batch.

        Vectorised version of :meth:`_runtime_keep_masks`: the candidate
        set is static (shared by all rows) while the data threshold is
        the per-row quantile of that row's candidate magnitudes, so every
        row prunes exactly as the sequential path would have.
        """
        spec = self.pruning
        rows = l_tiled.shape[0]
        hl_cand = (~self._hl_keep) & (self._hl_codes != _FACTOR_ZERO)
        proxy_l = np.abs(l_tiled.real) + np.abs(l_tiled.imag)
        pieces = [proxy_l[:, hl_cand]]
        if h_tiled is not None:
            hh_cand = (~self._hh_keep) & (self._hh_codes != _FACTOR_ZERO)
            proxy_h = np.abs(h_tiled.real) + np.abs(h_tiled.imag)
            pieces.append(proxy_h[:, hh_cand])
        else:
            hh_cand = np.zeros(self.n, dtype=bool)
        proxies = np.concatenate(pieces, axis=1)
        checks = int(proxies.shape[1])
        if spec.dynamic_threshold is not None:
            threshold = np.full(rows, spec.dynamic_threshold)
        elif checks:
            threshold = np.quantile(proxies, DYNAMIC_DATA_FRACTION, axis=1)
        else:
            threshold = np.zeros(rows)
        hl_keep = self._hl_keep[None, :] | (
            hl_cand[None, :] & (proxy_l >= threshold[:, None])
        )
        if h_tiled is not None:
            hh_keep = self._hh_keep[None, :] | (
                hh_cand[None, :] & (proxy_h >= threshold[:, None])
            )
        else:
            hh_keep = np.zeros((rows, self.n), dtype=bool)
        return hl_keep, hh_keep, checks

    def _execute_batch(
        self, x, count: bool
    ) -> tuple[np.ndarray, tuple[OpCounts, ...]]:
        arr = as_2d_complex_array(x, "x", width=self.n)
        rows = arr.shape[0]
        if rows == 0:
            return np.empty((0, self.n), dtype=np.complex128), ()
        spec = self.pruning
        xl, xh = dwt_level_batch(arr, self.bank)
        sub_l = self._sub_transform_batch(xl)
        l_tiled = np.concatenate([sub_l, sub_l], axis=1)
        if self._hh_active:
            sub_h = self._sub_transform_batch(xh)
            h_tiled = np.concatenate([sub_h, sub_h], axis=1)
        else:
            h_tiled = None

        if spec.dynamic and not spec.is_exact:
            hl_keep, hh_keep, checks = self._runtime_keep_masks_batch(
                l_tiled, h_tiled
            )
            hl_active = hl_keep & (self._hl_codes != _FACTOR_ZERO)[None, :]
            hh_active = hh_keep & (self._hh_codes != _FACTOR_ZERO)[None, :]
            out = np.where(hl_active, self._hl[None, :], 0.0) * l_tiled
            if h_tiled is not None:
                out = out + np.where(hh_active, self._hh[None, :], 0.0) * h_tiled
            per_row: tuple[OpCounts, ...] = ()
            if count:
                per_row = self._count_rows(hl_active, hh_active, checks)
            return out, per_row

        # Static masks: every row shares one mask and therefore one count.
        hl_active = self._hl_keep & (self._hl_codes != _FACTOR_ZERO)
        hh_active = self._hh_keep & (self._hh_codes != _FACTOR_ZERO)
        out = np.where(hl_active, self._hl, 0.0) * l_tiled
        if h_tiled is not None:
            out = out + np.where(hh_active, self._hh, 0.0) * h_tiled
        per_row = ()
        if count:
            one = sum(
                self._count_stages(hl_active, hh_active, 0).values(), OpCounts()
            )
            per_row = (one,) * rows
        return out, per_row

    def _count_rows(
        self, hl_active: np.ndarray, hh_active: np.ndarray, checks: int
    ) -> tuple[OpCounts, ...]:
        """Per-row executed counts from 2-D active masks (dynamic mode)."""
        hl_generic = self._hl_codes == _FACTOR_GENERIC
        hl_axis = self._hl_codes == _FACTOR_AXIS
        hh_generic = self._hh_codes == _FACTOR_GENERIC
        hh_axis = self._hh_codes == _FACTOR_AXIS
        generic = np.count_nonzero(
            hl_active & hl_generic[None, :], axis=1
        ) + np.count_nonzero(hh_active & hh_generic[None, :], axis=1)
        axis = np.count_nonzero(
            hl_active & hl_axis[None, :], axis=1
        ) + np.count_nonzero(hh_active & hh_axis[None, :], axis=1)
        both = np.count_nonzero(hl_active & hh_active, axis=1)
        base = self._dwt_counts() + self._sub_counts()
        if checks:
            base = base + DYNAMIC_CHECK.scaled(checks)
        return tuple(
            base
            + COMPLEX_MULT.scaled(int(g))
            + REAL_SCALED_COMPLEX_MULT.scaled(int(a))
            + COMPLEX_ADD.scaled(int(b))
            for g, a, b in zip(generic, axis, both)
        )

    # ------------------------------------------------------------------
    # Operation accounting
    # ------------------------------------------------------------------

    def _dwt_counts(self) -> OpCounts:
        mults, adds = dwt_stage_cost(self.bank)
        outputs = self.n // 2 if self.pruning.band_drop else self.n
        return OpCounts(mults=mults, adds=adds).scaled(outputs)

    def _sub_counts(self) -> OpCounts:
        per_sub = (
            self._child.static_counts()
            if self._child is not None
            else split_radix_counts(self.n // 2)
        )
        executed = 1 if self.pruning.band_drop else 2
        return per_sub.scaled(executed)

    def _count_stages(
        self, hl_active: np.ndarray, hh_active: np.ndarray, checks: int
    ) -> dict[str, OpCounts]:
        twiddle = _mult_cost(self._hl_codes, hl_active) + _mult_cost(
            self._hh_codes, hh_active
        )
        both = np.count_nonzero(hl_active & hh_active)
        twiddle = twiddle + COMPLEX_ADD.scaled(int(both))
        breakdown = {
            "dwt": self._dwt_counts(),
            "sub_fft": self._sub_counts(),
            "twiddle": twiddle,
        }
        if checks:
            breakdown["pruning_checks"] = DYNAMIC_CHECK.scaled(checks)
        return breakdown

    def static_counts(self) -> OpCounts:
        """Design-time operation counts.

        Exact for static configurations.  For dynamic pruning this is the
        *expected* count: every candidate term (factor statically below
        the set threshold) pays its data check, and the calibrated data
        threshold is expected to keep ``1 - DYNAMIC_DATA_FRACTION`` of
        the candidates alive.
        """
        spec = self.pruning
        counts = self._dwt_counts() + self._sub_counts()
        hl_keep = self._hl_keep & (self._hl_codes != _FACTOR_ZERO)
        hh_keep = self._hh_keep & (self._hh_codes != _FACTOR_ZERO)
        if spec.dynamic and not spec.is_exact:
            hl_cand = (~self._hl_keep) & (self._hl_codes != _FACTOR_ZERO)
            hh_cand = (
                (~self._hh_keep) & (self._hh_codes != _FACTOR_ZERO)
                if self._hh_active
                else np.zeros(self.n, dtype=bool)
            )
            checks = int(np.count_nonzero(hl_cand) + np.count_nonzero(hh_cand))
            counts = counts + DYNAMIC_CHECK.scaled(checks)
            survivors = _mult_cost(self._hl_codes, hl_cand) + _mult_cost(
                self._hh_codes, hh_cand
            )
            counts = counts + survivors.approx_scaled(
                1.0 - DYNAMIC_DATA_FRACTION
            )
        counts = counts + _mult_cost(self._hl_codes, hl_keep)
        counts = counts + _mult_cost(self._hh_codes, hh_keep)
        both = int(np.count_nonzero(hl_keep & hh_keep))
        return counts + COMPLEX_ADD.scaled(both)

    def bin_gains(self) -> np.ndarray | None:
        """Band-drop equalisation gains, or ``None`` when not applicable.

        Dropping the highpass band projects the signal onto the lowpass
        subspace, which attenuates bin *k* by the known deterministic
        factor ``|H_L(k)|^2 / 2`` (``cos^2(pi k / N)`` for Haar).  A
        downstream consumer that reads a subset of bins (the Lomb
        calculator) can divide that droop back out — without this
        equalisation the LF/HF ratio acquires a systematic tilt far
        larger than the paper reports (see DESIGN.md).  Gains are
        clipped where the factor approaches zero (those bins carry no
        information after the drop).
        """
        if not self.pruning.band_drop:
            return None
        attenuation = 0.5 * np.abs(self._hl) ** 2
        gains = 1.0 / np.maximum(attenuation, 1.0 / _MAX_EQUALIZER_GAIN)
        return gains

    def twiddle_magnitudes(self) -> dict[str, np.ndarray]:
        """Magnitudes of the A/B/C/D diagonals (for Fig. 6 style analyses)."""
        half = self.n // 2
        return {
            "A": np.abs(self._hl[:half]),
            "B": np.abs(self._hh[:half]),
            "C": np.abs(self._hl[half:]),
            "D": np.abs(self._hh[half:]),
        }


def wavelet_fft(
    x,
    basis="haar",
    levels: int = 1,
    pruning: PruningSpec | None = None,
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`WaveletFFT`.

    The plan (twiddles, masks, recursion) is resolved through the shared
    :func:`repro.ffts.plancache.wavelet_plan` cache, so repeated calls at
    the same geometry no longer re-derive design-time data.
    """
    arr = as_1d_complex_array(x, "x")
    plan = plancache.wavelet_plan(
        arr.size, basis=basis, levels=levels, pruning=pruning
    )
    return plan.transform(arr)
