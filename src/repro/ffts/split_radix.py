"""Split-radix FFT — the paper's conventional baseline kernel.

Section II.B: "For the implementation of the 512 sized FFT, the
split-radix method was utilized, which is one of the fastest known FFT
realizations."  This module provides a working recursive implementation
(validated against ``numpy.fft``) and the classic closed-form real
operation counts used for every complexity comparison in Fig. 5:

    mults(N) = N (log2 N - 3) + 4
    adds(N)  = 3 N (log2 N - 1) + 4

which are the standard counts for a complex-input split-radix FFT with
the trivial twiddles (1, -i) and the sqrt(2)/2 symmetries exploited.

The recursion operates on the **last axis**, so one plan drives both the
single-shot entry point (:func:`split_radix_fft`) and the batched one
(:func:`split_radix_fft_batch`) used by the windowed-PSA execution
engine; twiddle vectors come from the shared
:mod:`~repro.ffts.plancache` instead of being re-derived per call.
"""

from __future__ import annotations

import numpy as np

from .._validation import (
    as_1d_complex_array,
    as_2d_complex_array,
    require_power_of_two,
)
from .opcount import OpCounts
from .plancache import split_radix_twiddles

__all__ = ["split_radix_fft", "split_radix_fft_batch", "split_radix_counts"]


def _srfft(x: np.ndarray) -> np.ndarray:
    n = x.shape[-1]
    if n == 1:
        return x.copy()
    if n == 2:
        a = x[..., :1]
        b = x[..., 1:]
        return np.concatenate([a + b, a - b], axis=-1)
    quarter = n // 4
    u = _srfft(x[..., 0::2])
    z = _srfft(x[..., 1::4])
    zp = _srfft(x[..., 3::4])
    w1, w3 = split_radix_twiddles(n)
    t1 = w1 * z + w3 * zp
    t2 = w1 * z - w3 * zp
    out = np.empty(x.shape, dtype=np.complex128)
    out[..., 0:quarter] = u[..., 0:quarter] + t1
    out[..., n // 2 : n // 2 + quarter] = u[..., 0:quarter] - t1
    out[..., quarter : 2 * quarter] = u[..., quarter : 2 * quarter] - 1j * t2
    out[..., 3 * quarter :] = u[..., quarter : 2 * quarter] + 1j * t2
    return out


def split_radix_fft(x) -> np.ndarray:
    """Compute the DFT of *x* (power-of-two length) by split radix.

    Matches ``numpy.fft.fft`` to floating-point accuracy; tested against
    it.  Accepts real or complex input.
    """
    arr = as_1d_complex_array(x, "x")
    require_power_of_two(arr.size, "len(x)")
    return _srfft(arr)


def split_radix_fft_batch(x) -> np.ndarray:
    """Row-wise split-radix DFT of a ``(n_rows, n)`` batch.

    Each row undergoes exactly the same recursion (and therefore the same
    floating-point operations) as :func:`split_radix_fft`, so batched and
    sequential results are bit-identical per row.  Inputs are validated
    like the sequential entry point (shape, finiteness).
    """
    arr = as_2d_complex_array(x, "x")
    require_power_of_two(arr.shape[1], "x.shape[1]")
    return _srfft(arr)


def split_radix_counts(n: int) -> OpCounts:
    """Closed-form real-operation counts for the complex split-radix FFT."""
    n = require_power_of_two(n, "n")
    if n == 1:
        return OpCounts()
    log2n = int(np.log2(n))
    mults = n * (log2n - 3) + 4
    adds = 3 * n * (log2n - 1) + 4
    return OpCounts(mults=max(mults, 0), adds=max(adds, 0))
