"""Split-radix FFT — the paper's conventional baseline kernel.

Section II.B: "For the implementation of the 512 sized FFT, the
split-radix method was utilized, which is one of the fastest known FFT
realizations."  This module provides a working recursive implementation
(validated against ``numpy.fft``) and the classic closed-form real
operation counts used for every complexity comparison in Fig. 5:

    mults(N) = N (log2 N - 3) + 4
    adds(N)  = 3 N (log2 N - 1) + 4

which are the standard counts for a complex-input split-radix FFT with
the trivial twiddles (1, -i) and the sqrt(2)/2 symmetries exploited.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_1d_complex_array, require_power_of_two
from .opcount import OpCounts

__all__ = ["split_radix_fft", "split_radix_counts"]


def _srfft(x: np.ndarray) -> np.ndarray:
    n = x.size
    if n == 1:
        return x.copy()
    if n == 2:
        return np.array([x[0] + x[1], x[0] - x[1]])
    quarter = n // 4
    u = _srfft(x[0::2])
    z = _srfft(x[1::4])
    zp = _srfft(x[3::4])
    k = np.arange(quarter)
    w1 = np.exp(-2j * np.pi * k / n)
    w3 = np.exp(-6j * np.pi * k / n)
    t1 = w1 * z + w3 * zp
    t2 = w1 * z - w3 * zp
    out = np.empty(n, dtype=np.complex128)
    out[0:quarter] = u[0:quarter] + t1
    out[n // 2 : n // 2 + quarter] = u[0:quarter] - t1
    out[quarter : 2 * quarter] = u[quarter : 2 * quarter] - 1j * t2
    out[3 * quarter :] = u[quarter : 2 * quarter] + 1j * t2
    return out


def split_radix_fft(x) -> np.ndarray:
    """Compute the DFT of *x* (power-of-two length) by split radix.

    Matches ``numpy.fft.fft`` to floating-point accuracy; tested against
    it.  Accepts real or complex input.
    """
    arr = as_1d_complex_array(x, "x")
    require_power_of_two(arr.size, "len(x)")
    return _srfft(arr)


def split_radix_counts(n: int) -> OpCounts:
    """Closed-form real-operation counts for the complex split-radix FFT."""
    n = require_power_of_two(n, "n")
    if n == 1:
        return OpCounts()
    log2n = int(np.log2(n))
    mults = n * (log2n - 3) + 4
    adds = 3 * n * (log2n - 1) + 4
    return OpCounts(mults=max(mults, 0), adds=max(adds, 0))
