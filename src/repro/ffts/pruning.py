"""Significance-driven pruning specifications (paper Sections III & V).

Two pruning levers exist, matching the two stages of the modified FFT:

* **Stage 1 — band drop** (paper eq. 7): the highpass (detail) half-band
  of the DWT is identified as less significant (eq. 3 thresholding on
  ``E{|z_k|}``) and its computations — the highpass filtering, the second
  sub-FFT and the B/D twiddle columns — are eliminated.
* **Stage 2 — twiddle-factor pruning**: the modified twiddle factors are
  not unit magnitude, so the smallest ones are dropped.  The paper
  distinguishes three sets by magnitude (Fig. 6): Set1 prunes 20 % of the
  factor applications, Set2 40 %, Set3 60 %.

Each lever can be applied **statically** (design-time masks derived from
expected magnitudes) or **dynamically** (run-time per-sample comparisons;
finer grained, lower distortion, ~10 % energy overhead from the extra
compare instructions).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .._validation import require_in_range
from ..errors import ConfigurationError

__all__ = [
    "PruningSpec",
    "TWIDDLE_SETS",
    "static_twiddle_mask",
    "twiddle_threshold_for_fraction",
]

#: The paper's three pruning sets: fraction of twiddle applications dropped.
TWIDDLE_SETS: dict[int, float] = {1: 0.20, 2: 0.40, 3: 0.60}


@dataclass(frozen=True)
class PruningSpec:
    """Configuration of the approximations applied to the wavelet FFT.

    Attributes
    ----------
    band_drop:
        Drop the top-level highpass band and everything it feeds (eq. 7).
    twiddle_fraction:
        Target fraction of stage-2 twiddle-factor applications to prune
        (0.2 / 0.4 / 0.6 are the paper's Set1-3).
    dynamic:
        Apply the twiddle pruning at run time: each candidate term is kept
        or dropped by comparing ``|factor| * |data|`` against a threshold,
        paying one compare (plus a magnitude estimate) per term.
    dynamic_threshold:
        Absolute threshold used by dynamic pruning.  ``None`` means
        self-calibrating: each transform prunes exactly the target
        fraction of its own terms (the design-time calibration in
        :mod:`repro.core.calibration` replaces this with a fixed value).
    """

    band_drop: bool = False
    twiddle_fraction: float = 0.0
    dynamic: bool = False
    dynamic_threshold: float | None = None

    def __post_init__(self):
        require_in_range(self.twiddle_fraction, 0.0, 0.999, "twiddle_fraction")
        if self.dynamic_threshold is not None and self.dynamic_threshold < 0:
            raise ConfigurationError(
                f"dynamic_threshold must be >= 0, got {self.dynamic_threshold}"
            )
        if self.dynamic_threshold is not None and not self.dynamic:
            raise ConfigurationError(
                "dynamic_threshold given but dynamic pruning is disabled"
            )

    @classmethod
    def none(cls) -> "PruningSpec":
        """No approximation — the exact wavelet-based FFT."""
        return cls()

    @classmethod
    def band_only(cls) -> "PruningSpec":
        """Stage-1 approximation only (the eq. 7 configuration)."""
        return cls(band_drop=True)

    @classmethod
    def paper_mode(cls, twiddle_set: int, dynamic: bool = False) -> "PruningSpec":
        """Band drop combined with one of the paper's twiddle sets (1-3)."""
        if twiddle_set not in TWIDDLE_SETS:
            raise ConfigurationError(
                f"twiddle_set must be one of {sorted(TWIDDLE_SETS)}, got {twiddle_set}"
            )
        return cls(
            band_drop=True,
            twiddle_fraction=TWIDDLE_SETS[twiddle_set],
            dynamic=dynamic,
        )

    @property
    def is_exact(self) -> bool:
        """True when no approximation at all is configured."""
        return not self.band_drop and self.twiddle_fraction == 0.0

    def with_dynamic_threshold(self, threshold: float) -> "PruningSpec":
        """Return a copy carrying a calibrated dynamic threshold."""
        if not self.dynamic:
            raise ConfigurationError("spec is not dynamic; cannot set threshold")
        return replace(self, dynamic_threshold=float(threshold))

    def describe(self) -> str:
        """Short human-readable mode label used in reports."""
        if self.is_exact:
            return "exact"
        parts = []
        if self.band_drop:
            parts.append("band-drop")
        if self.twiddle_fraction > 0:
            parts.append(f"{int(round(self.twiddle_fraction * 100))}% twiddle")
        suffix = " (dynamic)" if self.dynamic else ""
        return " + ".join(parts) + suffix


def twiddle_threshold_for_fraction(
    magnitudes: np.ndarray, fraction: float
) -> float:
    """Magnitude threshold below which *fraction* of applications fall.

    This is the design-time rule the paper uses to map a desired pruning
    degree (20/40/60 %) to a concrete threshold over the twiddle-factor
    magnitudes (Fig. 6).
    """
    mags = np.asarray(magnitudes, dtype=np.float64).ravel()
    if mags.size == 0:
        raise ConfigurationError("no twiddle magnitudes supplied")
    fraction = require_in_range(fraction, 0.0, 0.999, "fraction")
    if fraction == 0.0:
        return 0.0
    return float(np.quantile(mags, fraction))


def static_twiddle_mask(magnitudes: np.ndarray, fraction: float) -> np.ndarray:
    """Boolean keep-mask pruning exactly ``floor(fraction * size)`` factors.

    The smallest-magnitude factor applications are dropped first; ties are
    broken deterministically by index so repeated runs build identical
    hardware tables.
    """
    mags = np.asarray(magnitudes, dtype=np.float64).ravel()
    fraction = require_in_range(fraction, 0.0, 0.999, "fraction")
    n_prune = int(np.floor(fraction * mags.size))
    keep = np.ones(mags.size, dtype=bool)
    if n_prune > 0:
        order = np.argsort(mags, kind="stable")
        keep[order[:n_prune]] = False
    return keep.reshape(np.shape(magnitudes))
