"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
masking programming errors (``TypeError`` etc. are still allowed to
propagate from obviously wrong call signatures).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SignalError",
    "ValidationError",
    "TransformError",
    "PlatformError",
    "CalibrationError",
    "FixedPointError",
    "TransportError",
    "ServiceError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration object or parameter combination is invalid."""


class SignalError(ReproError):
    """An input signal does not satisfy the documented requirements."""


class ValidationError(SignalError):
    """Input data fails structural validation (ordering, duplicates).

    A :class:`SignalError` subclass so existing handlers keep working;
    raised where malformed *user-supplied* data (unsorted beat times,
    duplicate samples) would otherwise silently produce nonsense such
    as negative RR intervals.
    """


class TransformError(ReproError):
    """A transform (DWT, FFT, Lomb) was asked to do something impossible."""


class PlatformError(ReproError):
    """The platform/energy model was configured or driven incorrectly."""


class CalibrationError(ReproError):
    """Design-time calibration could not derive usable thresholds."""


class FixedPointError(ReproError):
    """Fixed-point format violation (overflow without saturation, bad Q spec)."""


class TransportError(ReproError):
    """A fleet transport frame or message violates the wire protocol."""


class ServiceError(ReproError):
    """A network-service request is invalid (auth, protocol, routing)."""
