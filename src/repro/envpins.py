"""The library's environment pins, read in exactly one place.

Three environment variables tune execution without touching code:

* :data:`PROVIDER_ENV_VAR` (``REPRO_FFT_PROVIDER``) — pins the FFT
  execution provider (a registered name, or ``"auto"`` to force the
  autoselect probe),
* :data:`CHUNK_ENV_VAR` (``REPRO_BATCH_CHUNK_WINDOWS``) — pins the
  batched execution path's windows-per-sub-batch size,
* :data:`CACHE_DIR_ENV_VAR` (``REPRO_CACHE_DIR``) — overrides the
  directory of the persistent provider-autoselect cache,
* :data:`WORKER_TIMEOUT_ENV_VAR` (``REPRO_WORKER_TIMEOUT``) — pins the
  remote fleet worker connect/heartbeat timeout in seconds.

Every consumer — the provider registry's resolution chain, the batch
chunk resolver in :mod:`repro.lomb.fast`, the CLI's state reporting and
:meth:`repro.engine.EngineConfig.resolve` — reads the pins through
these accessors; no other module touches ``os.environ``.  That keeps
the documented precedence chain (explicit argument → config → env pin →
auto-probe) auditable in one file, and gives the pins one consistent
parsing rule: unset *or empty/whitespace* means "no pin".
"""

from __future__ import annotations

import os

from .errors import ConfigurationError

__all__ = [
    "CACHE_DIR_ENV_VAR",
    "CHUNK_ENV_VAR",
    "PROVIDER_ENV_VAR",
    "WORKER_TIMEOUT_ENV_VAR",
    "cache_dir_env_pin",
    "chunk_env_pin",
    "provider_env_pin",
    "worker_timeout_env_pin",
]

#: Environment pin naming the FFT execution provider (or ``"auto"``).
PROVIDER_ENV_VAR = "REPRO_FFT_PROVIDER"

#: Environment pin fixing the batched windows-per-sub-batch size.
CHUNK_ENV_VAR = "REPRO_BATCH_CHUNK_WINDOWS"

#: Environment pin relocating the persistent autoselect cache directory.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

#: Environment pin fixing the remote worker connect/heartbeat timeout.
WORKER_TIMEOUT_ENV_VAR = "REPRO_WORKER_TIMEOUT"


def provider_env_pin() -> str | None:
    """The ``REPRO_FFT_PROVIDER`` pin, normalised; ``None`` when unset.

    The value is stripped and lowercased exactly as registry lookups
    normalise names; it is **not** validated against the registry here —
    the resolution chain decides whether an unknown name is an error
    and whether an unavailable one falls back.
    """
    raw = os.environ.get(PROVIDER_ENV_VAR)
    if raw is None:
        return None
    raw = raw.strip().lower()
    return raw or None


def chunk_env_pin() -> int | None:
    """The ``REPRO_BATCH_CHUNK_WINDOWS`` pin; ``None`` when unset.

    Raises :class:`~repro.errors.ConfigurationError` for non-integer or
    non-positive values — a present-but-broken pin must fail loudly, not
    silently fall through to the auto-tuner.
    """
    raw = os.environ.get(CHUNK_ENV_VAR)
    if raw is None or not raw.strip():
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{CHUNK_ENV_VAR} must be an integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigurationError(f"{CHUNK_ENV_VAR} must be >= 1, got {value}")
    return value


def cache_dir_env_pin() -> str | None:
    """The ``REPRO_CACHE_DIR`` override; ``None`` when unset.

    Names the directory the provider registry persists its autoselect
    probe results under (:mod:`repro.ffts.providers.registry`).  Unlike
    the other pins the value is a filesystem path, so only surrounding
    whitespace is stripped — no case normalisation.
    """
    raw = os.environ.get(CACHE_DIR_ENV_VAR)
    if raw is None:
        return None
    raw = raw.strip()
    return raw or None


def worker_timeout_env_pin() -> float | None:
    """The ``REPRO_WORKER_TIMEOUT`` pin (seconds); ``None`` when unset.

    Bounds how long the fleet scheduler waits for a remote worker
    daemon's connect/handshake and how stale a heartbeat may go before
    the worker counts as dead.  Raises
    :class:`~repro.errors.ConfigurationError` for non-numeric or
    non-positive values — a present-but-broken pin must fail loudly.
    """
    raw = os.environ.get(WORKER_TIMEOUT_ENV_VAR)
    if raw is None or not raw.strip():
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{WORKER_TIMEOUT_ENV_VAR} must be a number (seconds), "
            f"got {raw!r}"
        ) from None
    if not value > 0:
        raise ConfigurationError(
            f"{WORKER_TIMEOUT_ENV_VAR} must be > 0, got {value}"
        )
    return value
