"""Workspace arenas: pooled, reusable buffers for the streaming hot path.

Steady-state streaming re-runs the same dense kernels over and over with
near-constant shapes — every hub flush used to allocate (and discard)
padded window matrices, extirpolation scatter buffers, FFT outputs and a
dozen Lomb-combine temporaries.  A :class:`WorkspaceArena` is a
shape/dtype-keyed pool of those buffers with borrow/release semantics:
the first flush pays the allocations, every later flush reuses them, so
steady-state streaming allocates O(1) new arrays per flush instead of
O(windows).

Design rules:

* **Keyed by trailing shape, dtype, and capacity class.**  A borrow of
  ``(rows, n)`` rounds ``rows`` up to a power-of-two *capacity class*
  and is served from the pool for ``(dtype, (n,), capacity)`` — one
  dict lookup and a ``list.pop``, no scanning — returned as a
  contiguous ``base[:rows]`` view, valid as an ``out=`` target for
  every kernel on the hot path.  Slightly varying batch sizes (the
  streaming norm) land in the same capacity class and hit the same
  pooled buffer; borrow/release stay cheap enough (O(1) dict work
  under one lock) that pooling never costs the flush path more than
  the allocations it saves.
* **Results are never arena-backed.**  Kernels only borrow for
  *temporaries*; anything escaping into a result object
  (:class:`~repro.lomb.fast.LombSpectrum` power rows, frequency grids,
  spectrograms) is allocated fresh.  Releasing a buffer hands its
  storage to the next borrower, so a leaked arena view would alias live
  results.
* **Thread-safe and fork-inherited.**  Borrow/release run under one
  lock (hub flushes and async feeders may race); a forked fleet worker
  inherits the parent's pooled buffers copy-on-write exactly like the
  plan caches, and each worker installs its own process-wide arena in
  its initializer (:func:`repro.fleet.worker.init_worker`).
* **Bounded.**  Pooled bytes are capped (``max_bytes``); releasing past
  the cap evicts the largest pooled buffers first, so a transient giant
  batch cannot pin its peak footprint forever.

Kernels do not talk to an arena directly — they open a :class:`Scratch`
over the *active* arena (:func:`scratch`), which falls back to plain
``np.empty``/``np.zeros`` when no arena is installed.  The active arena
is installed per engine scope (:meth:`repro.engine.Engine._pinned`) or
process-wide in fleet workers, mirroring the provider/chunk pin pattern
of :func:`repro.lomb.fast.pinned_execution`.  One code path, two
allocation sources — which is what keeps arena-on and arena-off
bit-identical by construction.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import numpy as np

__all__ = [
    "Scratch",
    "WorkspaceArena",
    "arena_scope",
    "carve",
    "get_active_arena",
    "scratch",
    "set_active_arena",
]

#: Default cap on pooled (idle) bytes per arena; generous for the
#: paper's 512-cell geometry at fleet chunk sizes, small next to the
#: recordings themselves.
DEFAULT_MAX_BYTES = 64 * 1024 * 1024


def _capacity(rows: int) -> int:
    """Leading-dim pool capacity: the next power of two >= ``rows``."""
    rows = int(rows)
    if rows <= 1:
        return 1
    return 1 << (rows - 1).bit_length()


class WorkspaceArena:
    """Shape/dtype-keyed pool of reusable ndarray buffers.

    Parameters
    ----------
    max_bytes:
        Cap on idle (pooled, not lent) bytes.  Releases past the cap
        evict the largest pooled buffers first.
    """

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES):
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        # (dtype, trailing shape, capacity) -> list of idle base buffers.
        self._pools: dict[tuple, list[np.ndarray]] = {}
        # id(base) -> (base, pool key), for every buffer currently lent
        # out; holding the reference also guarantees id() stays unique
        # while lent, and carrying the key spares release() rebuilding it.
        self._lent: dict[int, tuple[np.ndarray, tuple]] = {}
        self._pooled_bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------

    def borrow(self, shape, dtype=np.float64, zero: bool = False) -> np.ndarray:
        """A contiguous buffer of exactly ``shape``, pooled when possible.

        The returned array is a ``base[:rows]`` view of a power-of-two
        capacity base buffer (or the base itself) — C-contiguous, hence
        valid as an ``out=`` target.  Contents are uninitialised unless
        ``zero=True``.  Pass it (or any view of it) back to
        :meth:`release` when done; never let it escape into results.

        This runs ~100 times per hub flush, so the body is deliberately
        lean: one dict lookup on the exact ``(dtype, trailing shape,
        capacity class)`` key and a ``list.pop`` — no pool scanning.
        """
        if type(shape) is not tuple:
            shape = tuple(shape)
        rows = shape[0]
        if type(rows) is not int:
            rows = int(rows)
        trailing = shape[1:]
        dt = dtype if isinstance(dtype, np.dtype) else np.dtype(dtype)
        cap = 1 << (rows - 1).bit_length() if rows > 1 else 1
        key = (dt, trailing, cap)
        with self._lock:
            pool = self._pools.get(key)
            if pool:
                base = pool.pop()
                self._pooled_bytes -= base.nbytes
                self._hits += 1
            else:
                base = np.empty((cap, *trailing), dtype=dt)
                self._misses += 1
            self._lent[id(base)] = (base, key)
        view = base if cap == rows else base[:rows]
        if zero:
            view.fill(0)
        return view

    def release(self, *arrays) -> None:
        """Return borrowed buffers (or views of them) to the pool.

        Arrays the arena does not recognise are ignored — releasing is
        always safe, never adoption.
        """
        pools = self._pools
        with self._lock:
            for arr in arrays:
                if arr is None:
                    continue
                base = arr.base if arr.base is not None else arr
                entry = self._lent.pop(id(base), None)
                if entry is None:
                    continue
                owned, key = entry
                pool = pools.get(key)
                if pool is None:
                    pool = pools[key] = []
                pool.append(owned)
                self._pooled_bytes += owned.nbytes
            if self._pooled_bytes > self.max_bytes:
                self._evict_over_cap()

    def _evict_over_cap(self) -> None:
        """Drop the largest idle buffers until under ``max_bytes``."""
        while self._pooled_bytes > self.max_bytes:
            largest_key, largest_i = None, -1
            largest_bytes = -1
            for key, pool in self._pools.items():
                for i, buf in enumerate(pool):
                    if buf.nbytes > largest_bytes:
                        largest_key, largest_i = key, i
                        largest_bytes = buf.nbytes
            if largest_key is None:
                break
            self._pools[largest_key].pop(largest_i)
            self._pooled_bytes -= largest_bytes
            self._evictions += 1

    def warm(self, shape, dtype=np.float64, count: int = 1) -> None:
        """Pre-allocate ``count`` pooled buffers for a hot shape.

        Fleet workers call this at initialisation so the first real
        flush finds its buffers already resident (and, under the fork
        start method, potentially inherited copy-on-write).
        """
        taken = [self.borrow(shape, dtype) for _ in range(int(count))]
        self.release(*taken)

    def clear(self) -> None:
        """Drop every idle pooled buffer (lent buffers stay tracked)."""
        with self._lock:
            self._pools.clear()
            self._pooled_bytes = 0

    def stats(self) -> dict:
        """Borrow/release counters and current footprint (profiler surface)."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "pooled_bytes": self._pooled_bytes,
                "pooled_buffers": sum(
                    len(pool) for pool in self._pools.values()
                ),
                "lent_buffers": len(self._lent),
                "max_bytes": self.max_bytes,
            }


# ----------------------------------------------------------------------
# The active arena (engine-scoped or process-wide)
# ----------------------------------------------------------------------

_active: WorkspaceArena | None = None


def get_active_arena() -> WorkspaceArena | None:
    """The arena hot-path kernels currently borrow from (may be ``None``)."""
    return _active


def set_active_arena(arena: WorkspaceArena | None) -> WorkspaceArena | None:
    """Install the process-wide active arena; returns the previous one.

    Fleet workers install theirs once at initialisation; everything
    engine-scoped should prefer :func:`arena_scope`, which restores the
    previous arena on exit.
    """
    global _active
    previous = _active
    _active = arena
    return previous


@contextmanager
def arena_scope(arena: WorkspaceArena | None):
    """Install *arena* for the calling block, restoring the previous one.

    The arena counterpart of :func:`repro.lomb.fast.pinned_execution`:
    the engine facade wraps every workload in one of these so kernels
    running under it borrow from the engine's own pool — and code that
    never asked for an arena is never left with one.
    """
    previous = set_active_arena(arena)
    try:
        yield arena
    finally:
        set_active_arena(previous)


class Scratch:
    """Per-call lease over one arena (or plain allocation when ``None``).

    Kernels open one :class:`Scratch`, :meth:`take` every temporary
    through it, and close it (context manager) when the call's results
    are fully materialised — releasing every borrowed buffer back to the
    arena in one step, exception-safe.  With no arena, :meth:`take` is
    exactly ``np.empty`` / ``np.zeros``: same code path, same operations,
    only the storage source differs — which is what keeps arena-on and
    arena-off results bit-identical by construction.
    """

    __slots__ = ("_arena", "_taken")

    def __init__(self, arena: WorkspaceArena | None = None):
        self._arena = arena
        self._taken: list[np.ndarray] = []

    def take(self, shape, dtype=np.float64, zero: bool = False) -> np.ndarray:
        """A temporary of exactly ``shape`` (uninitialised unless *zero*)."""
        if self._arena is None:
            alloc = np.zeros if zero else np.empty
            return alloc(shape, dtype=dtype)
        buf = self._arena.borrow(shape, dtype, zero=zero)
        self._taken.append(buf)
        return buf

    def take_block(
        self, count: int, shape, dtype=np.float64, zero: bool = False
    ) -> list[np.ndarray]:
        """*count* same-shape temporaries carved from one contiguous take.

        One borrow (one lock round-trip, one pool entry) instead of
        *count*: the returned arrays are the disjoint
        ``block[i * rows : (i + 1) * rows]`` slices of a single buffer —
        C-contiguous, non-overlapping, with the same strides a
        standalone allocation of ``shape`` would have — so reading and
        writing through them is operation-for-operation identical to
        using *count* separate arrays.  Kernels use this for their
        same-shape temporary clusters (the dozen Lomb-combine
        intermediates, the extirpolation masks) to keep per-flush
        borrow counts — and hence arena overhead — low.
        """
        rows = shape[0]
        block = self.take((count * rows, *shape[1:]), dtype, zero=zero)
        return [block[i * rows : (i + 1) * rows] for i in range(count)]

    def close(self) -> None:
        """Release every buffer taken through this scratch."""
        if self._arena is not None and self._taken:
            self._arena.release(*self._taken)
        self._taken = []

    def __enter__(self) -> "Scratch":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def scratch() -> Scratch:
    """A :class:`Scratch` over the active arena (plain allocation if none)."""
    return Scratch(_active)


def carve(block: np.ndarray, *specs) -> list[np.ndarray]:
    """Partition a flat 1-D buffer into consecutive disjoint views.

    Each spec is a ``shape`` tuple, or ``(shape, dtype)`` for a dtype of
    the *same itemsize* as *block* (e.g. ``int64`` views over ``float64``
    storage).  The views are contiguous consecutive slices — reshaped
    and, where a dtype is given, bit-reinterpreted — so writing through
    them is operation-for-operation identical to writing separate
    arrays: this is storage partitioning only, never numeric conversion.
    Kernels use it to fold a cluster of same-itemsize temporaries into
    one :meth:`Scratch.take`, keeping per-flush borrow counts (and hence
    arena overhead) low even where the shapes in the cluster differ.
    """
    views: list[np.ndarray] = []
    offset = 0
    for spec in specs:
        if spec and isinstance(spec[0], tuple):
            shape, dt = spec
        else:
            shape, dt = spec, None
        count = 1
        for dim in shape:
            count *= dim
        view = block[offset : offset + count]
        if dt is not None and view.dtype != dt:
            view = view.view(dt)
        views.append(view.reshape(shape))
        offset += count
    if offset != block.shape[0]:
        raise ValueError(
            f"specs cover {offset} elements, block has {block.shape[0]}"
        )
    return views
