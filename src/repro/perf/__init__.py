"""Steady-state performance subsystem: workspace arenas and profiling.

Two cooperating pieces keep the streaming hot path allocation-free at
steady state and make the win observable:

* :mod:`repro.perf.workspace` — :class:`WorkspaceArena`, a
  shape/dtype-keyed pool of reusable buffers; kernels lease temporaries
  through :class:`Scratch` so one code path serves both pooled and
  plain allocation (arena-on ≡ arena-off bit-for-bit by construction).
* :mod:`repro.perf.profiler` — :class:`StageProfiler`, near-zero
  overhead-when-disabled timing/allocation spans around extirpolation,
  FFT dispatch, Lomb combine, assemble and hub flush, surfaced via
  ``python -m repro profile`` and ``EngineConfig(profile=True)``.
"""

from repro.perf.profiler import (
    LatencyWindow,
    StageProfiler,
    get_active_profiler,
    profile_scope,
    set_active_profiler,
    span,
)
from repro.perf.workspace import (
    Scratch,
    WorkspaceArena,
    arena_scope,
    carve,
    get_active_arena,
    scratch,
    set_active_arena,
)

__all__ = [
    "LatencyWindow",
    "Scratch",
    "StageProfiler",
    "WorkspaceArena",
    "arena_scope",
    "carve",
    "get_active_arena",
    "get_active_profiler",
    "profile_scope",
    "scratch",
    "set_active_arena",
    "set_active_profiler",
    "span",
]
