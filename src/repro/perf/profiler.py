"""Per-stage profiler for the streaming hot path.

The arena + ``out=`` work in this package claims a specific win —
steady-state flushes spend their time in math, not in the allocator.
This module makes that claim *observable*: named timing (and optionally
allocation) spans around the pipeline stages

``extirpolate`` → ``fft`` → ``lomb_combine`` → ``assemble`` → ``hub_flush``

surfaced through ``python -m repro profile`` and the ``profile=`` knob
on :class:`~repro.engine.EngineConfig`.

The cardinal constraint is *near-zero overhead when disabled*: the hot
path calls :func:`span` per kernel invocation, so the disabled path must
be one module-level ``None`` check returning a shared no-op singleton —
no object construction, no clock reads, no branching inside ``__exit__``.
Enabling a profiler is scoped exactly like provider pins and arenas
(:func:`profile_scope`, mirroring
:func:`repro.lomb.fast.pinned_execution`), so profiling one engine never
taxes another.
"""

from __future__ import annotations

import math
import time
import tracemalloc
from collections import deque
from contextlib import contextmanager

__all__ = [
    "LatencyWindow",
    "StageProfiler",
    "get_active_profiler",
    "profile_scope",
    "set_active_profiler",
    "span",
]

#: Canonical stage names, in pipeline order (report rows keep first-seen
#: order, so canonical stages render in this order when present).
STAGES = ("extirpolate", "fft", "lomb_combine", "assemble", "hub_flush")


class _NullSpan:
    """Shared no-op span: the entire cost of profiling while disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


NULL_SPAN = _NullSpan()


class _StageStats:
    __slots__ = ("calls", "seconds", "alloc_bytes")

    def __init__(self):
        self.calls = 0
        self.seconds = 0.0
        self.alloc_bytes = 0


class _Span:
    """One live timed (and optionally allocation-traced) region."""

    __slots__ = ("_stats", "_trace_alloc", "_t0", "_mem0")

    def __init__(self, stats: _StageStats, trace_alloc: bool):
        self._stats = stats
        # Allocation deltas only make sense while tracemalloc runs;
        # checking here keeps __exit__ branch-free on the common path.
        self._trace_alloc = trace_alloc and tracemalloc.is_tracing()

    def __enter__(self):
        if self._trace_alloc:
            self._mem0 = tracemalloc.get_traced_memory()[0]
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info):
        dt = time.perf_counter() - self._t0
        stats = self._stats
        stats.calls += 1
        stats.seconds += dt
        if self._trace_alloc:
            delta = tracemalloc.get_traced_memory()[0] - self._mem0
            if delta > 0:
                stats.alloc_bytes += delta
        return False


class StageProfiler:
    """Accumulates per-stage call counts, wall seconds and net allocations.

    Parameters
    ----------
    trace_alloc:
        When true *and* :mod:`tracemalloc` is tracing, spans also record
        the net bytes allocated inside them (net of frees, floored at
        zero per span — a span that only releases memory records 0).
    """

    def __init__(self, trace_alloc: bool = False):
        self.trace_alloc = bool(trace_alloc)
        self._stages: dict[str, _StageStats] = {}

    def span(self, stage: str) -> _Span:
        """A context manager timing one invocation of *stage*."""
        stats = self._stages.get(stage)
        if stats is None:
            stats = self._stages[stage] = _StageStats()
        return _Span(stats, self.trace_alloc)

    def reset(self) -> None:
        self._stages.clear()

    def report(self) -> dict[str, dict]:
        """``{stage: {calls, seconds, alloc_bytes}}`` in first-seen order."""
        return {
            stage: {
                "calls": stats.calls,
                "seconds": stats.seconds,
                "alloc_bytes": stats.alloc_bytes,
            }
            for stage, stats in self._stages.items()
        }

    def format_report(self) -> str:
        """A human-readable table for CLI output."""
        report = self.report()
        if not report:
            return "no stages recorded"
        header = f"{'stage':<14} {'calls':>8} {'total ms':>10} {'ms/call':>9}"
        if self.trace_alloc:
            header += f" {'alloc KiB':>10}"
        lines = [header, "-" * len(header)]
        for stage, row in report.items():
            ms = row["seconds"] * 1e3
            per = ms / row["calls"] if row["calls"] else 0.0
            line = f"{stage:<14} {row['calls']:>8} {ms:>10.2f} {per:>9.3f}"
            if self.trace_alloc:
                line += f" {row['alloc_bytes'] / 1024.0:>10.1f}"
            lines.append(line)
        return "\n".join(lines)


class LatencyWindow:
    """Rolling per-call latency window with percentile readout.

    :class:`StageProfiler` accumulates *totals* — ideal for attribution,
    useless for tail latency.  This companion keeps the last ``size``
    individual observations (seconds) so SLO checks can ask for a
    percentile of recent behaviour; the quality-adaptive controller
    (:mod:`repro.engine.controller`) feeds it the same per-flush
    latencies the ``hub_flush`` profiler stage times.
    """

    __slots__ = ("_window",)

    def __init__(self, size: int = 32):
        if int(size) < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self._window = deque(maxlen=int(size))

    def observe(self, seconds: float) -> None:
        """Record one latency observation."""
        self._window.append(float(seconds))

    def __len__(self) -> int:
        return len(self._window)

    def percentile(self, q: float) -> float | None:
        """The ``q``-th percentile (0-100) of the window, or ``None`` if empty.

        Nearest-rank on the sorted window — deterministic, no
        interpolation surprises at tiny window sizes.
        """
        if not self._window:
            return None
        ordered = sorted(self._window)
        rank = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
        return ordered[min(rank, len(ordered) - 1)]

    def clear(self) -> None:
        self._window.clear()


# ----------------------------------------------------------------------
# The active profiler (engine-scoped, like provider pins and arenas)
# ----------------------------------------------------------------------

_active: StageProfiler | None = None


def get_active_profiler() -> StageProfiler | None:
    """The profiler hot-path spans currently report to (may be ``None``)."""
    return _active


def set_active_profiler(
    profiler: StageProfiler | None,
) -> StageProfiler | None:
    """Install the process-wide active profiler; returns the previous one."""
    global _active
    previous = _active
    _active = profiler
    return previous


def span(stage: str):
    """A span on the active profiler — or the shared no-op when disabled.

    This is the only profiler call on the hot path; when no profiler is
    active it costs one global load, one comparison and returning a
    pre-built singleton.
    """
    if _active is None:
        return NULL_SPAN
    return _active.span(stage)


@contextmanager
def profile_scope(profiler: StageProfiler | None):
    """Install *profiler* for the calling block, restoring the previous one."""
    previous = set_active_profiler(profiler)
    try:
        yield profiler
    finally:
        set_active_profiler(previous)
