"""Energy-quality trade-off curves (paper Fig. 9).

Sweeps the pruning-mode ladder, measuring for each mode the LF/HF
distortion over a cohort and the energy savings of the FFT kernel on the
node model — statically, with VFS, and for the dynamic variants with
their comparison overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.calibration import calibrate
from ..core.config import PSAConfig
from ..core.system import ConventionalPSA, QualityScalablePSA
from ..errors import SignalError
from ..ffts.pruning import PruningSpec
from ..hrv.metrics import ratio_error
from ..hrv.rr import RRSeries
from ..platform.node import SensorNodeModel

__all__ = ["TradeoffPoint", "degradation_steps", "energy_quality_sweep",
           "paper_mode_ladder", "PAPER_MODE_LADDER"]

#: Static-only (label, spec) pairs of the Fig. 9 x-axis; dynamic modes
#: need calibrated thresholds, see :func:`paper_mode_ladder`.
PAPER_MODE_LADDER: tuple[tuple[str, PruningSpec], ...] = (
    ("band drop", PruningSpec.band_only()),
    ("band + 20%", PruningSpec.paper_mode(1)),
    ("band + 40%", PruningSpec.paper_mode(2)),
    ("band + 60%", PruningSpec.paper_mode(3)),
)


def degradation_steps(
    system: str, pruning: PruningSpec
) -> tuple[tuple[str, PruningSpec], ...]:
    """The :data:`PAPER_MODE_LADDER` entries strictly *deeper* than a base.

    The runtime load-shedding controller
    (:class:`repro.engine.controller.QualityController`) steps an
    overloaded subject down this list, one entry at a time, and back up
    when load recedes.  "Deeper" orders by ``(twiddle_fraction,
    band_drop)``: every paper mode degrades a conventional (exact)
    baseline, while a quality-scalable base only degrades further into
    modes that prune more than it already does — stepping a Set-2
    engine "down" to Set-1 would *raise* quality mid-overload.
    """
    if system == "conventional":
        return PAPER_MODE_LADDER
    base = (pruning.twiddle_fraction, bool(pruning.band_drop))
    return tuple(
        (label, spec)
        for label, spec in PAPER_MODE_LADDER
        if (spec.twiddle_fraction, bool(spec.band_drop)) > base
    )


def paper_mode_ladder(
    recordings: list[RRSeries], config: PSAConfig | None = None
) -> tuple[tuple[str, PruningSpec], ...]:
    """The full Fig. 9 mode ladder with design-time calibrated dynamic
    thresholds (run-time pruning compares ``|factor|*|data|`` against a
    value fixed over a calibration corpus, paper Section VI.C)."""
    calibration = calibrate(recordings, config or PSAConfig())
    dynamic = tuple(
        (
            f"band + {int(round(fraction * 100))}% dyn",
            calibration.pruning_spec(set_index, dynamic=True),
        )
        for set_index, fraction in sorted(
            {1: 0.2, 2: 0.4, 3: 0.6}.items()
        )
    )
    return PAPER_MODE_LADDER + dynamic


@dataclass(frozen=True)
class TradeoffPoint:
    """One bar group of Fig. 9.

    Attributes
    ----------
    label:
        Mode name.
    dynamic:
        Whether run-time pruning was used.
    distortion:
        Mean relative LF/HF error over the cohort.
    cycle_reduction:
        FFT-kernel cycle savings vs the split-radix baseline.
    static_savings:
        Energy savings without voltage-frequency scaling.
    vfs_savings:
        Energy savings with VFS within the baseline deadline.
    window_static_savings, window_vfs_savings:
        The same two figures for the whole analysis window (FFT plus
        extirpolation, moments and Lomb combination).
    """

    label: str
    dynamic: bool
    distortion: float
    cycle_reduction: float
    static_savings: float
    vfs_savings: float
    window_static_savings: float
    window_vfs_savings: float


def energy_quality_sweep(
    recordings: list[RRSeries],
    config: PSAConfig | None = None,
    node: SensorNodeModel | None = None,
    modes: tuple[tuple[str, PruningSpec], ...] | None = None,
) -> list[TradeoffPoint]:
    """Measure the full energy-quality trade-off (Fig. 9 data).

    When *modes* is omitted, the full ladder — static modes plus
    calibrated dynamic modes — is built from the recordings themselves.
    """
    if not recordings:
        raise SignalError("no recordings supplied")
    config = config or PSAConfig()
    node = node or SensorNodeModel()
    if modes is None:
        modes = paper_mode_ladder(recordings, config)
    reference_system = ConventionalPSA(config)
    references = [reference_system.analyze(rr).lf_hf for rr in recordings]

    points: list[TradeoffPoint] = []
    for label, spec in modes:
        system = QualityScalablePSA(config, pruning=spec, node=node)
        errors = [
            ratio_error(system.analyze(rr).lf_hf, reference)
            for rr, reference in zip(recordings, references)
        ]
        fft_static = system.energy_report(
            reference_system, apply_vfs=False, fft_only=True
        )
        fft_vfs = system.energy_report(
            reference_system, apply_vfs=True, fft_only=True
        )
        win_static = system.energy_report(
            reference_system, apply_vfs=False, fft_only=False
        )
        win_vfs = system.energy_report(
            reference_system, apply_vfs=True, fft_only=False
        )
        points.append(
            TradeoffPoint(
                label=label,
                dynamic=spec.dynamic,
                distortion=float(np.mean(errors)),
                cycle_reduction=fft_static.cycle_reduction,
                static_savings=fft_static.energy_savings,
                vfs_savings=fft_vfs.energy_savings,
                window_static_savings=win_static.energy_savings,
                window_vfs_savings=win_vfs.energy_savings,
            )
        )
    return points
