"""Twiddle-factor sensitivity analysis (paper Fig. 6 and Fig. 7).

Two tools: the magnitude histogram of the modified twiddle factors (the
basis for defining the three pruning sets) and the MSE sweep that
quantifies how output quality degrades as more factors are pruned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import require_power_of_two
from ..errors import SignalError
from ..ffts.pruning import TWIDDLE_SETS, PruningSpec, twiddle_threshold_for_fraction
from ..ffts.wavelet_fft import WaveletFFT
from ..wavelets.freq import twiddle_quadrants
from .mse import mse

__all__ = [
    "TwiddleHistogram",
    "twiddle_histogram",
    "SensitivityPoint",
    "mse_sensitivity_sweep",
]


@dataclass(frozen=True)
class TwiddleHistogram:
    """Magnitude distribution of the A and C twiddle diagonals (Fig. 6).

    Attributes
    ----------
    bin_edges:
        Histogram bin edges over the magnitude axis.
    counts:
        Occurrences per bin (A and C pooled, as in the paper's figure).
    set_thresholds:
        Magnitude cut-offs of the paper's three pruning sets.
    a_magnitudes, c_magnitudes:
        The raw diagonal magnitudes.
    """

    bin_edges: np.ndarray
    counts: np.ndarray
    set_thresholds: dict[int, float]
    a_magnitudes: np.ndarray
    c_magnitudes: np.ndarray


def twiddle_histogram(
    n: int = 512, basis: str = "haar", bins: int = 30
) -> TwiddleHistogram:
    """Histogram of |A| and |C| twiddle magnitudes with set boundaries."""
    require_power_of_two(n, "n")
    if bins < 2:
        raise SignalError(f"bins must be >= 2, got {bins}")
    a, _b, c, _d = twiddle_quadrants(n, basis)
    pooled = np.concatenate([np.abs(a), np.abs(c)])
    counts, edges = np.histogram(pooled, bins=bins, range=(0.0, float(pooled.max())))
    thresholds = {
        set_index: twiddle_threshold_for_fraction(pooled, fraction)
        for set_index, fraction in TWIDDLE_SETS.items()
    }
    return TwiddleHistogram(
        bin_edges=edges,
        counts=counts,
        set_thresholds=thresholds,
        a_magnitudes=np.abs(a),
        c_magnitudes=np.abs(c),
    )


@dataclass(frozen=True)
class SensitivityPoint:
    """MSE of one pruning degree over a window corpus (one Fig. 7 bar)."""

    label: str
    pruned_fraction: float
    dynamic: bool
    mean_mse: float
    max_mse: float


def mse_sensitivity_sweep(
    windows: list[np.ndarray],
    n: int = 512,
    basis: str = "haar",
    fractions: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6),
    band_drop: bool = True,
    include_dynamic: bool = False,
) -> list[SensitivityPoint]:
    """Sweep pruning degrees and measure spectrum MSE over *windows*.

    Every window is transformed by the exact FFT and by the pruned
    wavelet FFT; the MSE between the two spectra is averaged over the
    corpus, reproducing the experiment behind Fig. 7.
    """
    if not windows:
        raise SignalError("no windows supplied")
    points: list[SensitivityPoint] = []
    variants: list[tuple[float, bool]] = [(f, False) for f in fractions]
    if include_dynamic:
        variants += [(f, True) for f in fractions if f > 0]
    for fraction, dynamic in variants:
        plan = WaveletFFT(
            n,
            basis=basis,
            pruning=PruningSpec(
                band_drop=band_drop, twiddle_fraction=fraction, dynamic=dynamic
            ),
        )
        errors = []
        for window in windows:
            if window.size != n:
                raise SignalError(
                    f"window of length {window.size} does not match n={n}"
                )
            exact = np.fft.fft(window)
            errors.append(mse(exact, plan.transform(window)))
        label = f"{int(round(fraction * 100))}%" + (" dyn" if dynamic else "")
        points.append(
            SensitivityPoint(
                label=label,
                pruned_fraction=fraction,
                dynamic=dynamic,
                mean_mse=float(np.mean(errors)),
                max_mse=float(np.max(errors)),
            )
        )
    return points
