"""Analysis utilities: error metrics, sensitivity sweeps, trade-offs.

The measurement layer behind the benchmark harness: MSE-style metrics
(Fig. 7), the twiddle-magnitude histogram (Fig. 6), the energy-quality
sweep (Fig. 9) and ASCII reporting helpers.
"""

from .mse import mse, nmse, psnr_db, relative_band_error
from .reporting import bar_chart, format_percent, format_table
from .sensitivity import (
    SensitivityPoint,
    TwiddleHistogram,
    mse_sensitivity_sweep,
    twiddle_histogram,
)
from .tradeoff import PAPER_MODE_LADDER, TradeoffPoint, energy_quality_sweep

__all__ = [
    "PAPER_MODE_LADDER",
    "SensitivityPoint",
    "TradeoffPoint",
    "TwiddleHistogram",
    "bar_chart",
    "energy_quality_sweep",
    "format_percent",
    "format_table",
    "mse",
    "mse_sensitivity_sweep",
    "nmse",
    "psnr_db",
    "relative_band_error",
    "twiddle_histogram",
]
