"""Plain-text table rendering for the benchmark harness.

Every bench prints the rows/series of its paper figure or table; these
helpers keep that output uniform and readable both on a terminal and in
the committed result logs.
"""

from __future__ import annotations

from ..errors import SignalError

__all__ = ["format_table", "format_percent", "bar_chart"]


def format_percent(value: float, signed: bool = False) -> str:
    """Render a fraction as a percentage string."""
    sign = "+" if signed and value >= 0 else ""
    return f"{sign}{value * 100.0:.1f}%"


def format_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Render an aligned ASCII table."""
    if not rows:
        raise SignalError("table has no rows")
    if any(len(row) != len(headers) for row in rows):
        raise SignalError("row width does not match header width")
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    rule = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(rule)
    for row in rows:
        lines.append(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def bar_chart(
    labels: list[str], values: list[float], width: int = 40, unit: str = ""
) -> str:
    """Render a horizontal ASCII bar chart (for histogram-style figures)."""
    if not labels or len(labels) != len(values):
        raise SignalError("labels and values must be non-empty and equal length")
    peak = max(values)
    if peak <= 0:
        raise SignalError("all values are non-positive")
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(int(round(width * value / peak)), 0)
        lines.append(f"{label.ljust(label_width)} | {bar} {value:g}{unit}")
    return "\n".join(lines)
