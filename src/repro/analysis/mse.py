"""Error metrics between exact and approximated spectra.

The paper quantifies stage-2 pruning damage as "the mean-square-error
(MSE) between the original output signal and the approximated one"
(Section V.B, Fig. 7); these helpers implement that and the usual
normalised variants.
"""

from __future__ import annotations

import numpy as np

from ..errors import SignalError

__all__ = ["mse", "nmse", "psnr_db", "relative_band_error"]


def _pair(reference, approximate) -> tuple[np.ndarray, np.ndarray]:
    ref = np.asarray(reference, dtype=np.complex128).ravel()
    approx = np.asarray(approximate, dtype=np.complex128).ravel()
    if ref.shape != approx.shape:
        raise SignalError(
            f"shape mismatch: {ref.shape} vs {approx.shape}"
        )
    if ref.size == 0:
        raise SignalError("empty arrays")
    return ref, approx


def mse(reference, approximate) -> float:
    """Mean squared error |ref - approx|^2 (the paper's Fig. 7 metric)."""
    ref, approx = _pair(reference, approximate)
    return float(np.mean(np.abs(ref - approx) ** 2))


def nmse(reference, approximate) -> float:
    """MSE normalised by the reference energy (scale-free)."""
    ref, approx = _pair(reference, approximate)
    energy = float(np.mean(np.abs(ref) ** 2))
    if energy == 0.0:
        raise SignalError("reference has zero energy")
    return mse(ref, approx) / energy


def psnr_db(reference, approximate) -> float:
    """Peak signal-to-noise ratio in dB."""
    ref, approx = _pair(reference, approximate)
    peak = float(np.max(np.abs(ref)) ** 2)
    if peak == 0.0:
        raise SignalError("reference has zero peak")
    error = mse(ref, approx)
    if error == 0.0:
        return float("inf")
    return 10.0 * np.log10(peak / error)


def relative_band_error(reference: float, approximate: float) -> float:
    """Relative error of a scalar band power or ratio."""
    if reference == 0.0:
        raise SignalError("reference value is zero")
    return abs(approximate - reference) / abs(reference)
