"""Synchronous client for the ingestion gateway.

:class:`ServiceClient` speaks the framed newline-JSON stream protocol
(:mod:`repro.service.wire`) over a plain socket — no asyncio required
on the client side, so replay tools, tests and benchmarks stay simple
synchronous code::

    client = ServiceClient(address, tenant="ward-a", token="...")
    client.open("subject-1")
    for t, rr in beat_batches:
        for window in client.feed(t, rr):     # windows already pushed
            update_monitor(window)
    result = client.finalize()                # full PSAResult dict
    client.close()

``feed`` opportunistically drains whatever ``window`` frames the server
has already pushed (non-blocking), which keeps the client's receive
buffer — and therefore the server's emission queue — moving even while
the caller is busy producing data.  Without that drain a client that
only reads at finalize time could deadlock against the server's
backpressure: server blocked writing windows to a full socket, client
blocked writing feeds to a full socket.

REST access goes through the module functions (:func:`rest_analyze`,
:func:`rest_stats`, :func:`rest_windows`), built on
:mod:`http.client` — same no-third-party-framework rule as the server.
"""

from __future__ import annotations

import json
import select
import socket

import numpy as np

from ..errors import ServiceError
from ..fleet.transport import parse_address
from .wire import decode_frame, encode_frame

__all__ = [
    "ServiceClient",
    "rest_analyze",
    "rest_stats",
    "rest_windows",
]

_RECV_CHUNK = 1 << 16


def _jsonable(values):
    """Make feed payloads JSON-serialisable (arrays → lists)."""
    if isinstance(values, np.ndarray):
        return values.tolist()
    if isinstance(values, (np.floating, np.integer)):
        return values.item()
    return values


class ServiceClient:
    """One framed-stream connection to a :class:`GatewayServer`.

    Parameters
    ----------
    address:
        The gateway's ``host:port``.
    tenant, token:
        Credentials for the ``hello`` handshake (must name a
        :class:`~repro.service.config.TenantSpec` on the server).
    timeout:
        Socket timeout in seconds for blocking reads (handshake,
        finalize).  Feeds only block when the server backpressures.
    """

    def __init__(
        self,
        address: str,
        tenant: str = "default",
        token: str = "dev-token",
        timeout: float = 120.0,
    ):
        host, port = parse_address(address)
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(timeout)
        self._buffer = bytearray()
        self._tenant = tenant
        self._token = token
        self._subject = None
        self._closed = False
        #: ``window`` frames received so far, in delivery order.
        self.windows: list[dict] = []
        #: Non-fatal ``error`` frames the server sent (bad feeds).
        self.errors: list[dict] = []
        #: The ``result`` frame, once received (finalize or server drain).
        self.result: dict | None = None
        #: Set when the server announced a graceful drain.
        self.shutdown_frame: dict | None = None
        self.bytes_sent = 0
        self.bytes_received = 0

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------

    def _send(self, frame: dict) -> None:
        data = encode_frame(frame)
        self._sock.sendall(data)
        self.bytes_sent += len(data)

    def _recv_into_buffer(self, blocking: bool) -> bool:
        """Pull available bytes; ``False`` on EOF or nothing to read."""
        if not blocking:
            readable, _, _ = select.select([self._sock], [], [], 0)
            if not readable:
                return False
        chunk = self._sock.recv(_RECV_CHUNK)
        if not chunk:
            raise ServiceError("connection closed by server")
        self._buffer.extend(chunk)
        self.bytes_received += len(chunk)
        return True

    def _pop_line(self) -> bytes | None:
        idx = self._buffer.find(b"\n")
        if idx < 0:
            return None
        line = bytes(self._buffer[: idx + 1])
        del self._buffer[: idx + 1]
        return line

    def _dispatch(self, frame: dict) -> dict:
        """Record a frame on the right pile; raise on fatal errors."""
        op = frame.get("op")
        if op == "window":
            self.windows.append(frame)
        elif op == "result":
            self.result = frame
        elif op == "shutdown":
            self.shutdown_frame = frame
        elif op == "error":
            if frame.get("fatal"):
                raise ServiceError(f"server error: {frame.get('error')}")
            self.errors.append(frame)
        return frame

    def _next_frame(self) -> dict:
        """Blocking read of the next frame."""
        while True:
            line = self._pop_line()
            if line is not None:
                return self._dispatch(decode_frame(line))
            self._recv_into_buffer(blocking=True)

    def drain(self) -> list[dict]:
        """Non-blocking drain of already-pushed frames.

        Returns the ``window`` frames received by this call.  Keeps the
        socket's receive path moving so server-side backpressure only
        engages when the client genuinely falls behind.
        """
        before = len(self.windows)
        while True:
            line = self._pop_line()
            if line is not None:
                self._dispatch(decode_frame(line))
                continue
            if not self._recv_into_buffer(blocking=False):
                return self.windows[before:]

    # ------------------------------------------------------------------
    # Stream protocol
    # ------------------------------------------------------------------

    def open(self, subject: str) -> dict:
        """Handshake: authenticate and bind this connection to a subject."""
        self._send({
            "op": "hello",
            "tenant": self._tenant,
            "token": self._token,
            "subject": subject,
        })
        frame = self._next_frame()
        if frame.get("op") != "ready":
            raise ServiceError(f"expected ready frame, got {frame!r}")
        self._subject = subject
        return frame

    def feed(self, times, values, corrected=None) -> list[dict]:
        """Push one beat batch; returns windows drained opportunistically.

        ``corrected`` optionally carries the per-beat correction mask
        (0/1, same length as ``times``) so server-side window metrics
        report artifact provenance.
        """
        frame = {
            "op": "feed",
            "t": _jsonable(times),
            "rr": _jsonable(values),
        }
        if corrected is not None:
            frame["corrected"] = _jsonable(corrected)
        self._send(frame)
        return self.drain()

    def sync(self) -> None:
        """Ingestion barrier: block until all prior feeds are ingested.

        Frames are processed in order server-side, so the ``pong``
        reply proves every earlier ``feed`` on this connection reached
        the hub — call this before triggering a server-side drain whose
        result must cover everything sent.
        """
        self._send({"op": "ping"})
        while True:
            if self._next_frame().get("op") == "pong":
                return

    def finalize(self) -> dict:
        """End the recording; returns the full result payload (dict).

        Window frames still in flight are collected into
        :attr:`windows` on the way to the ``result`` frame.
        """
        self._send({"op": "finalize"})
        return self.wait_result()

    def wait_result(self) -> dict:
        """Block until a ``result`` frame arrives (e.g. server drain)."""
        while self.result is None:
            self._next_frame()
        return self.result

    def wait_shutdown(self) -> dict:
        """Block until the server's ``shutdown`` frame arrives."""
        while self.shutdown_frame is None:
            self._next_frame()
        return self.shutdown_frame

    def close(self, notify: bool = True) -> None:
        """Detach (the subject's server-side session survives).

        ``notify=False`` skips the polite ``close`` frame — the abrupt
        disconnect path tests exercise.
        """
        if self._closed:
            return
        self._closed = True
        try:
            if notify:
                self._send({"op": "close"})
        except OSError:
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# REST helpers
# ----------------------------------------------------------------------


def _rest_request(
    address: str,
    method: str,
    path: str,
    token: str,
    body: dict | None = None,
    timeout: float = 120.0,
) -> dict:
    import http.client

    host, port = parse_address(address)
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body)
        conn.request(method, path, body=payload, headers={
            "Authorization": f"Bearer {token}",
            "Content-Type": "application/json",
        })
        response = conn.getresponse()
        data = json.loads(response.read().decode("utf-8"))
        if response.status != 200:
            raise ServiceError(
                f"{method} {path} failed ({response.status}): "
                f"{data.get('error', data)}"
            )
        return data
    finally:
        conn.close()


def rest_analyze(
    address: str, token: str, times, values,
    count_ops: bool = False, corrected=None, timeout: float = 120.0,
) -> dict:
    """``POST /v1/analyze``: one whole RR recording, full result back."""
    body = {
        "t": _jsonable(np.asarray(times, dtype=float)),
        "rr": _jsonable(np.asarray(values, dtype=float)),
        "count_ops": bool(count_ops),
    }
    if corrected is not None:
        body["corrected"] = _jsonable(np.asarray(corrected, dtype=float))
    return _rest_request(
        address, "POST", "/v1/analyze", token, body=body, timeout=timeout
    )


def rest_stats(address: str, token: str, timeout: float = 30.0) -> dict:
    """``GET /v1/stats``: wire counters + engine/controller stats."""
    return _rest_request(address, "GET", "/v1/stats", token, timeout=timeout)


def rest_windows(
    address: str, token: str, subject: str, timeout: float = 30.0
) -> dict:
    """``GET /v1/subjects/<id>/windows``: the subject's emissions."""
    return _rest_request(
        address, "GET", f"/v1/subjects/{subject}/windows", token,
        timeout=timeout,
    )
