"""Newline-JSON wire protocol of the ingestion gateway.

One frame is one JSON object on one line (``\\n`` terminated, UTF-8).
The format is deliberately boring: it is debuggable with ``nc``,
trivially bridgeable to a websocket, and — because CPython's ``json``
serialises floats via ``repr`` (shortest round-tripping form) — it
carries IEEE-754 doubles **bit-exactly**.  That last property is what
lets the gateway promise byte-identical spectra to in-process
:meth:`Engine.analyze`: nothing on the wire rounds.

Client → server operations (``op`` key):

``hello``
    ``{"op": "hello", "tenant": ..., "token": ..., "subject": ...}`` —
    authenticate and bind the connection to one subject stream.
``feed``
    ``{"op": "feed", "t": [...], "rr": [...]}`` — a batch of beat
    timestamps (seconds) and RR intervals.  Scalars also accepted.
    An optional ``"corrected"`` key carries the per-beat correction
    mask (0/1 floats, same length) produced by artifact filtering;
    it feeds the per-window quality metrics downstream.
``finalize``
    End of recording: drain, emit the remaining windows, reply with a
    ``result`` frame.
``ping``
    Ingestion barrier: replied to with ``pong`` after every earlier
    frame on the connection has been processed.
``close``
    Detach without finalizing; the subject's session survives on the
    hub so a later connection may re-attach (``hello`` again) and
    continue feeding.

Server → client frames:

``ready``
    Acknowledges ``hello``; echoes tenant/subject.
``window``
    One completed Welch window (index, start/center time, quality
    level, power row) — pushed as soon as it closes.
``result``
    The full :class:`~repro.core.system.PSAResult` after ``finalize``.
``error``
    ``{"op": "error", "error": ..., "fatal": bool}``.  Non-fatal
    errors (e.g. a feed rejected by signal validation) leave the
    connection usable; fatal ones (auth, protocol violations) are
    followed by a close.
``shutdown``
    Server-initiated graceful drain: the tenant's sessions were
    finalized; a ``result`` frame for this connection's subject
    precedes this frame when the subject had enough data.
"""

from __future__ import annotations

import json

import numpy as np

from ..core.system import PSAResult
from ..engine.streaming import WindowEmission
from ..errors import ServiceError
from ..ffts.opcount import OpCounts

__all__ = [
    "encode_frame",
    "decode_frame",
    "emission_to_frame",
    "result_to_dict",
    "counts_to_dict",
    "counts_from_dict",
]


def encode_frame(frame: dict) -> bytes:
    """Serialize one frame to its wire form (compact JSON + newline)."""
    return json.dumps(frame, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> dict:
    """Parse one wire line into a frame dict.

    Raises :class:`ServiceError` on malformed JSON or a non-object
    payload — the caller treats this as a fatal protocol error for the
    offending connection only.
    """
    try:
        frame = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ServiceError(f"malformed frame: {exc}") from None
    if not isinstance(frame, dict):
        raise ServiceError(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    return frame


def emission_to_frame(subject_id: str, emission: WindowEmission) -> dict:
    """The ``window`` frame for one streaming emission."""
    return {
        "op": "window",
        "subject": subject_id,
        "index": emission.index,
        "start": emission.start,
        "center": emission.center,
        "quality": emission.quality,
        "metrics": (
            None if emission.metrics is None else emission.metrics.to_dict()
        ),
        "power": emission.spectrum.power.tolist(),
    }


def counts_to_dict(counts: OpCounts | None) -> dict | None:
    """Plain-data form of an :class:`OpCounts` (``None`` passes through)."""
    if counts is None:
        return None
    return {
        "mults": counts.mults,
        "adds": counts.adds,
        "compares": counts.compares,
    }


def counts_from_dict(data: dict | None) -> OpCounts | None:
    """Inverse of :func:`counts_to_dict`."""
    if data is None:
        return None
    return OpCounts(
        mults=int(data["mults"]),
        adds=int(data["adds"]),
        compares=int(data["compares"]),
    )


def result_to_dict(result: PSAResult) -> dict:
    """JSON-ready form of a :class:`PSAResult`.

    Carries everything the acceptance surface compares: the frequency
    grid, the full spectrogram (row per window), window centre times,
    the Welch average, band powers, per-window ratios, the detection
    verdict, skipped-window count and operation totals.  Floats
    round-trip exactly (``json`` uses ``repr``), so equality against
    the in-process result is bitwise, not approximate.
    """
    welch = result.welch
    return {
        "frequencies": welch.frequencies.tolist(),
        "spectrogram": [row.tolist() for row in welch.spectrogram],
        "averaged": welch.averaged.tolist(),
        "window_times": welch.window_times.tolist(),
        "skipped_windows": welch.skipped_windows,
        "n_windows": welch.n_windows,
        "lf_hf": result.lf_hf,
        "band_powers": dict(result.band_powers),
        "window_ratios": np.asarray(result.window_ratios).tolist(),
        "window_metrics": [m.to_dict() for m in result.window_metrics],
        "detection": {
            "is_arrhythmia": bool(result.detection.is_arrhythmia),
            "ratio": result.detection.ratio,
            "threshold": result.detection.threshold,
            "window_ratios": np.asarray(
                result.detection.window_ratios
            ).tolist(),
        },
        "counts": counts_to_dict(result.counts),
    }
