"""Declarative configuration of the network service layer.

:class:`ServiceConfig` is the service-shaped sibling of
:class:`~repro.engine.config.EngineConfig`: one immutable dataclass,
losslessly JSON-round-trippable (``to_dict``/``from_dict``/``to_json``/
``from_json``/``from_file``, unknown keys rejected), that fully
describes a deployable gateway — where it listens, which tenants it
serves, and the wire-discipline knobs (events per shared-batch flush,
per-frame byte cap, handshake timeout).

Each :class:`TenantSpec` maps one static bearer token to one
:class:`EngineConfig`: tenants get **isolated** engines and stream hubs
(their own SLO controller and quality ladder, their own fleet pool),
so one tenant's overload can never shed another tenant's quality.
Tokens are compared constant-time at the gateway
(:func:`hmac.compare_digest`); they are static shared secrets — the
deployment story for rotating credentials sits in front of this layer,
not inside it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace

from ..engine.config import EngineConfig
from ..errors import ConfigurationError
from ..fleet.transport import parse_address

__all__ = ["ServiceConfig", "TenantSpec", "DEFAULT_MAX_FRAME_BYTES"]

#: Hard cap on one newline-JSON frame (bytes), service default.  The
#: same discipline as the fleet transport's MAX_FRAME_BYTES guard: a
#: malformed or hostile client's oversized line is a protocol error,
#: never an allocation request that wedges the event loop.
DEFAULT_MAX_FRAME_BYTES = 1 << 22


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the gateway: a name, a token, an engine config.

    Attributes
    ----------
    name:
        Tenant identifier clients send in their ``hello`` frame and the
        REST endpoints scope queries to.  Non-empty, unique per service.
    token:
        Static bearer token authenticating the tenant (framed ``hello``
        and REST ``Authorization: Bearer`` alike).  Non-empty, unique
        per service — a token identifies exactly one tenant.
    engine:
        The :class:`EngineConfig` this tenant's isolated engine and
        :class:`~repro.engine.hub.StreamHub` run under (system kind,
        pruning, provider/jobs/workers, optional SLO controller).
    """

    name: str
    token: str
    engine: EngineConfig = EngineConfig()

    def __post_init__(self):
        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError(
                f"tenant name must be a non-empty string, got {self.name!r}"
            )
        if not isinstance(self.token, str) or not self.token:
            raise ConfigurationError(
                f"tenant {self.name!r} token must be a non-empty string"
            )
        if not isinstance(self.engine, EngineConfig):
            raise ConfigurationError(
                f"tenant {self.name!r} engine must be an EngineConfig, "
                f"got {type(self.engine).__name__}"
            )

    def to_dict(self) -> dict:
        """Plain-data (JSON-ready) representation of this tenant."""
        return {
            "name": self.name,
            "token": self.token,
            "engine": self.engine.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TenantSpec":
        """Reconstruct a tenant from :meth:`to_dict` output."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"tenant spec must be a mapping, got {type(data).__name__}"
            )
        unknown = set(data) - {"name", "token", "engine"}
        if unknown:
            raise ConfigurationError(
                f"unknown tenant spec keys: {sorted(unknown)}"
            )
        kwargs: dict = {
            key: data[key] for key in ("name", "token") if key in data
        }
        if "engine" in data:
            kwargs["engine"] = EngineConfig.from_dict(data["engine"])
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ConfigurationError(f"invalid tenant spec: {exc}") from None


@dataclass(frozen=True)
class ServiceConfig:
    """Immutable, fully serializable configuration of the gateway.

    Attributes
    ----------
    listen:
        ``host:port`` the gateway binds (port 0 = ephemeral; the bound
        address is on :attr:`GatewayServer.address` after start).  One
        port serves both protocols — framed newline-JSON streams and
        HTTP REST — dispatched on the first byte of each connection.
    tenants:
        The :class:`TenantSpec` entries this service authenticates.
        Defaults to a single ``default`` tenant with the development
        token ``dev-token`` running the default engine config —
        replace it for any non-local deployment.
    round_events:
        Feed events per shared-batch flush round when a connection is
        pumped through :meth:`StreamHub.serve` semantics (the framed
        path flushes per feed via the aio layer; this caps how long a
        quiet tenant's windows may wait).
    max_frame_bytes:
        Per-frame byte cap of the newline-JSON protocol and the REST
        body limit.  A longer line/body is a protocol error: the
        offending connection gets an error frame (or a 413) and is
        closed, other connections are untouched.
    hello_timeout:
        Seconds a fresh stream connection may take to send its
        ``hello`` frame before the gateway drops it (half-open
        connections must not accumulate).
    count_ops:
        When True every tenant hub counts executed operations
        (:class:`~repro.ffts.opcount.OpCounts` in results) — the
        bit-identity verification surface; off by default like the
        in-process entry points.
    """

    listen: str = "127.0.0.1:8737"
    tenants: tuple[TenantSpec, ...] = (TenantSpec("default", "dev-token"),)
    round_events: int = 64
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    hello_timeout: float = 10.0
    count_ops: bool = False

    def __post_init__(self):
        parse_address(self.listen, allow_ephemeral=True)
        tenants = tuple(self.tenants)
        if not tenants:
            raise ConfigurationError("service needs at least one tenant")
        names: set[str] = set()
        tokens: set[str] = set()
        for tenant in tenants:
            if not isinstance(tenant, TenantSpec):
                raise ConfigurationError(
                    "tenants must be TenantSpec entries, got "
                    f"{type(tenant).__name__}"
                )
            if tenant.name in names:
                raise ConfigurationError(
                    f"duplicate tenant name {tenant.name!r}"
                )
            if tenant.token in tokens:
                raise ConfigurationError(
                    f"tenant {tenant.name!r} reuses another tenant's token "
                    "(a token must identify exactly one tenant)"
                )
            names.add(tenant.name)
            tokens.add(tenant.token)
        object.__setattr__(self, "tenants", tenants)
        if int(self.round_events) < 1:
            raise ConfigurationError(
                f"round_events must be >= 1, got {self.round_events}"
            )
        object.__setattr__(self, "round_events", int(self.round_events))
        if int(self.max_frame_bytes) < 1024:
            raise ConfigurationError(
                f"max_frame_bytes must be >= 1024, got {self.max_frame_bytes}"
            )
        object.__setattr__(self, "max_frame_bytes", int(self.max_frame_bytes))
        try:
            timeout = float(self.hello_timeout)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"hello_timeout must be a number (seconds), got "
                f"{self.hello_timeout!r}"
            ) from None
        if not timeout > 0:
            raise ConfigurationError(
                f"hello_timeout must be > 0, got {timeout}"
            )
        object.__setattr__(self, "hello_timeout", timeout)
        object.__setattr__(self, "count_ops", bool(self.count_ops))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def tenant(self, name: str) -> TenantSpec:
        """The named tenant (:class:`ConfigurationError` if unknown)."""
        for tenant in self.tenants:
            if tenant.name == name:
                return tenant
        raise ConfigurationError(f"unknown tenant {name!r}")

    def replace(self, **changes) -> "ServiceConfig":
        """Copy with the given fields changed (dataclass ``replace``)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data (JSON-ready) representation of this config."""
        return {
            "listen": self.listen,
            "tenants": [tenant.to_dict() for tenant in self.tenants],
            "round_events": self.round_events,
            "max_frame_bytes": self.max_frame_bytes,
            "hello_timeout": self.hello_timeout,
            "count_ops": self.count_ops,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceConfig":
        """Reconstruct a config from :meth:`to_dict` output.

        Missing keys take their defaults; unknown keys are a
        :class:`ConfigurationError` (a typo must not silently run a
        different service than asked).
        """
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"service config must be a mapping, got {type(data).__name__}"
            )
        known = {
            "listen", "tenants", "round_events", "max_frame_bytes",
            "hello_timeout", "count_ops",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown service config keys: {sorted(unknown)}; "
                f"known keys: {sorted(known)}"
            )
        kwargs: dict = {
            key: data[key]
            for key in known - {"tenants"}
            if key in data
        }
        if "tenants" in data:
            tenants = data["tenants"]
            if isinstance(tenants, (str, dict)) or not hasattr(
                tenants, "__iter__"
            ):
                raise ConfigurationError(
                    "tenants must be a list of tenant spec mappings"
                )
            kwargs["tenants"] = tuple(
                TenantSpec.from_dict(entry) for entry in tenants
            )
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ConfigurationError(f"invalid service config: {exc}") from None

    def to_json(self, indent: int | None = 2) -> str:
        """JSON text of :meth:`to_dict` (round-trips losslessly)."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ServiceConfig":
        """Reconstruct a config from :meth:`to_json` output."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"service config is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path) -> "ServiceConfig":
        """Load a config from a JSON file path."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read service config {path!r}: {exc}"
            ) from None
        return cls.from_json(text)
