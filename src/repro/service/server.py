"""The asyncio ingestion gateway: framed streams + REST over StreamHub.

:class:`GatewayServer` turns the in-process streaming machinery into a
deployable network front end.  One listening port serves two protocols,
dispatched on the first byte of each connection:

* ``{`` — the framed newline-JSON stream protocol of
  :mod:`repro.service.wire`: a ``hello`` (tenant + token + subject)
  binds the connection to one subject of one tenant's
  :class:`~repro.engine.hub.StreamHub`, ``feed`` frames push beat
  batches through :meth:`AsyncStreamingSession.feed` (the hub's shared
  cross-subject batch), completed windows come back down the same
  connection as ``window`` frames, and ``finalize`` returns the full
  bit-identical :class:`~repro.core.system.PSAResult`.
* an ASCII letter (``GET`` / ``POST``) — a minimal stdlib HTTP/1.1
  REST gateway: ``POST /v1/analyze`` (whole recording in, result out),
  ``GET /v1/subjects/<id>/windows``, ``GET /v1/stats``.  No
  third-party web framework; the parser speaks exactly the subset the
  documented endpoints need and closes every connection after one
  response.

Tenancy and isolation
---------------------
Tenants (static bearer tokens, see
:class:`~repro.service.config.ServiceConfig`) get fully isolated
engines and hubs, created lazily on first authenticated use and
reference-counted: when a tenant's last stream connection detaches, its
engine's fleet pool is released (the hub and its sessions survive, so
REST queries and reconnecting feeders keep working; the pool re-forks
on demand).  A dropped connection does **not** finalize its subject —
the session stays on the hub and a later ``hello`` for the same subject
re-attaches and resumes exactly where the disconnect interrupted it.

Backpressure is end to end: emission queues are bounded
(:mod:`repro.engine.aio`), the per-connection pump awaits
``writer.drain()``, so a client that stops reading eventually stalls
its own feeds — never the server's memory.

Graceful drain
--------------
:meth:`GatewayServer.shutdown` (and SIGTERM/SIGINT under ``python -m
repro serve``) stops accepting, finalizes every tenant's subjects —
trailing windows in the usual shared batches, results delivered to
still-connected clients as ``result`` frames followed by ``shutdown``
— then closes hubs and fleet pools.  Because finalization routes
through the same choke point as everything else, a drained mid-stream
subject's result is bit-identical to the uninterrupted run.
"""

from __future__ import annotations

import asyncio
import hmac
import json
import threading

import numpy as np

from ..engine import Engine
from ..engine.aio import _drain
from ..errors import ConfigurationError, ServiceError, SignalError
from ..hrv.rr import RRSeries
from .config import ServiceConfig
from .wire import (
    decode_frame,
    emission_to_frame,
    encode_frame,
    result_to_dict,
)

__all__ = ["GatewayServer", "GatewayThread"]


class _Tenant:
    """One tenant's isolated runtime: engine, hub, results, refcount."""

    def __init__(self, spec, count_ops: bool):
        self.spec = spec
        self.engine = Engine(spec.engine)
        self.hub = self.engine.open_hub(count_ops=count_ops)
        #: Live stream connections bound to this tenant; when it drops
        #: to zero the fleet pool is released (the hub survives).
        self.connections = 0
        #: Finalized results in wire form, keyed by subject — served by
        #: REST after the stream that produced them is long gone.
        self.results: dict = {}
        #: Subjects the graceful drain could not finalize (too short),
        #: with the reason — surfaced in stats instead of vanishing.
        self.drain_errors: dict = {}


class _StreamConn:
    """Bookkeeping for one live framed-stream connection."""

    def __init__(self, tenant_name: str, subject, writer):
        self.tenant_name = tenant_name
        self.subject = subject
        self.writer = writer
        #: The connection's emission-pump task; the graceful drain
        #: awaits it so tail windows precede the pushed result frame.
        self.pump: asyncio.Future | None = None


class GatewayServer:
    """Asyncio gateway serving framed streams and REST over one port.

    Typical embedded use (tests, notebooks)::

        server = GatewayServer(ServiceConfig(listen="127.0.0.1:0"))
        await server.start()
        print(server.address)       # the bound host:port
        ...
        await server.shutdown()     # graceful drain

    For a blocking foreground process use :meth:`serve_forever` (which
    returns once a concurrent :meth:`shutdown` completes), or the CLI:
    ``python -m repro serve --listen HOST:PORT [--config service.json]``.
    Threaded callers (synchronous tests and benchmarks) want
    :class:`GatewayThread`.
    """

    def __init__(self, config: ServiceConfig | None = None):
        self._config = config or ServiceConfig()
        self._tenants: dict[str, _Tenant] = {}
        self._server: asyncio.base_events.Server | None = None
        self._conns: set[_StreamConn] = set()
        self._shutting_down = False
        self._stopped: asyncio.Event | None = None
        self._wire = {
            "connections": 0,
            "rejected": 0,
            "frames_in": 0,
            "frames_out": 0,
            "bytes_in": 0,
            "bytes_out": 0,
            "http_requests": 0,
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def config(self) -> ServiceConfig:
        return self._config

    @property
    def address(self) -> str:
        """The bound ``host:port`` (resolves port 0 after :meth:`start`)."""
        if self._server is None:
            raise ServiceError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return f"{host}:{port}"

    def stats(self) -> dict:
        """Service-level wire counters and per-tenant summary."""
        return {
            "wire": dict(self._wire),
            "tenants": {
                name: {
                    "connections": tenant.connections,
                    "subjects": list(tenant.hub.subjects),
                    "results": sorted(tenant.results),
                    "drain_errors": dict(tenant.drain_errors),
                }
                for name, tenant in self._tenants.items()
            },
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "GatewayServer":
        """Bind the listen address and start accepting connections."""
        if self._server is not None:
            raise ServiceError("server is already started")
        from ..fleet.transport import parse_address

        host, port = parse_address(self._config.listen, allow_ephemeral=True)
        self._stopped = asyncio.Event()
        # The reader limit doubles as the frame-size guard: a line
        # longer than max_frame_bytes makes readline raise instead of
        # buffering without bound.
        self._server = await asyncio.start_server(
            self._handle_connection, host, port,
            limit=self._config.max_frame_bytes,
        )
        return self

    async def serve_forever(self) -> None:
        """Block until a concurrent :meth:`shutdown` completes."""
        if self._stopped is None:
            raise ServiceError("server is not started")
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finalize everything, close.

        Every tenant's open subjects are finalized — results pushed to
        still-connected stream clients (``result`` then ``shutdown``
        frames) and retained for REST — then hubs close and fleet pools
        are released.  Idempotent; concurrent callers all return once
        the drain completes.
        """
        if self._shutting_down:
            await self._stopped.wait()
            return
        self._shutting_down = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            for tenant in self._tenants.values():
                await self._drain_tenant(tenant)
            # Results (or shutdown alone) to whoever is still connected.
            for conn in list(self._conns):
                await self._notify_shutdown(conn)
        finally:
            for tenant in self._tenants.values():
                tenant.hub.close()
                tenant.engine.close()
            if self._stopped is not None:
                self._stopped.set()

    async def _drain_tenant(self, tenant: _Tenant) -> None:
        """Finalize every open subject of one tenant, shared-batch style."""
        hub = tenant.hub
        if not hub._sessions:
            return
        # Deliver everything already completed before finalizing, so
        # connected consumers see their windows in order ahead of any
        # tail delivery.
        await _drain(hub)
        for subject in list(hub.subjects):
            if subject in tenant.results:
                continue
            async_session = hub._async_sessions.get(subject)
            try:
                if async_session is not None:
                    # The async path delivers the tail windows to the
                    # still-attached connection before ending its
                    # iteration.
                    result = await async_session.finalize()
                else:
                    result = hub.finalize(subject)
            except SignalError as exc:
                # A too-short subject must not poison the drain of its
                # siblings; record the reason and move on.
                tenant.drain_errors[subject] = str(exc)
                continue
            tenant.results[subject] = result_to_dict(result)

    async def _notify_shutdown(self, conn: _StreamConn) -> None:
        tenant = self._tenants.get(conn.tenant_name)
        if conn.pump is not None and not conn.pump.done():
            # Finalizing the subject ended its async iteration; wait for
            # the pump to flush the tail windows down the socket so the
            # result frame never overtakes them.
            try:
                await asyncio.wait_for(asyncio.shield(conn.pump), 60)
            except (asyncio.TimeoutError, ConnectionError, OSError):
                pass
        try:
            if tenant is not None and conn.subject in tenant.results:
                await self._send(conn.writer, {
                    "op": "result",
                    "subject": conn.subject,
                    **tenant.results[conn.subject],
                })
            reason = None
            if tenant is not None:
                reason = tenant.drain_errors.get(conn.subject)
            await self._send(conn.writer, {
                "op": "shutdown",
                **({} if reason is None else {"error": reason}),
            })
            # Half-close: the client reads its frames up to a clean
            # EOF.  A hard close here could RST the connection (unread
            # in-flight client frames) and junk the very result we
            # just delivered.
            if conn.writer.can_write_eof():
                conn.writer.write_eof()
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    # Tenancy
    # ------------------------------------------------------------------

    def _authenticate(self, tenant_name, token):
        """Resolve tenant by name + constant-time token check."""
        if not isinstance(tenant_name, str) or not isinstance(token, str):
            raise ServiceError("authentication failed")
        try:
            spec = self._config.tenant(tenant_name)
        except ConfigurationError:
            # Burn a comparison anyway so an unknown tenant name is not
            # distinguishable from a bad token by timing.
            hmac.compare_digest(token, token)
            raise ServiceError("authentication failed") from None
        if not hmac.compare_digest(
            token.encode("utf-8"), spec.token.encode("utf-8")
        ):
            raise ServiceError("authentication failed")
        return spec

    def _authenticate_token(self, token):
        """Resolve a tenant by bearer token alone (REST path)."""
        if not isinstance(token, str) or not token:
            raise ServiceError("authentication failed")
        matched = None
        for spec in self._config.tenants:
            # Constant-time per candidate, and every candidate is
            # checked — no early exit to time-probe the tenant list.
            if hmac.compare_digest(
                token.encode("utf-8"), spec.token.encode("utf-8")
            ):
                matched = spec
        if matched is None:
            raise ServiceError("authentication failed")
        return matched

    def _tenant(self, spec) -> _Tenant:
        """The tenant's runtime, created lazily on first use."""
        tenant = self._tenants.get(spec.name)
        if tenant is None:
            tenant = _Tenant(spec, count_ops=self._config.count_ops)
            self._tenants[spec.name] = tenant
        return tenant

    # ------------------------------------------------------------------
    # Connection dispatch
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self._wire["connections"] += 1
        try:
            if self._shutting_down:
                return
            try:
                first = await asyncio.wait_for(
                    reader.readexactly(1), self._config.hello_timeout
                )
            except (
                asyncio.TimeoutError, asyncio.IncompleteReadError,
                ConnectionError, OSError,
            ):
                return
            if first == b"{":
                await self._handle_stream(reader, writer, first)
            else:
                await self._handle_http(reader, writer, first)
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _send(self, writer, frame: dict) -> None:
        data = encode_frame(frame)
        writer.write(data)
        self._wire["frames_out"] += 1
        self._wire["bytes_out"] += len(data)
        await writer.drain()

    async def _read_frame(self, reader, first: bytes = b"") -> dict | None:
        """Read one newline-JSON frame; ``None`` on EOF.

        An over-limit line raises :class:`ServiceError` (fatal for the
        connection); malformed JSON likewise.
        """
        try:
            line = first + await reader.readline()
        except ValueError:
            # StreamReader's limit tripped: the line exceeds
            # max_frame_bytes and the rest of the buffer is garbage.
            raise ServiceError(
                f"frame exceeds max_frame_bytes="
                f"{self._config.max_frame_bytes}"
            ) from None
        if not line.strip():
            return None
        self._wire["frames_in"] += 1
        self._wire["bytes_in"] += len(line)
        return decode_frame(line)

    # ------------------------------------------------------------------
    # Framed stream protocol
    # ------------------------------------------------------------------

    async def _handle_stream(self, reader, writer, first: bytes) -> None:
        # The hello must arrive promptly — half-open connections are
        # dropped, not accumulated.
        try:
            hello = await asyncio.wait_for(
                self._read_frame(reader, first), self._config.hello_timeout
            )
        except asyncio.TimeoutError:
            self._wire["rejected"] += 1
            await self._fatal(writer, "hello timeout")
            return
        except ServiceError as exc:
            self._wire["rejected"] += 1
            await self._fatal(writer, str(exc))
            return
        if hello is None or hello.get("op") != "hello":
            self._wire["rejected"] += 1
            await self._fatal(writer, "expected hello frame")
            return
        subject = hello.get("subject")
        if not isinstance(subject, str) or not subject:
            self._wire["rejected"] += 1
            await self._fatal(writer, "hello needs a non-empty subject")
            return
        try:
            spec = self._authenticate(hello.get("tenant"), hello.get("token"))
        except ServiceError as exc:
            self._wire["rejected"] += 1
            await self._fatal(writer, str(exc))
            return
        tenant = self._tenant(spec)
        try:
            async_session = tenant.hub.open_async(subject, attach=True)
        except SignalError as exc:
            # Live-consumer conflict or closed hub: this connection is
            # refused, its siblings are untouched.
            self._wire["rejected"] += 1
            await self._fatal(writer, str(exc))
            return
        tenant.connections += 1
        conn = _StreamConn(spec.name, subject, writer)
        self._conns.add(conn)
        pump = asyncio.ensure_future(
            self._pump_emissions(async_session, subject, writer)
        )
        conn.pump = pump
        try:
            await self._send(writer, {
                "op": "ready", "tenant": spec.name, "subject": subject,
            })
            await self._stream_loop(
                reader, writer, tenant, subject, async_session, pump
            )
        except (ConnectionError, OSError):
            pass
        finally:
            self._conns.discard(conn)
            # Detach without finalizing: the session (samples, analysed
            # windows) survives on the hub for reconnect or drain.
            await async_session.aclose()
            if not pump.done():
                # Abnormal exit (EOF, protocol error): the client is
                # gone, so undelivered window frames are droppable —
                # and the pump may be wedged in drain() on a peer that
                # stopped reading, so cancel rather than wait.
                pump.cancel()
            try:
                await pump
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass
            tenant.connections -= 1
            if tenant.connections <= 0 and not self._shutting_down:
                # Last connection gone: release the fleet pool (it
                # re-forks on demand); hub and results stay for REST
                # queries and reconnecting feeders.
                tenant.engine.close()

    async def _stream_loop(
        self, reader, writer, tenant, subject, async_session, pump
    ) -> None:
        while True:
            try:
                frame = await self._read_frame(reader)
            except ServiceError as exc:
                await self._fatal(writer, str(exc))
                return
            if frame is None:  # EOF — client went away without close
                return
            op = frame.get("op")
            if op == "feed":
                try:
                    await async_session.feed(
                        frame.get("t"), frame.get("rr"),
                        frame.get("corrected"),
                    )
                except (SignalError, TypeError, ValueError) as exc:
                    # Bad samples poison this feed only; the stream and
                    # its siblings continue.
                    await self._send(writer, {
                        "op": "error", "error": str(exc), "fatal": False,
                    })
            elif op == "finalize":
                try:
                    result = await async_session.finalize()
                except SignalError as exc:
                    await self._fatal(writer, str(exc))
                    return
                # finalize ended the iteration; the pump flushes the
                # tail windows before the result frame goes out.
                await pump
                payload = result_to_dict(result)
                tenant.results[subject] = payload
                await self._send(writer, {
                    "op": "result", "subject": subject, **payload,
                })
                return
            elif op == "ping":
                # Ingestion barrier: frames are processed in order, so
                # the pong guarantees every earlier feed on this
                # connection has been ingested — what a client needs
                # before handing off to a server-side drain.
                await self._send(writer, {"op": "pong"})
            elif op == "close":
                return
            else:
                await self._send(writer, {
                    "op": "error",
                    "error": f"unknown op {op!r}",
                    "fatal": False,
                })

    async def _pump_emissions(self, async_session, subject, writer) -> None:
        """Writer task: deliver the subject's windows down the socket."""
        try:
            async for emission in async_session:
                await self._send(
                    writer, emission_to_frame(subject, emission)
                )
        except (ConnectionError, OSError):
            # Dead socket: release any feeder blocked on our queue.
            await async_session.aclose()

    async def _fatal(self, writer, message: str) -> None:
        try:
            await self._send(writer, {
                "op": "error", "error": message, "fatal": True,
            })
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    # REST protocol
    # ------------------------------------------------------------------

    async def _handle_http(self, reader, writer, first: bytes) -> None:
        self._wire["http_requests"] += 1
        try:
            request_line = first + await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                await self._respond(writer, 400, {"error": "bad request"})
                return
            method, path = parts[0].upper(), parts[1]
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            body = b""
            length = int(headers.get("content-length", 0) or 0)
            if length > self._config.max_frame_bytes:
                await self._respond(writer, 413, {
                    "error": "body exceeds max_frame_bytes",
                })
                return
            if length:
                body = await reader.readexactly(length)
        except (ValueError, asyncio.IncompleteReadError):
            await self._respond(writer, 400, {"error": "bad request"})
            return
        try:
            status, payload = await self._route(method, path, headers, body)
        except ServiceError as exc:
            status, payload = 401, {"error": str(exc)}
        except (SignalError, ConfigurationError, TypeError, ValueError) as exc:
            status, payload = 400, {"error": str(exc)}
        await self._respond(writer, status, payload)

    def _bearer(self, headers: dict, body_data: dict | None = None) -> str:
        auth = headers.get("authorization", "")
        if auth.lower().startswith("bearer "):
            return auth[7:].strip()
        if body_data is not None and isinstance(body_data.get("token"), str):
            return body_data["token"]
        raise ServiceError("authentication failed")

    async def _route(self, method, path, headers, body):
        if method == "POST" and path == "/v1/analyze":
            return self._rest_analyze(headers, body)
        if method == "GET" and path == "/v1/stats":
            return self._rest_stats(headers)
        if method == "GET" and path.startswith("/v1/subjects/"):
            rest = path[len("/v1/subjects/"):]
            subject, _, leaf = rest.partition("/")
            if leaf == "windows" and subject:
                return self._rest_windows(headers, subject)
        return 404, {"error": f"no route for {method} {path}"}

    def _rest_analyze(self, headers, body):
        try:
            data = json.loads(body or b"{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise SignalError(f"malformed body: {exc}") from None
        if not isinstance(data, dict):
            raise SignalError("body must be a JSON object")
        spec = self._authenticate_token(self._bearer(headers, data))
        tenant = self._tenant(spec)
        t, rr = data.get("t"), data.get("rr")
        if t is None or rr is None:
            raise SignalError("body needs 't' and 'rr' arrays")
        corrected = data.get("corrected")
        series = RRSeries(
            times=np.asarray(t, dtype=float),
            intervals=np.asarray(rr, dtype=float),
            corrected=(
                None if corrected is None
                else np.asarray(corrected, dtype=float)
            ),
        )
        # Synchronous on the event loop on purpose: analyze installs
        # process-wide provider/chunk pins, which would race a
        # concurrent hub flush if pushed to a thread.
        result = tenant.engine.analyze(
            series, count_ops=bool(data.get("count_ops", False))
        )
        return 200, result_to_dict(result)

    def _rest_windows(self, headers, subject):
        spec = self._authenticate_token(self._bearer(headers))
        tenant = self._tenant(spec)
        if subject not in tenant.hub._sessions:
            if subject in tenant.results:
                # Hub already drained (post-shutdown REST): serve the
                # retained result's windows.
                payload = tenant.results[subject]
                metrics = payload.get("window_metrics") or []
                return 200, {
                    "subject": subject,
                    "finalized": True,
                    "windows": [
                        {
                            "index": i,
                            "center": payload["window_times"][i],
                            "metrics": (
                                metrics[i] if i < len(metrics) else None
                            ),
                            "power": payload["spectrogram"][i],
                        }
                        for i in range(payload["n_windows"])
                    ],
                }
            return 404, {"error": f"unknown subject {subject!r}"}
        session = tenant.hub.session(subject)
        return 200, {
            "subject": subject,
            "finalized": session.finalized,
            "windows": [
                {
                    "index": emission.index,
                    "start": emission.start,
                    "center": emission.center,
                    "quality": emission.quality,
                    "metrics": (
                        None if emission.metrics is None
                        else emission.metrics.to_dict()
                    ),
                    "power": emission.spectrum.power.tolist(),
                }
                for emission in session.emissions
            ],
        }

    def _rest_stats(self, headers):
        spec = self._authenticate_token(self._bearer(headers))
        tenant = self._tenant(spec)
        payload = {
            "service": self.stats(),
            "engine": tenant.engine.execution_stats(),
        }
        if tenant.hub.controller is not None:
            payload["controller"] = tenant.hub.controller_stats()
        else:
            payload["controller"] = None
        return 200, payload

    async def _respond(self, writer, status: int, payload: dict) -> None:
        reasons = {
            200: "OK", 400: "Bad Request", 401: "Unauthorized",
            404: "Not Found", 413: "Payload Too Large",
        }
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + body)
            self._wire["bytes_out"] += len(head) + len(body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass


async def _cancel_other_tasks() -> None:
    """Cancel and reap every task on this loop except the current one."""
    tasks = [
        task
        for task in asyncio.all_tasks()
        if task is not asyncio.current_task()
    ]
    for task in tasks:
        task.cancel()
    await asyncio.gather(*tasks, return_exceptions=True)


class GatewayThread:
    """A :class:`GatewayServer` on a background thread's event loop.

    Context manager for synchronous callers (tests, benchmarks, the
    smoke check): enter starts the server and yields once the port is
    bound; exit performs the full graceful drain.  ``address`` is the
    bound ``host:port`` for clients to dial.
    """

    def __init__(self, config: ServiceConfig | None = None):
        self._config = config or ServiceConfig(listen="127.0.0.1:0")
        self.server: GatewayServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None

    @property
    def address(self) -> str:
        if self.server is None:
            raise ServiceError("gateway thread is not running")
        return self.server.address

    def __enter__(self) -> "GatewayThread":
        started = threading.Event()
        self._loop = asyncio.new_event_loop()
        self.server = GatewayServer(self._config)

        def run():
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self.server.start())
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                self._error = exc
                started.set()
                return
            started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=run, name="repro-gateway", daemon=True
        )
        self._thread.start()
        started.wait(timeout=30)
        if self._error is not None:
            raise self._error
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is None or self._error is not None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self._loop
        )
        try:
            future.result(timeout=120)
            # Connection handlers whose peers have not hung up yet are
            # cancelled on the loop (their finally blocks close the
            # sockets) so stopping the loop never destroys live tasks.
            asyncio.run_coroutine_threadsafe(
                _cancel_other_tasks(), self._loop
            ).result(timeout=30)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)
            self._loop.close()

    def shutdown(self) -> None:
        """Trigger the graceful drain from the calling thread (blocking)."""
        if self._loop is None:
            raise ServiceError("gateway thread is not running")
        asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self._loop
        ).result(timeout=120)
