"""Network service layer: framed ingestion gateway + REST over StreamHub.

This package turns the in-process streaming engine into a deployable
network service, without changing a single computed number — every
request routes through the same :func:`repro.lomb.welch.analyze_spans`
choke point as the library entry points, and the newline-JSON wire
format round-trips IEEE-754 doubles exactly, so results served over
the network are **bit-identical** to :meth:`repro.engine.Engine.analyze`.

The pieces:

* :class:`~repro.service.config.ServiceConfig` /
  :class:`~repro.service.config.TenantSpec` — immutable, fully
  JSON-round-trippable deployment description: listen address, static
  tenant tokens, one isolated :class:`~repro.engine.config.EngineConfig`
  per tenant.
* :class:`~repro.service.server.GatewayServer` — the asyncio gateway:
  one port, two protocols (framed streams and REST), per-tenant hubs
  with lazy creation and reference counting, end-to-end backpressure,
  graceful drain on shutdown.  :class:`~repro.service.server.GatewayThread`
  runs it on a background thread for synchronous callers.
* :class:`~repro.service.client.ServiceClient` — synchronous framed
  client (plus :func:`~repro.service.client.rest_analyze` /
  :func:`~repro.service.client.rest_stats` /
  :func:`~repro.service.client.rest_windows` REST helpers).
* :mod:`repro.service.wire` — the frame codec and result
  serialisation both sides share.

Quick start::

    config = ServiceConfig(listen="127.0.0.1:0")      # ephemeral port
    with GatewayThread(config) as gateway:
        client = ServiceClient(gateway.address)
        client.open("subject-1")
        client.feed(times, rr_values)
        result = client.finalize()

Or as a foreground process::

    python -m repro serve --listen 0.0.0.0:8737 --config service.json
"""

from .client import ServiceClient, rest_analyze, rest_stats, rest_windows
from .config import ServiceConfig, TenantSpec
from .server import GatewayServer, GatewayThread
from .wire import result_to_dict

__all__ = [
    "ServiceConfig",
    "TenantSpec",
    "GatewayServer",
    "GatewayThread",
    "ServiceClient",
    "rest_analyze",
    "rest_stats",
    "rest_windows",
    "result_to_dict",
]
