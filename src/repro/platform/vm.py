"""A small executable RISC VM with cycle accounting.

The analytic node model in :mod:`repro.platform.isa` converts counted
arithmetic operations into cycles through amortised expansion factors.
To keep that model honest, this module provides an *executable* machine:
a 16-register load/store core with the same instruction classes and
cycle costs, plus a two-pass assembler.  The micro-kernels in
:mod:`repro.platform.programs` are run on it and their measured
cycles-per-operation are compared against the analytic expansion in the
test suite.

The register file is float-valued (think of a DSP core with a unified
register file); addresses are integers stored in registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import PlatformError
from .isa import DEFAULT_ISA, InstructionClass, InstructionSet

__all__ = ["Instruction", "Assembler", "RiscVM", "ExecutionStats"]

_N_REGISTERS = 16

#: opcode -> (instruction class, operand pattern)
_OPCODES: dict[str, InstructionClass] = {
    "ldi": InstructionClass.ALU,
    "mov": InstructionClass.ALU,
    "add": InstructionClass.ALU,
    "sub": InstructionClass.ALU,
    "addi": InstructionClass.ALU,
    "abs": InstructionClass.ALU,
    "mul": InstructionClass.MUL,
    "ld": InstructionClass.LOAD,
    "st": InstructionClass.STORE,
    "cmp": InstructionClass.COMPARE,
    "blt": InstructionClass.BRANCH,
    "bge": InstructionClass.BRANCH,
    "beq": InstructionClass.BRANCH,
    "bne": InstructionClass.BRANCH,
    "jmp": InstructionClass.BRANCH,
    "halt": InstructionClass.NOP,
}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    opcode: str
    operands: tuple
    source_line: int


@dataclass
class ExecutionStats:
    """Cycle and instruction-class tallies of one program run."""

    cycles: float = 0.0
    instructions: int = 0
    class_counts: dict[InstructionClass, int] = field(default_factory=dict)

    def charge(self, cls: InstructionClass, cost: float) -> None:
        self.cycles += cost
        self.instructions += 1
        self.class_counts[cls] = self.class_counts.get(cls, 0) + 1


class Assembler:
    """Two-pass assembler for the VM's textual assembly."""

    def assemble(self, source: str) -> list[Instruction]:
        labels: dict[str, int] = {}
        raw: list[tuple[int, str]] = []
        for lineno, line in enumerate(source.splitlines(), start=1):
            stripped = line.split(";")[0].split("#")[0].strip()
            if not stripped:
                continue
            while ":" in stripped:
                label, _, rest = stripped.partition(":")
                label = label.strip()
                if not label.isidentifier():
                    raise PlatformError(
                        f"line {lineno}: invalid label {label!r}"
                    )
                if label in labels:
                    raise PlatformError(f"line {lineno}: duplicate label {label!r}")
                labels[label] = len(raw)
                stripped = rest.strip()
            if stripped:
                raw.append((lineno, stripped))
        program: list[Instruction] = []
        for index, (lineno, text) in enumerate(raw):
            program.append(self._parse(text, lineno, labels))
        del index
        return program

    # ------------------------------------------------------------------

    def _reg(self, token: str, lineno: int) -> int:
        token = token.strip()
        if not token.startswith("r"):
            raise PlatformError(f"line {lineno}: expected register, got {token!r}")
        try:
            num = int(token[1:])
        except ValueError as exc:
            raise PlatformError(
                f"line {lineno}: bad register {token!r}"
            ) from exc
        if not 0 <= num < _N_REGISTERS:
            raise PlatformError(f"line {lineno}: register {token!r} out of range")
        return num

    def _mem_operand(self, token: str, lineno: int) -> tuple[int, int]:
        token = token.strip()
        if not (token.startswith("[") and token.endswith("]")):
            raise PlatformError(
                f"line {lineno}: expected memory operand, got {token!r}"
            )
        inner = token[1:-1]
        if "+" in inner:
            base, _, offset = inner.partition("+")
            return self._reg(base, lineno), int(offset)
        return self._reg(inner, lineno), 0

    def _parse(
        self, text: str, lineno: int, labels: dict[str, int]
    ) -> Instruction:
        parts = text.split(None, 1)
        opcode = parts[0].lower()
        if opcode not in _OPCODES:
            raise PlatformError(f"line {lineno}: unknown opcode {opcode!r}")
        args = [a.strip() for a in parts[1].split(",")] if len(parts) > 1 else []

        def need(n):
            if len(args) != n:
                raise PlatformError(
                    f"line {lineno}: {opcode} expects {n} operands, got {len(args)}"
                )

        if opcode == "halt":
            need(0)
            return Instruction(opcode, (), lineno)
        if opcode == "ldi":
            need(2)
            return Instruction(
                opcode, (self._reg(args[0], lineno), float(args[1])), lineno
            )
        if opcode in ("mov", "abs"):
            need(2)
            return Instruction(
                opcode,
                (self._reg(args[0], lineno), self._reg(args[1], lineno)),
                lineno,
            )
        if opcode in ("add", "sub", "mul"):
            need(3)
            return Instruction(
                opcode,
                tuple(self._reg(a, lineno) for a in args),
                lineno,
            )
        if opcode == "addi":
            need(3)
            return Instruction(
                opcode,
                (
                    self._reg(args[0], lineno),
                    self._reg(args[1], lineno),
                    float(args[2]),
                ),
                lineno,
            )
        if opcode == "ld":
            need(2)
            return Instruction(
                opcode,
                (self._reg(args[0], lineno), *self._mem_operand(args[1], lineno)),
                lineno,
            )
        if opcode == "st":
            need(2)
            return Instruction(
                opcode,
                (self._reg(args[0], lineno), *self._mem_operand(args[1], lineno)),
                lineno,
            )
        if opcode == "cmp":
            need(2)
            return Instruction(
                opcode,
                (self._reg(args[0], lineno), self._reg(args[1], lineno)),
                lineno,
            )
        # Branches.
        need(1)
        target = args[0]
        if target not in labels:
            raise PlatformError(f"line {lineno}: unknown label {target!r}")
        return Instruction(opcode, (labels[target],), lineno)


class RiscVM:
    """Interpreter with per-class cycle accounting.

    Parameters
    ----------
    memory_words:
        Size of the flat data memory (float words).
    isa:
        Cycle-cost table; shared with the analytic model by default.
    max_instructions:
        Safety limit against runaway programs.
    """

    def __init__(
        self,
        memory_words: int = 4096,
        isa: InstructionSet | None = None,
        max_instructions: int = 5_000_000,
    ):
        if memory_words < 1:
            raise PlatformError("memory_words must be >= 1")
        self.memory = np.zeros(memory_words, dtype=np.float64)
        self.registers = np.zeros(_N_REGISTERS, dtype=np.float64)
        self.isa = isa or DEFAULT_ISA
        self.max_instructions = int(max_instructions)
        self._flag_lt = False
        self._flag_eq = False

    def load_memory(self, address: int, values) -> None:
        """Copy *values* into data memory starting at *address*."""
        arr = np.asarray(values, dtype=np.float64)
        if address < 0 or address + arr.size > self.memory.size:
            raise PlatformError("memory initialisation out of range")
        self.memory[address : address + arr.size] = arr

    def run(self, program: list[Instruction]) -> ExecutionStats:
        """Execute until ``halt``; returns cycle statistics."""
        if not program:
            raise PlatformError("empty program")
        stats = ExecutionStats()
        pc = 0
        regs = self.registers
        mem = self.memory
        while True:
            if pc < 0 or pc >= len(program):
                raise PlatformError(f"program counter {pc} out of range")
            if stats.instructions >= self.max_instructions:
                raise PlatformError("instruction limit exceeded (runaway loop?)")
            ins = program[pc]
            cls = _OPCODES[ins.opcode]
            stats.charge(cls, self.isa.cost(cls))
            op = ins.opcode
            a = ins.operands
            pc += 1
            if op == "halt":
                return stats
            elif op == "ldi":
                regs[a[0]] = a[1]
            elif op == "mov":
                regs[a[0]] = regs[a[1]]
            elif op == "abs":
                regs[a[0]] = abs(regs[a[1]])
            elif op == "add":
                regs[a[0]] = regs[a[1]] + regs[a[2]]
            elif op == "sub":
                regs[a[0]] = regs[a[1]] - regs[a[2]]
            elif op == "addi":
                regs[a[0]] = regs[a[1]] + a[2]
            elif op == "mul":
                regs[a[0]] = regs[a[1]] * regs[a[2]]
            elif op == "ld":
                addr = int(regs[a[1]]) + a[2]
                if not 0 <= addr < mem.size:
                    raise PlatformError(
                        f"load address {addr} out of range (line {ins.source_line})"
                    )
                regs[a[0]] = mem[addr]
            elif op == "st":
                addr = int(regs[a[1]]) + a[2]
                if not 0 <= addr < mem.size:
                    raise PlatformError(
                        f"store address {addr} out of range (line {ins.source_line})"
                    )
                mem[addr] = regs[a[0]]
            elif op == "cmp":
                self._flag_lt = bool(regs[a[0]] < regs[a[1]])
                self._flag_eq = bool(regs[a[0]] == regs[a[1]])
            elif op == "blt":
                if self._flag_lt:
                    pc = a[0]
            elif op == "bge":
                if not self._flag_lt:
                    pc = a[0]
            elif op == "beq":
                if self._flag_eq:
                    pc = a[0]
            elif op == "bne":
                if not self._flag_eq:
                    pc = a[0]
            elif op == "jmp":
                pc = a[0]
            else:  # pragma: no cover - opcode table and dispatch in sync
                raise PlatformError(f"unhandled opcode {op!r}")
