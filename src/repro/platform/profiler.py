"""Per-block profiling of the PSA pipeline (paper Fig. 1b).

Turns the per-block operation counts of a Fast-Lomb window into the
cycle- and energy-share breakdown the paper profiles for the
conventional system — the observation ("the FFT block consumes most of
the overall system power") that motivates attacking the FFT.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PlatformError
from ..ffts.opcount import OpCounts
from .node import SensorNodeModel

__all__ = ["BlockProfile", "profile_blocks"]


@dataclass(frozen=True)
class BlockProfile:
    """Cycle/energy shares of one pipeline block."""

    name: str
    counts: OpCounts
    cycles: float
    cycle_share: float
    energy: float
    energy_share: float


def profile_blocks(
    breakdown: dict[str, OpCounts],
    node: SensorNodeModel | None = None,
) -> tuple[BlockProfile, ...]:
    """Profile a per-block operation-count breakdown on a node model.

    Parameters
    ----------
    breakdown:
        Mapping of block name to operation counts, e.g. the output of
        :meth:`repro.lomb.fast.FastLomb.count_breakdown`.
    node:
        Platform model; a default node is built when omitted.

    Returns
    -------
    Profiles sorted by descending energy share.
    """
    if not breakdown:
        raise PlatformError("empty block breakdown")
    node = node or SensorNodeModel()
    point = node.dvfs.nominal
    reports = {
        name: node.execute(counts, point) for name, counts in breakdown.items()
    }
    total_cycles = sum(r.cycles for r in reports.values())
    total_energy = sum(r.energy for r in reports.values())
    if total_cycles <= 0 or total_energy <= 0:
        raise PlatformError("breakdown contains no work")
    profiles = [
        BlockProfile(
            name=name,
            counts=breakdown[name],
            cycles=report.cycles,
            cycle_share=report.cycles / total_cycles,
            energy=report.energy,
            energy_share=report.energy / total_energy,
        )
        for name, report in reports.items()
    ]
    return tuple(sorted(profiles, key=lambda p: p.energy_share, reverse=True))
