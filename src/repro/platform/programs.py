"""Assembly micro-kernels for validating the analytic cycle model.

Each program mirrors an inner loop of the PSA pipeline (dot product,
complex multiply-accumulate chain, threshold scan) in the unrolled style
an optimising compiler would emit.  The test suite runs them on the VM
and checks both the numeric result and that the measured cycles per
counted operation agree with the analytic
:class:`~repro.platform.isa.KernelExpansion` within tolerance.

Memory layout conventions are documented per program; all loops are
unrolled by four, the unrolling the expansion factors assume.
"""

from __future__ import annotations

from ..ffts.opcount import OpCounts

__all__ = [
    "dot_product_program",
    "complex_mac_program",
    "threshold_scan_program",
]


def dot_product_program(n: int) -> tuple[str, OpCounts]:
    """Dot product of two length-*n* vectors (n divisible by 4).

    Memory: ``a`` at 0, ``b`` at n; result stored at ``2n``.
    Counted work: n mults + n adds.
    """
    if n % 4 != 0 or n <= 0:
        raise ValueError("n must be a positive multiple of 4")
    source = f"""
        ldi r0, 0        ; index into a
        ldi r1, {n}      ; index into b
        ldi r2, 0.0      ; accumulator
        ldi r3, {n}      ; loop bound on r0
    loop:
        ld r4, [r0 + 0]
        ld r5, [r1 + 0]
        mul r6, r4, r5
        add r2, r2, r6
        ld r4, [r0 + 1]
        ld r5, [r1 + 1]
        mul r6, r4, r5
        add r2, r2, r6
        ld r4, [r0 + 2]
        ld r5, [r1 + 2]
        mul r6, r4, r5
        add r2, r2, r6
        ld r4, [r0 + 3]
        ld r5, [r1 + 3]
        mul r6, r4, r5
        add r2, r2, r6
        addi r0, r0, 4
        addi r1, r1, 4
        cmp r0, r3
        blt loop
        ldi r7, {2 * n}
        st r2, [r7 + 0]
        halt
    """
    return source, OpCounts(mults=n, adds=n)


def complex_mac_program(n: int) -> tuple[str, OpCounts]:
    """Chain of *n* complex multiply-accumulates (twiddle-style kernel).

    Memory: interleaved complex data (re, im) at 0..2n, interleaved
    factors at 2n..4n; accumulated complex result stored at ``4n``.
    Counted work per element: 4 mults + 4 adds (complex mult 4m+2a plus
    the complex accumulate 2a) — the generic butterfly term cost.
    """
    if n % 4 != 0 or n <= 0:
        raise ValueError("n must be a positive multiple of 4")
    body = []
    for k in range(4):
        body.append(f"""
        ld r4, [r0 + {2 * k}]     ; x.re
        ld r5, [r0 + {2 * k + 1}] ; x.im
        ld r6, [r1 + {2 * k}]     ; w.re
        ld r7, [r1 + {2 * k + 1}] ; w.im
        mul r8, r4, r6
        mul r9, r5, r7
        sub r8, r8, r9            ; re part
        mul r9, r4, r7
        mul r10, r5, r6
        add r9, r9, r10           ; im part
        add r2, r2, r8            ; acc.re
        add r3, r3, r9            ; acc.im
        """)
    source = f"""
        ldi r0, 0        ; data pointer
        ldi r1, {2 * n}  ; factor pointer
        ldi r2, 0.0      ; acc.re
        ldi r3, 0.0      ; acc.im
        ldi r11, {2 * n} ; loop bound on data pointer
    loop:
        {''.join(body)}
        addi r0, r0, 8
        addi r1, r1, 8
        cmp r0, r11
        blt loop
        ldi r12, {4 * n}
        st r2, [r12 + 0]
        st r3, [r12 + 1]
        halt
    """
    return source, OpCounts(mults=4 * n, adds=4 * n)


def threshold_scan_program(n: int, threshold: float) -> tuple[str, OpCounts]:
    """Dynamic-pruning style scan: count |x[i]| >= threshold.

    Memory: data at 0..n; count stored at ``n``.
    Counted work per element: 1 compare (the significance check); the
    magnitude/add costs of the real check are modelled separately.
    """
    if n % 4 != 0 or n <= 0:
        raise ValueError("n must be a positive multiple of 4")
    body = []
    for k in range(4):
        body.append(f"""
        ld r4, [r0 + {k}]
        abs r4, r4
        cmp r4, r2
        blt skip{k}
        add r3, r3, r5
    skip{k}:
        """)
    source = f"""
        ldi r0, 0
        ldi r2, {threshold}
        ldi r3, 0.0      ; count
        ldi r5, 1.0
        ldi r6, {n}
    loop:
        {''.join(body)}
        addi r0, r0, 4
        cmp r0, r6
        blt loop
        ldi r7, {n}
        st r3, [r7 + 0]
        halt
    """
    return source, OpCounts(compares=n)
