"""Platform substrate: the sensor-node cycle/energy model and VFS.

Replaces the paper's MPARM-based node simulator (see DESIGN.md) with an
instruction-level model: ISA cycle costs, kernel expansion factors, a
90 nm low-leakage energy model, a discrete DVFS table driven by the
alpha-power law, a per-block profiler (Fig. 1b) and an executable RISC
VM that validates the analytic cycle model on micro-kernels.
"""

from .energy import EnergyModel
from .isa import (
    DEFAULT_EXPANSION,
    DEFAULT_ISA,
    InstructionClass,
    InstructionSet,
    KernelExpansion,
)
from .node import ComparisonReport, ExecutionReport, SensorNodeModel
from .profiler import BlockProfile, profile_blocks
from .programs import (
    complex_mac_program,
    dot_product_program,
    threshold_scan_program,
)
from .vfs import DvfsTable, OperatingPoint, alpha_power_frequency
from .vm import Assembler, ExecutionStats, Instruction, RiscVM

__all__ = [
    "Assembler",
    "BlockProfile",
    "ComparisonReport",
    "DEFAULT_EXPANSION",
    "DEFAULT_ISA",
    "DvfsTable",
    "EnergyModel",
    "ExecutionReport",
    "ExecutionStats",
    "Instruction",
    "InstructionClass",
    "InstructionSet",
    "KernelExpansion",
    "OperatingPoint",
    "RiscVM",
    "SensorNodeModel",
    "alpha_power_frequency",
    "complex_mac_program",
    "dot_product_program",
    "profile_blocks",
    "threshold_scan_program",
]
