"""Instruction-set cost model of the target sensor-node core.

The paper maps both PSA systems onto "a typical single-core sensor node"
simulator [13, 14] and reports cycle/energy improvements.  We replace
that closed simulator with an explicit instruction-level model: every
real arithmetic operation counted by the kernels expands into a small
bundle of RISC instructions (the operation itself plus amortised loads,
stores and loop overhead), and each instruction class has a cycle cost
typical of a single-issue embedded core with on-chip SRAM.

The expansion factors are validated against the executable RISC VM in
:mod:`repro.platform.vm` (see ``tests/test_platform_vm.py``): micro-
kernels assembled for the VM exhibit cycles-per-operation within a few
percent of this analytic model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import PlatformError
from ..ffts.opcount import OpCounts

__all__ = ["InstructionClass", "InstructionSet", "KernelExpansion", "DEFAULT_ISA",
           "DEFAULT_EXPANSION"]


class InstructionClass(enum.Enum):
    """Coarse instruction classes of the node core."""

    ALU = "alu"          # integer/fixed-point add, sub, shift, logic
    MUL = "mul"          # single-cycle-issue multiplier, 2-cycle latency
    LOAD = "load"        # SRAM load
    STORE = "store"      # SRAM store
    COMPARE = "compare"  # compare/test
    BRANCH = "branch"    # taken-average branch cost
    NOP = "nop"


@dataclass(frozen=True)
class InstructionSet:
    """Cycle cost per instruction class.

    Defaults model a single-issue RISC with one-cycle ALU, a
    single-cycle pipelined multiplier (the DSP-extended cores targeted
    by Dogan et al. [14] have MAC datapaths), two-cycle SRAM loads
    (64 KB on-chip SRAM, no cache misses), single-cycle stores (store
    buffer) and two-cycle taken branches.
    """

    cycles: dict[InstructionClass, float] = field(
        default_factory=lambda: {
            InstructionClass.ALU: 1.0,
            InstructionClass.MUL: 1.0,
            InstructionClass.LOAD: 2.0,
            InstructionClass.STORE: 1.0,
            InstructionClass.COMPARE: 1.0,
            InstructionClass.BRANCH: 2.0,
            InstructionClass.NOP: 1.0,
        }
    )

    def __post_init__(self):
        for cls in InstructionClass:
            if cls not in self.cycles:
                raise PlatformError(f"missing cycle cost for {cls}")
            if self.cycles[cls] <= 0:
                raise PlatformError(f"cycle cost for {cls} must be positive")

    def cost(self, instruction: InstructionClass) -> float:
        """Cycles for one instruction of the given class."""
        return self.cycles[instruction]


#: Instruction mix type: average instructions of each class per real op.
Mix = dict[InstructionClass, float]


@dataclass(frozen=True)
class KernelExpansion:
    """Average instruction bundle per counted arithmetic operation.

    A counted multiplication does not execute alone: operands stream from
    SRAM, results are written back, and the enclosing loop pays its
    increment/branch.  The factors below are amortised per-operation
    averages for unrolled DSP-style loops (validated against the VM):

    * each mult/add carries half a load and a quarter store (operand
      reuse inside a butterfly keeps most values in registers),
    * every operation amortises ~0.3 ALU + 0.15 branch of loop overhead,
    * a dynamic-pruning comparison is a compare plus a (mostly taken)
      branch; its operand is already in flight, so no extra memory.
    """

    per_mult: Mix = field(
        default_factory=lambda: {
            InstructionClass.MUL: 1.0,
            InstructionClass.LOAD: 0.5,
            InstructionClass.STORE: 0.25,
            InstructionClass.ALU: 0.3,
            InstructionClass.BRANCH: 0.15,
        }
    )
    per_add: Mix = field(
        default_factory=lambda: {
            InstructionClass.ALU: 1.3,
            InstructionClass.LOAD: 0.5,
            InstructionClass.STORE: 0.25,
            InstructionClass.BRANCH: 0.15,
        }
    )
    per_compare: Mix = field(
        default_factory=lambda: {
            InstructionClass.COMPARE: 1.0,
            InstructionClass.BRANCH: 1.0,
        }
    )

    def instruction_counts(self, counts: OpCounts) -> Mix:
        """Total instruction mix for a kernel's operation counts."""
        totals: Mix = {cls: 0.0 for cls in InstructionClass}
        for mix, n in (
            (self.per_mult, counts.mults),
            (self.per_add, counts.adds),
            (self.per_compare, counts.compares),
        ):
            for cls, factor in mix.items():
                totals[cls] += factor * n
        return totals

    def cycles(self, counts: OpCounts, isa: InstructionSet) -> float:
        """Total cycles for a kernel under the given ISA costs."""
        mix = self.instruction_counts(counts)
        return sum(isa.cost(cls) * n for cls, n in mix.items())


DEFAULT_ISA = InstructionSet()
DEFAULT_EXPANSION = KernelExpansion()
