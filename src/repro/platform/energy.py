"""Energy model of the 90 nm low-leakage sensor-node core.

The paper uses "available power consumption values of the processor in a
low leakage 90nm technology node [14]".  We model:

* **dynamic energy** per cycle ``E_dyn = C_eff * V^2`` — the canonical
  CV^2 switching energy, calibrated to ~22 pJ/cycle at the nominal
  1.0 V / 100 MHz point (20-25 uW/MHz is typical of low-power 90 nm
  embedded cores),
* **leakage power** ``P_leak(V) = P0 * (V / Vnom) * exp(k_dibl (V - Vnom))``
  — subthreshold current scales with voltage through DIBL; a low-leakage
  process keeps ``P0`` in the tens of microwatts.

Voltage-frequency feasibility lives in :mod:`repro.platform.vfs`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._validation import require_positive
from ..errors import PlatformError

__all__ = ["EnergyModel"]


@dataclass(frozen=True)
class EnergyModel:
    """Dynamic + leakage energy parameters.

    Attributes
    ----------
    nominal_voltage:
        Nominal supply in volts (1.0 V for the 90 nm node).
    energy_per_cycle_nominal:
        Dynamic energy per cycle at the nominal voltage, in joules.
    leakage_power_nominal:
        Leakage power at the nominal voltage, in watts.
    dibl_factor:
        Exponential sensitivity of leakage to supply voltage (1/V).
    """

    nominal_voltage: float = 1.0
    energy_per_cycle_nominal: float = 22e-12
    leakage_power_nominal: float = 40e-6
    dibl_factor: float = 1.5

    def __post_init__(self):
        require_positive(self.nominal_voltage, "nominal_voltage")
        require_positive(self.energy_per_cycle_nominal, "energy_per_cycle_nominal")
        if self.leakage_power_nominal < 0:
            raise PlatformError("leakage_power_nominal must be >= 0")
        if self.dibl_factor < 0:
            raise PlatformError("dibl_factor must be >= 0")

    @property
    def effective_capacitance(self) -> float:
        """Switched capacitance C_eff in farads (E = C_eff V^2)."""
        return self.energy_per_cycle_nominal / self.nominal_voltage**2

    def dynamic_energy_per_cycle(self, voltage: float) -> float:
        """Switching energy of one cycle at the given supply (joules)."""
        require_positive(voltage, "voltage")
        return self.effective_capacitance * voltage**2

    def leakage_power(self, voltage: float) -> float:
        """Static power at the given supply (watts)."""
        require_positive(voltage, "voltage")
        scale = voltage / self.nominal_voltage
        return (
            self.leakage_power_nominal
            * scale
            * math.exp(self.dibl_factor * (voltage - self.nominal_voltage))
        )

    def energy(self, cycles: float, voltage: float, active_time: float) -> float:
        """Total energy of a kernel run (joules).

        ``cycles`` switching events at the given supply plus leakage
        integrated over the *active* time (the node power-gates between
        processing windows, so sleep leakage is excluded by convention).
        """
        if cycles < 0 or active_time < 0:
            raise PlatformError("cycles and active_time must be >= 0")
        return (
            cycles * self.dynamic_energy_per_cycle(voltage)
            + self.leakage_power(voltage) * active_time
        )
