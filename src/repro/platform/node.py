"""The sensor-node model: op counts -> instructions -> cycles -> energy.

Brings the ISA cost model, the 90 nm energy model and the DVFS table
together into the evaluation interface the experiments use:

* :meth:`SensorNodeModel.cycles` — cycle count of a kernel,
* :meth:`SensorNodeModel.execute` — energy/time at a fixed point,
* :meth:`SensorNodeModel.evaluate_against_baseline` — the paper's
  Fig. 9 procedure: run the approximate kernel in the conventional
  kernel's deadline, optionally applying VFS, and report savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .._validation import require_positive
from ..ffts.opcount import OpCounts
from .energy import EnergyModel
from .isa import DEFAULT_EXPANSION, DEFAULT_ISA, InstructionSet, KernelExpansion
from .vfs import DvfsTable, OperatingPoint

__all__ = ["ExecutionReport", "ComparisonReport", "SensorNodeModel"]


@dataclass(frozen=True)
class ExecutionReport:
    """Cycles/time/energy of one kernel execution."""

    cycles: float
    operating_point: OperatingPoint
    time: float
    energy: float


@dataclass(frozen=True)
class ComparisonReport:
    """Approximate-vs-baseline execution comparison (one Fig. 9 bar).

    Attributes
    ----------
    baseline, approximate:
        The two execution reports; the baseline always runs at nominal.
    cycle_reduction:
        ``1 - cycles_approx / cycles_baseline`` (the paper's
        "performance improvement").
    energy_savings:
        ``1 - energy_approx / energy_baseline``.
    vfs_applied:
        Whether the approximate kernel was allowed to scale V/f.
    """

    baseline: ExecutionReport
    approximate: ExecutionReport
    vfs_applied: bool

    @property
    def cycle_reduction(self) -> float:
        return 1.0 - self.approximate.cycles / self.baseline.cycles

    @property
    def energy_savings(self) -> float:
        return 1.0 - self.approximate.energy / self.baseline.energy


@dataclass(frozen=True)
class SensorNodeModel:
    """A configured sensor node (ISA + energy + DVFS)."""

    isa: InstructionSet = field(default_factory=lambda: DEFAULT_ISA)
    expansion: KernelExpansion = field(default_factory=lambda: DEFAULT_EXPANSION)
    energy_model: EnergyModel = field(default_factory=EnergyModel)
    dvfs: DvfsTable = field(default_factory=DvfsTable)

    def cycles(self, counts: OpCounts) -> float:
        """Cycle count of a kernel from its operation counts."""
        return self.expansion.cycles(counts, self.isa)

    def execute(
        self, counts: OpCounts, operating_point: OperatingPoint | None = None
    ) -> ExecutionReport:
        """Energy/time of one kernel run at a fixed operating point."""
        point = operating_point or self.dvfs.nominal
        cycles = self.cycles(counts)
        time = cycles / point.frequency
        energy = self.energy_model.energy(cycles, point.voltage, time)
        return ExecutionReport(
            cycles=cycles, operating_point=point, time=time, energy=energy
        )

    def evaluate_against_baseline(
        self,
        approximate_counts: OpCounts,
        baseline_counts: OpCounts,
        apply_vfs: bool = True,
    ) -> ComparisonReport:
        """The paper's energy-saving procedure (Section VI.B).

        The baseline kernel runs at the nominal point and defines the
        real-time deadline.  The approximate kernel either runs at the
        same point (static pruning only — savings proportional to the
        cycle reduction) or, with *apply_vfs*, at the lowest-energy
        operating point that still meets the baseline deadline
        (quadratic additional savings).
        """
        baseline = self.execute(baseline_counts)
        approx_cycles = self.cycles(approximate_counts)
        if approx_cycles > baseline.cycles:
            # Slower than the baseline: still legal (dynamic pruning
            # overhead could in principle exceed its gains) but VFS can
            # never help, so pin to nominal.
            apply_vfs_effective = False
        else:
            apply_vfs_effective = apply_vfs
        if apply_vfs_effective:
            point = self.dvfs.energy_minimising_point(
                approx_cycles, self.energy_model, deadline=baseline.time
            )
        else:
            point = self.dvfs.nominal
        approximate = self.execute(approximate_counts, point)
        return ComparisonReport(
            baseline=baseline,
            approximate=approximate,
            vfs_applied=apply_vfs_effective,
        )

    def sustainable_window_rate(self, counts: OpCounts) -> float:
        """Analysis windows per second the node can sustain at nominal."""
        cycles = self.cycles(counts)
        require_positive(cycles, "cycles")
        return self.dvfs.nominal.frequency / cycles
