"""Voltage-frequency scaling (paper Section VI.B).

Static pruning shortens execution, so "we can relax the frequency of
operation allowing us to also reduce the supply voltage Vdd, which can
lead to quadratic energy savings".  The achievable frequency at a given
supply follows the alpha-power law

    f_max(V) = f_nom * (V_nom / V) * ((V - V_th) / (V_nom - V_th))^alpha

and the node exposes a discrete table of operating points derived from
it.  Given the cycle-count ratio of a pruned kernel, the solver picks
the lowest-energy operating point that still meets the conventional
system's deadline — the paper's "maintaining the same processing time"
rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import require_in_range, require_positive
from ..errors import PlatformError

__all__ = ["OperatingPoint", "DvfsTable", "alpha_power_frequency"]


def alpha_power_frequency(
    voltage: float,
    nominal_voltage: float = 1.0,
    threshold_voltage: float = 0.25,
    alpha: float = 1.35,
) -> float:
    """Fraction of nominal frequency attainable at *voltage*.

    Alpha-power MOSFET delay model; ``alpha`` between 1.2 and 1.5 fits
    short-channel 90 nm devices.  Returns 0 at or below threshold.
    """
    require_positive(voltage, "voltage")
    require_positive(nominal_voltage, "nominal_voltage")
    if voltage <= threshold_voltage:
        return 0.0
    num = (voltage - threshold_voltage) ** alpha / voltage
    den = (nominal_voltage - threshold_voltage) ** alpha / nominal_voltage
    return num / den


@dataclass(frozen=True)
class OperatingPoint:
    """One DVFS setting: supply voltage (V) and clock frequency (Hz)."""

    voltage: float
    frequency: float

    def __post_init__(self):
        require_positive(self.voltage, "voltage")
        require_positive(self.frequency, "frequency")


def _default_points() -> tuple[OperatingPoint, ...]:
    nominal_frequency = 100e6
    voltages = (1.0, 0.9, 0.8, 0.7, 0.6, 0.55, 0.5)
    points = []
    for v in voltages:
        fraction = alpha_power_frequency(v)
        points.append(OperatingPoint(voltage=v, frequency=nominal_frequency * fraction))
    return tuple(points)


@dataclass(frozen=True)
class DvfsTable:
    """Discrete operating points of the node, highest voltage first."""

    points: tuple[OperatingPoint, ...] = field(default_factory=_default_points)

    def __post_init__(self):
        if not self.points:
            raise PlatformError("DVFS table is empty")
        voltages = [p.voltage for p in self.points]
        if sorted(voltages, reverse=True) != voltages:
            raise PlatformError("DVFS points must be ordered by descending voltage")
        freqs = [p.frequency for p in self.points]
        if sorted(freqs, reverse=True) != freqs:
            raise PlatformError("frequency must decrease with voltage")

    @property
    def nominal(self) -> OperatingPoint:
        """The highest (nominal) operating point."""
        return self.points[0]

    def feasible_points(self, min_frequency: float) -> tuple[OperatingPoint, ...]:
        """All points meeting the frequency requirement."""
        require_positive(min_frequency, "min_frequency")
        return tuple(p for p in self.points if p.frequency >= min_frequency)

    def scale_for_cycles(self, cycle_fraction: float) -> OperatingPoint:
        """Slowest feasible point for a kernel needing *cycle_fraction*
        of the baseline cycles within the baseline deadline.

        The deadline is ``C_baseline / f_nominal``; a kernel with
        ``C = cycle_fraction * C_baseline`` therefore needs
        ``f >= cycle_fraction * f_nominal``.
        """
        require_in_range(cycle_fraction, 0.0, 1.0, "cycle_fraction")
        needed = cycle_fraction * self.nominal.frequency
        feasible = [p for p in self.points if p.frequency >= needed]
        if not feasible:
            raise PlatformError(
                f"no operating point sustains {needed:.3g} Hz"
            )
        # Points are ordered fastest first; the last feasible one is the
        # lowest-voltage choice, which minimises CV^2 energy.
        return feasible[-1]

    def energy_minimising_point(
        self, cycles: float, energy_model, deadline: float
    ) -> OperatingPoint:
        """Point minimising total energy subject to the deadline.

        With non-negligible leakage the lowest feasible voltage is not
        always optimal (execution stretches, leakage integrates longer);
        this brute-forces the discrete table.
        """
        require_positive(cycles, "cycles")
        require_positive(deadline, "deadline")
        best: tuple[float, OperatingPoint] | None = None
        for point in self.points:
            time = cycles / point.frequency
            if time > deadline * (1 + 1e-12):
                continue
            energy = energy_model.energy(cycles, point.voltage, time)
            if best is None or energy < best[0]:
                best = (energy, point)
        if best is None:
            raise PlatformError(
                f"no operating point meets the {deadline:.3g} s deadline "
                f"for {cycles:.3g} cycles"
            )
        return best[1]
