"""repro — quality-scalable, energy-efficient HRV spectral analysis.

A full reproduction of Karakonstantis et al., *A Quality-Scalable and
Energy-Efficient Approach for Spectral Analysis of Heart Rate
Variability* (DATE 2014): the Welch-Lomb PSA pipeline, the DWT-based FFT
with significance-driven pruning, design-time/run-time thresholding, a
sensor-node energy model with voltage-frequency scaling, and the
synthetic-cohort evaluation harness.

Quick start::

    from repro import (
        ConventionalPSA, QualityScalablePSA, PruningSpec, make_cohort,
    )

    patient = make_cohort().get("rsa-00")
    rr = patient.rr_series(duration=600.0)
    exact = ConventionalPSA().analyze(rr)
    pruned = QualityScalablePSA(pruning=PruningSpec.paper_mode(3)).analyze(rr)
    print(exact.lf_hf, pruned.lf_hf)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
the paper-vs-measured record of every table and figure.
"""

from .core import (
    CalibrationResult,
    ConventionalPSA,
    ModeProfile,
    PSAConfig,
    PSAResult,
    QualityController,
    QualityScalablePSA,
    calibrate,
)
from .ecg import Condition, PatientRecord, SyntheticCohort, TachogramSpec, make_cohort
from .errors import (
    CalibrationError,
    ConfigurationError,
    FixedPointError,
    PlatformError,
    ReproError,
    SignalError,
    TransformError,
)
from .ffts import OpCounts, PruningSpec, SplitRadixFFT, WaveletFFT
from .hrv import RRSeries, SinusArrhythmiaDetector, band_powers, lf_hf_ratio
from .lomb import FastLomb, WelchLomb
from .platform import SensorNodeModel

__version__ = "1.0.0"

__all__ = [
    "CalibrationError",
    "CalibrationResult",
    "Condition",
    "ConfigurationError",
    "ConventionalPSA",
    "FastLomb",
    "FixedPointError",
    "ModeProfile",
    "OpCounts",
    "PSAConfig",
    "PSAResult",
    "PatientRecord",
    "PlatformError",
    "PruningSpec",
    "QualityController",
    "QualityScalablePSA",
    "RRSeries",
    "ReproError",
    "SensorNodeModel",
    "SignalError",
    "SinusArrhythmiaDetector",
    "SplitRadixFFT",
    "SyntheticCohort",
    "TachogramSpec",
    "TransformError",
    "WaveletFFT",
    "WelchLomb",
    "calibrate",
    "band_powers",
    "lf_hf_ratio",
    "make_cohort",
    "__version__",
]
