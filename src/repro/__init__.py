"""repro — quality-scalable, energy-efficient HRV spectral analysis.

A full reproduction of Karakonstantis et al., *A Quality-Scalable and
Energy-Efficient Approach for Spectral Analysis of Heart Rate
Variability* (DATE 2014): the Welch-Lomb PSA pipeline, the DWT-based FFT
with significance-driven pruning, design-time/run-time thresholding, a
sensor-node energy model with voltage-frequency scaling, and the
synthetic-cohort evaluation harness.

Quick start — one declarative config, one engine facade::

    from repro import Engine, EngineConfig, make_cohort

    patient = make_cohort().get("rsa-00")
    rr = patient.rr_series(duration=600.0)
    exact = Engine(EngineConfig.for_mode("exact")).analyze(rr)
    pruned = Engine(EngineConfig.for_mode("set3")).analyze(rr)
    print(exact.lf_hf, pruned.lf_hf)

The same engine serves cohorts (``analyze_cohort`` over the sharded
fleet pool), live data (``open_stream()`` emits each Welch window's
spectrum as it completes) and streaming *cohorts* — many concurrent
monitors multiplexed into shared analysis batches::

    with Engine(EngineConfig.for_mode("set3")) as engine:
        hub = engine.open_hub()
        for events in uplink_rounds:          # [(subject, t, rr), ...]
            for sid, emissions in hub.feed_round(events).items():
                update_monitor(sid, emissions)
        results = hub.finalize_all()          # == per-subject analyze()

(`hub.open_async`/`hub.serve` add an asyncio push transport with
backpressure; ``python -m repro stream`` replays recordings through
it.)  The same hubs deploy as a network service — ``python -m repro
serve`` runs the framed ingestion gateway + REST result API of
:mod:`repro.service` (per-tenant hubs behind static tokens, graceful
drain on SIGTERM), ``python -m repro stream --connect HOST:PORT``
replays as its client, and :class:`ServiceClient` is the programmatic
one; results served over the wire stay bit-identical to in-process
``Engine.analyze``.  Configs round-trip through JSON
(``EngineConfig.to_json``/``from_json``, likewise ``ServiceConfig``)
so an analysis — or a whole deployment — is fully described by one
file; see ``python -m repro engine``.  ``ROADMAP.md`` documents the
performance architecture; the ``examples/`` scripts walk every
workload.
"""

from .core import (
    CalibrationResult,
    ConventionalPSA,
    ModeProfile,
    PSAConfig,
    PSAResult,
    QualityController,
    QualityScalablePSA,
    calibrate,
)
from .ecg import Condition, PatientRecord, SyntheticCohort, TachogramSpec, make_cohort
from .engine import (
    Engine,
    EngineConfig,
    SLOSpec,
    StreamHub,
    StreamingSession,
    WindowEmission,
)
from .errors import (
    CalibrationError,
    ConfigurationError,
    FixedPointError,
    PlatformError,
    ReproError,
    ServiceError,
    SignalError,
    TransformError,
    TransportError,
)
from .ffts import OpCounts, PruningSpec, SplitRadixFFT, WaveletFFT
from .hrv import RRSeries, SinusArrhythmiaDetector, band_powers, lf_hf_ratio
from .lomb import FastLomb, WelchLomb
from .platform import SensorNodeModel
from .service import (
    GatewayServer,
    GatewayThread,
    ServiceClient,
    ServiceConfig,
    TenantSpec,
)

__version__ = "1.0.0"

__all__ = [
    "CalibrationError",
    "CalibrationResult",
    "Condition",
    "ConfigurationError",
    "ConventionalPSA",
    "Engine",
    "EngineConfig",
    "FastLomb",
    "FixedPointError",
    "GatewayServer",
    "GatewayThread",
    "ModeProfile",
    "OpCounts",
    "PSAConfig",
    "PSAResult",
    "PatientRecord",
    "PlatformError",
    "PruningSpec",
    "QualityController",
    "QualityScalablePSA",
    "RRSeries",
    "ReproError",
    "SLOSpec",
    "SensorNodeModel",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SignalError",
    "SinusArrhythmiaDetector",
    "SplitRadixFFT",
    "StreamHub",
    "StreamingSession",
    "SyntheticCohort",
    "TachogramSpec",
    "TenantSpec",
    "TransformError",
    "TransportError",
    "WaveletFFT",
    "WelchLomb",
    "WindowEmission",
    "calibrate",
    "band_powers",
    "lf_hf_ratio",
    "make_cohort",
    "__version__",
]
