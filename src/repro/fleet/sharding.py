"""Work decomposition for the fleet engine.

The unit of distribution is a **window shard**: a contiguous range of
one recording's kept analysis windows.  Small recordings become a
single shard each; a recording with more windows than the per-shard
target (one huge ambulatory recording, say) is split into several
contiguous ranges so its windows spread across the pool.

Shards are deliberately oversubscribed relative to the worker count:
recordings differ in length, and a few-times-finer granularity lets the
pool balance load without making the per-task overhead (pickling a
handful of spans, one result message) noticeable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError

__all__ = ["WindowShard", "plan_shards"]

#: Below this many windows a shard's fixed dispatch cost dominates the
#: dense batch work, so shards are never made smaller (except when a
#: whole recording has fewer windows).
DEFAULT_MIN_WINDOWS_PER_SHARD = 32

#: Shards per worker the planner aims for (load-balancing slack).
DEFAULT_OVERSUBSCRIPTION = 4


@dataclass(frozen=True)
class WindowShard:
    """A contiguous range of one recording's kept windows.

    Attributes
    ----------
    recording:
        Index of the recording in the cohort.
    lo, hi:
        Kept-window index range ``[lo, hi)`` within that recording.
    """

    recording: int
    lo: int
    hi: int

    @property
    def n_windows(self) -> int:
        return self.hi - self.lo


def plan_shards(
    window_counts: Sequence[int],
    n_jobs: int,
    min_windows_per_shard: int = DEFAULT_MIN_WINDOWS_PER_SHARD,
    oversubscription: int = DEFAULT_OVERSUBSCRIPTION,
) -> list[WindowShard]:
    """Partition a cohort's windows into contiguous shards.

    Parameters
    ----------
    window_counts:
        Kept-window count of each recording, in cohort order.
    n_jobs:
        Worker processes the shards will be spread over.
    min_windows_per_shard:
        Floor on the per-shard target (whole recordings smaller than
        this still form their own shard).
    oversubscription:
        Target shards-per-worker ratio.

    Every recording's windows appear exactly once, in order; shards are
    returned grouped by recording and ordered by ``lo``.
    """
    if n_jobs < 1:
        raise ConfigurationError(f"n_jobs must be >= 1, got {n_jobs}")
    if min_windows_per_shard < 1:
        raise ConfigurationError(
            f"min_windows_per_shard must be >= 1, got {min_windows_per_shard}"
        )
    if oversubscription < 1:
        raise ConfigurationError(
            f"oversubscription must be >= 1, got {oversubscription}"
        )
    total = sum(window_counts)
    target = max(
        min_windows_per_shard,
        math.ceil(total / max(1, n_jobs * oversubscription)),
    )
    shards: list[WindowShard] = []
    for recording, count in enumerate(window_counts):
        if count < 0:
            raise ConfigurationError(
                f"window counts must be >= 0, got {count}"
            )
        if count == 0:
            continue
        # Floor division so every piece is at least ``target`` windows
        # (a whole recording smaller than the target stays one shard).
        pieces = max(1, count // target)
        # Near-equal contiguous ranges: piece k covers
        # [round(count*k/pieces), round(count*(k+1)/pieces)).
        bounds = [round(count * k / pieces) for k in range(pieces + 1)]
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            if hi > lo:
                shards.append(WindowShard(recording=recording, lo=lo, hi=hi))
    return shards
