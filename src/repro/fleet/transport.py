"""Socket transport for the fleet engine: frames and a typed codec.

:mod:`repro.fleet.shm` moves a cohort's arrays between processes on one
host; this module is its cross-machine sibling.  It defines the wire
protocol the worker daemon (:mod:`repro.fleet.remote`) speaks:

* **Framing** — every message travels as one length-prefixed frame
  (4-byte magic, 8-byte big-endian payload length, payload), so a
  reader always knows exactly how many bytes the next message owns and
  a half-written message can never be mistaken for a complete one.
* **Codec** — frame payloads are a small *typed* binary encoding of
  plain data (``None``/bool/int/float/str/bytes, tuples/lists/dicts,
  float64-exact :class:`numpy.ndarray` buffers and
  :class:`~repro.ffts.opcount.OpCounts`).  Nothing on the wire is ever
  unpickled: a daemon listening on a port must not grant arbitrary code
  execution to whoever can reach it, so the decoder only materialises
  the value types the protocol needs.
* **Exactness** — arrays are shipped as their raw C-order buffers with
  dtype and shape, so the bytes a worker analyses are *bit-identical*
  to the bytes the scheduler holds; floats ride as IEEE-754 doubles via
  ``struct``, never through decimal text.

:class:`FrameStream` wraps a connected socket with message send/receive
plus byte counters — the numbers the fleet benchmark reports as
serialization/framing overhead.
"""

from __future__ import annotations

import socket
import struct

import numpy as np

from ..errors import ConfigurationError, TransportError
from ..ffts.opcount import OpCounts

__all__ = [
    "FrameStream",
    "decode_value",
    "encode_value",
    "format_address",
    "parse_address",
]

#: Frame magic: protocol family + wire-format revision.  A daemon
#: refuses frames that do not start with it (port scanners, stale
#: clients), and bumping the revision makes old/new peers fail loudly
#: instead of mis-decoding each other.
FRAME_MAGIC = b"RPF1"

#: Hard cap on one frame's payload (bytes).  A length prefix beyond it
#: is treated as protocol corruption rather than an allocation request —
#: a single garbage frame must not make the receiver reserve petabytes.
MAX_FRAME_BYTES = 1 << 34

_HEADER = struct.Struct("!4sQ")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")
_U32 = struct.Struct("!I")

_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1


# ----------------------------------------------------------------------
# Typed value codec
# ----------------------------------------------------------------------


def _encode_into(value, chunks: list) -> None:
    if value is None:
        chunks.append(b"N")
    elif value is True:
        chunks.append(b"T")
    elif value is False:
        chunks.append(b"F")
    elif isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            chunks.append(b"i" + _I64.pack(value))
        else:
            digits = str(value).encode("ascii")
            chunks.append(b"I" + _U32.pack(len(digits)) + digits)
    elif isinstance(value, float):
        chunks.append(b"f" + _F64.pack(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        chunks.append(b"s" + _U32.pack(len(raw)) + raw)
    elif isinstance(value, bytes):
        chunks.append(b"b" + _U32.pack(len(value)) + value)
    elif isinstance(value, tuple):
        chunks.append(b"t" + _U32.pack(len(value)))
        for item in value:
            _encode_into(item, chunks)
    elif isinstance(value, list):
        chunks.append(b"l" + _U32.pack(len(value)))
        for item in value:
            _encode_into(item, chunks)
    elif isinstance(value, dict):
        chunks.append(b"d" + _U32.pack(len(value)))
        for key, item in value.items():
            if not isinstance(key, str):
                raise TransportError(
                    f"wire dicts use str keys, got {type(key).__name__}"
                )
            _encode_into(key, chunks)
            _encode_into(item, chunks)
    elif isinstance(value, OpCounts):
        chunks.append(
            b"o"
            + _I64.pack(value.mults)
            + _I64.pack(value.adds)
            + _I64.pack(value.compares)
        )
    elif isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        dtype = arr.dtype.str.encode("ascii")
        chunks.append(b"a" + _U32.pack(len(dtype)) + dtype)
        chunks.append(_U32.pack(arr.ndim))
        for extent in arr.shape:
            chunks.append(_I64.pack(extent))
        raw = arr.tobytes()  # C-order; bit-identical round trip
        chunks.append(_I64.pack(len(raw)))
        chunks.append(raw)
    elif isinstance(value, (np.integer,)):
        _encode_into(int(value), chunks)
    elif isinstance(value, (np.floating,)):
        _encode_into(float(value), chunks)
    else:
        raise TransportError(
            f"type {type(value).__name__} is not wire-encodable"
        )


def encode_value(value) -> bytes:
    """Encode one plain-data value as codec bytes.

    Supported types: ``None``, ``bool``, ``int``, ``float``, ``str``,
    ``bytes``, ``tuple``/``list``/``dict`` (string keys) of supported
    values, C-contiguous-able :class:`numpy.ndarray` (any dtype,
    shipped bit-exactly) and :class:`OpCounts`.
    """
    chunks: list = []
    _encode_into(value, chunks)
    return b"".join(chunks)


class _Reader:
    """Cursor over one frame's payload bytes."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if n < 0 or end > len(self.data):
            raise TransportError("truncated frame payload")
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk


def _decode_from(reader: _Reader):
    tag = reader.take(1)
    if tag == b"N":
        return None
    if tag == b"T":
        return True
    if tag == b"F":
        return False
    if tag == b"i":
        return _I64.unpack(reader.take(8))[0]
    if tag == b"I":
        (length,) = _U32.unpack(reader.take(4))
        return int(reader.take(length).decode("ascii"))
    if tag == b"f":
        return _F64.unpack(reader.take(8))[0]
    if tag == b"s":
        (length,) = _U32.unpack(reader.take(4))
        return reader.take(length).decode("utf-8")
    if tag == b"b":
        (length,) = _U32.unpack(reader.take(4))
        return reader.take(length)
    if tag == b"t":
        (count,) = _U32.unpack(reader.take(4))
        return tuple(_decode_from(reader) for _ in range(count))
    if tag == b"l":
        (count,) = _U32.unpack(reader.take(4))
        return [_decode_from(reader) for _ in range(count)]
    if tag == b"d":
        (count,) = _U32.unpack(reader.take(4))
        out = {}
        for _ in range(count):
            key = _decode_from(reader)
            if not isinstance(key, str):
                raise TransportError("wire dict key is not a string")
            out[key] = _decode_from(reader)
        return out
    if tag == b"o":
        mults = _I64.unpack(reader.take(8))[0]
        adds = _I64.unpack(reader.take(8))[0]
        compares = _I64.unpack(reader.take(8))[0]
        return OpCounts(mults=mults, adds=adds, compares=compares)
    if tag == b"a":
        (dtype_len,) = _U32.unpack(reader.take(4))
        dtype = np.dtype(reader.take(dtype_len).decode("ascii"))
        if dtype.hasobject:  # pragma: no cover - rejected at encode too
            raise TransportError("object arrays are not wire-decodable")
        (ndim,) = _U32.unpack(reader.take(4))
        shape = tuple(
            _I64.unpack(reader.take(8))[0] for _ in range(ndim)
        )
        (nbytes,) = _I64.unpack(reader.take(8))
        expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        if nbytes != expected:
            raise TransportError(
                f"array payload is {nbytes} bytes, shape/dtype need {expected}"
            )
        raw = reader.take(nbytes)
        # frombuffer keeps the frame's bytes as the backing store — no
        # copy, and read-only, which every downstream kernel accepts
        # (windows are copied into padded workspaces before any write).
        return np.frombuffer(raw, dtype=dtype).reshape(shape)
    raise TransportError(f"unknown wire tag {tag!r}")


def decode_value(data: bytes):
    """Decode codec bytes back into the value :func:`encode_value` took."""
    reader = _Reader(data)
    value = _decode_from(reader)
    if reader.pos != len(data):
        raise TransportError(
            f"{len(data) - reader.pos} trailing bytes after wire value"
        )
    return value


# ----------------------------------------------------------------------
# Addresses
# ----------------------------------------------------------------------


def parse_address(address: str, allow_ephemeral: bool = False) -> tuple[str, int]:
    """Split a ``HOST:PORT`` worker address into its parts.

    Raises :class:`~repro.errors.ConfigurationError` on anything that
    cannot name a reachable daemon (missing port, port out of range) —
    worker lists come from config files and CLI flags, where a typo
    must fail at parse time, not as a connect timeout mid-run.
    ``allow_ephemeral`` additionally accepts port 0 (bind-side only:
    a *listen* address may ask the OS to pick the port, but a worker
    list entry naming port 0 could never be dialled).
    """
    if not isinstance(address, str):
        raise ConfigurationError(
            f"worker address must be a 'host:port' string, got "
            f"{type(address).__name__}"
        )
    host, sep, port_text = address.rpartition(":")
    if not sep or not host:
        raise ConfigurationError(
            f"worker address {address!r} is not of the form 'host:port'"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(
            f"worker address {address!r} has a non-numeric port"
        ) from None
    low = 0 if allow_ephemeral else 1
    if not low <= port <= 65535:
        raise ConfigurationError(
            f"worker address {address!r} port must be in [{low}, 65535]"
        )
    return host, port


def format_address(host: str, port: int) -> str:
    """The canonical ``HOST:PORT`` spelling :func:`parse_address` accepts."""
    return f"{host}:{port}"


# ----------------------------------------------------------------------
# Frame stream
# ----------------------------------------------------------------------


class FrameStream:
    """Message-oriented wrapper around one connected socket.

    Every message is ``(kind, payload)`` — a short string naming the
    message type and a payload dict — encoded with the typed codec and
    shipped as one frame.  The stream counts payload bytes in each
    direction (:attr:`bytes_sent` / :attr:`bytes_received`) so callers
    can quantify transport overhead.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self.bytes_sent = 0
        self.bytes_received = 0

    def send(self, kind: str, payload: dict | None = None) -> None:
        """Encode and send one message (blocking until fully written)."""
        body = encode_value((kind, payload if payload is not None else {}))
        frame = _HEADER.pack(FRAME_MAGIC, len(body)) + body
        try:
            self._sock.sendall(frame)
        except OSError as exc:
            raise ConnectionError(f"fleet transport send failed: {exc}") from exc
        self.bytes_sent += len(frame)

    def _recv_exact(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            try:
                chunk = self._sock.recv(min(remaining, 1 << 20))
            except socket.timeout:
                raise
            except OSError as exc:
                raise ConnectionError(
                    f"fleet transport receive failed: {exc}"
                ) from exc
            if not chunk:
                raise ConnectionError(
                    "fleet transport peer closed the connection"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self) -> tuple[str, dict]:
        """Receive one complete message (blocking; honours socket timeout).

        Raises :class:`ConnectionError` when the peer vanished,
        :class:`socket.timeout` when the socket timeout elapsed with no
        complete frame, and :class:`~repro.errors.TransportError` on
        protocol violations.
        """
        header = self._recv_exact(_HEADER.size)
        magic, length = _HEADER.unpack(header)
        if magic != FRAME_MAGIC:
            raise TransportError(
                f"bad frame magic {magic!r} (expected {FRAME_MAGIC!r})"
            )
        if length > MAX_FRAME_BYTES:
            raise TransportError(
                f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
            )
        body = self._recv_exact(length)
        self.bytes_received += _HEADER.size + length
        message = decode_value(body)
        if (
            not isinstance(message, tuple)
            or len(message) != 2
            or not isinstance(message[0], str)
            or not isinstance(message[1], dict)
        ):
            raise TransportError("frame payload is not a (kind, dict) message")
        return message

    def settimeout(self, seconds: float | None) -> None:
        """Set the receive/send timeout on the underlying socket."""
        self._sock.settimeout(seconds)

    def close(self) -> None:
        """Close the underlying socket (idempotent, never raises)."""
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close never fails in practice
            pass
