"""Fleet-scale sharded execution of the windowed-PSA engine.

This package turns the single-process batched Welch-Lomb pipeline into
a cohort runner: recordings (or window shards of one huge recording)
spread across a pool of worker processes — and, via the socket
transport, across worker daemons on other machines — RR arrays travel
through shared memory (or the wire, once per connection), plan caches
are warmed before the pool forks, and the per-host batch chunk size is
auto-tuned instead of hard-coded.

Entry points:

* :class:`~repro.fleet.runner.FleetRunner` — the cohort runner
  (``run`` / ``run_report``), scheduling over local pool slots and any
  configured remote workers;
* :class:`~repro.fleet.remote.WorkerDaemon` /
  :func:`~repro.fleet.remote.run_worker_daemon` — the cross-machine
  worker (``python -m repro worker --listen HOST:PORT``);
* :class:`~repro.fleet.remote.RemoteWorker` — the scheduler-side
  handle to one daemon;
* :func:`~repro.fleet.tuning.autotune_chunk_windows` /
  :func:`~repro.fleet.tuning.measure_chunk_windows` — per-host chunk
  tuning;
* :func:`~repro.fleet.sharding.plan_shards` — the work decomposition.
"""

from .remote import RemoteTaskError, RemoteWorker, WorkerDaemon, run_worker_daemon
from .runner import FleetReport, FleetRunner
from .sharding import WindowShard, plan_shards
from .shm import SharedArrayRef, SharedRecordingStore, attach_array
from .transport import FrameStream, format_address, parse_address
from .tuning import (
    ChunkTuning,
    autotune_chunk_windows,
    chunk_windows_for_cache,
    detect_cache_bytes,
    measure_chunk_windows,
)

__all__ = [
    "ChunkTuning",
    "FleetReport",
    "FleetRunner",
    "FrameStream",
    "RemoteTaskError",
    "RemoteWorker",
    "SharedArrayRef",
    "SharedRecordingStore",
    "WindowShard",
    "WorkerDaemon",
    "attach_array",
    "autotune_chunk_windows",
    "chunk_windows_for_cache",
    "detect_cache_bytes",
    "format_address",
    "measure_chunk_windows",
    "parse_address",
    "plan_shards",
    "run_worker_daemon",
]
