"""Fleet-scale sharded execution of the windowed-PSA engine.

This package turns the single-process batched Welch-Lomb pipeline into
a cohort runner: recordings (or window shards of one huge recording)
spread across a pool of worker processes, RR arrays travel through
shared memory, plan caches are warmed before the pool forks, and the
per-host batch chunk size is auto-tuned instead of hard-coded.

Entry points:

* :class:`~repro.fleet.runner.FleetRunner` — the multiprocess cohort
  runner (``run`` / ``run_report``);
* :func:`~repro.fleet.tuning.autotune_chunk_windows` /
  :func:`~repro.fleet.tuning.measure_chunk_windows` — per-host chunk
  tuning;
* :func:`~repro.fleet.sharding.plan_shards` — the work decomposition.
"""

from .runner import FleetReport, FleetRunner
from .sharding import WindowShard, plan_shards
from .shm import SharedArrayRef, SharedRecordingStore, attach_array
from .tuning import (
    ChunkTuning,
    autotune_chunk_windows,
    chunk_windows_for_cache,
    detect_cache_bytes,
    measure_chunk_windows,
)

__all__ = [
    "ChunkTuning",
    "FleetReport",
    "FleetRunner",
    "SharedArrayRef",
    "SharedRecordingStore",
    "WindowShard",
    "attach_array",
    "autotune_chunk_windows",
    "chunk_windows_for_cache",
    "detect_cache_bytes",
    "measure_chunk_windows",
    "plan_shards",
]
