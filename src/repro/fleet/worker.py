"""Worker-process side of the fleet engine.

Each pool worker is initialised exactly once with the pickled
:class:`~repro.lomb.welch.WelchLomb` engine and the parent's resolved
batch chunk size (:func:`init_worker`), then executes
:class:`ShardTask`s (:func:`run_shard`): attach the recording's
shared-memory arrays, slice the shard's windows out of them zero-copy,
drive :meth:`FastLomb.periodogram_batch`, and ship the spectra back in
a compact packed form (per-window frequency grids are rebuilt from
``df``/``nout`` on the parent side instead of being pickled once per
window).

With the default ``fork`` start method the engine and every plan-cache
table are inherited copy-on-write from the warmed parent; with
``spawn`` the initializer re-warms this process's own caches.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..ffts.plancache import warm_execution_caches
from ..ffts.providers.registry import set_default_provider
from ..hrv.metrics import WindowMetrics
from ..lomb.fast import LombSpectrum, set_batch_chunk_windows
from ..lomb.welch import WelchLomb, analyze_spans_quality
from ..perf.workspace import WorkspaceArena, set_active_arena
from .shm import SharedArrayRef, attach_array

__all__ = [
    "ShardTask",
    "SpanBatchTask",
    "init_worker",
    "run_shard",
    "run_span_batch",
    "pack_metrics",
    "pack_spectra",
    "unpack_metrics",
    "unpack_spectra",
]

#: Per-process state installed by :func:`init_worker`.
_STATE: dict = {}


@dataclass(frozen=True)
class ShardTask:
    """One unit of pool work: a window range of one recording.

    Attributes
    ----------
    shard_id:
        Position of this shard in the dispatch order (used to collect
        unordered results).
    recording:
        Cohort index of the recording (for reassembly bookkeeping).
    times_ref, values_ref:
        Shared-memory handles of the recording's arrays.
    spans:
        Sample-index ``[start, stop)`` ranges of this shard's windows.
    count_ops:
        Attach executed operation counts to every spectrum.
    corrected_ref:
        Shared-memory handle of the recording's interpolated-beat 0/1
        mask, or ``None`` when the recording carries no provenance.
    """

    shard_id: int
    recording: int
    times_ref: SharedArrayRef
    values_ref: SharedArrayRef
    spans: tuple[tuple[int, int], ...]
    count_ops: bool
    corrected_ref: SharedArrayRef | None = None


def init_worker(
    welch: WelchLomb,
    chunk_windows: int | None,
    provider: str | None = None,
    arena: bool = True,
    progress_queue=None,
    config=None,
) -> None:
    """Pool initializer: install the engine and warm this process.

    ``chunk_windows`` pins the batch sub-batch size to the parent's
    resolved value so the whole fleet runs one consistent chunking
    policy (results never depend on it; only throughput does).
    ``provider`` pins the FFT execution provider to the parent's
    resolved choice — here results *do* depend on it (different engines
    round differently), so pinning is what keeps every shard, and hence
    the merged cohort, bit-identical to the single-process run.
    ``arena`` installs a process-wide
    :class:`~repro.perf.WorkspaceArena` and pre-warms its hottest
    shapes — the ``(chunk, workspace)`` kernel matrices — so even a
    worker's first shard reuses pooled buffers (arenas never change
    results; the kernels run the same operations either way).
    ``progress_queue`` (a ``multiprocessing`` queue) receives a
    ``(pid, task_id)`` record as each task *starts*, so the parent's
    watchdog can name the task a worker held when it died.
    ``config`` (an :class:`~repro.engine.EngineConfig`) lets this
    worker serve *quality-variant* span batches — tasks tagged with a
    degraded pruning mode by the hub's SLO controller — by rebuilding
    the variant's engine from ``config.replace(...)``; without it,
    variant tasks are rejected.
    """
    if chunk_windows is not None:
        set_batch_chunk_windows(chunk_windows)
    if provider is not None:
        set_default_provider(provider)
    analyzer = welch.analyzer
    warm_execution_caches(analyzer.workspace_size, analyzer.order, provider)
    if arena:
        worker_arena = WorkspaceArena()
        if chunk_windows is not None and chunk_windows > 0:
            ndim = analyzer.workspace_size
            worker_arena.warm((chunk_windows, ndim), np.float64, count=2)
            worker_arena.warm((chunk_windows, ndim), np.complex128, count=2)
        set_active_arena(worker_arena)
    _STATE["welch"] = welch
    _STATE["progress"] = progress_queue
    _STATE["config"] = config
    _STATE["variants"] = {}


def _report_task_start(task_id: int) -> None:
    """Tell the parent which task this process is about to run."""
    progress = _STATE.get("progress")
    if progress is not None:
        try:
            progress.put((os.getpid(), task_id))
        except Exception:  # pragma: no cover - progress is best-effort
            pass


def pack_spectra(spectra) -> list[tuple]:
    """Compact, picklable form of a shard's spectra.

    Runs of consecutive same-grid-length windows (the overwhelmingly
    common case: a steady recording produces one grid) are packed as
    **one** dense power matrix plus per-window scalar vectors, instead
    of thousands of tiny per-window arrays; frequency grids are dropped
    entirely (reconstructable as ``df * arange(1, nout + 1)``).  This
    cuts the result traffic back to the parent by well over half.
    """
    groups: list[tuple] = []
    run: list[LombSpectrum] = []
    for spectrum in spectra:
        if run and spectrum.frequencies.size != run[0].frequencies.size:
            groups.append(_pack_group(run))
            run = []
        run.append(spectrum)
    if run:
        groups.append(_pack_group(run))
    return groups


def _pack_group(run: list[LombSpectrum]) -> tuple:
    return (
        run[0].frequencies.size,
        np.array([float(s.frequencies[0]) for s in run]),
        np.vstack([s.power for s in run]),
        np.array([s.mean for s in run]),
        np.array([s.variance for s in run]),
        np.array([s.n_samples for s in run], dtype=np.int64),
        np.array([s.duration for s in run]),
        tuple(s.counts for s in run),
    )


def unpack_spectra(packed) -> list[LombSpectrum]:
    """Rebuild :class:`LombSpectrum` records from :func:`pack_spectra`."""
    spectra = []
    for nout, dfs, powers, means, variances, ns, durations, counts in packed:
        m = np.arange(1, nout + 1)
        for i in range(dfs.size):
            spectra.append(
                LombSpectrum(
                    frequencies=dfs[i] * m,
                    power=powers[i],
                    mean=float(means[i]),
                    variance=float(variances[i]),
                    n_samples=int(ns[i]),
                    duration=float(durations[i]),
                    counts=counts[i],
                )
            )
    return spectra


def pack_metrics(metrics) -> tuple:
    """Compact, picklable form of a task's per-window metrics.

    Eight parallel vectors (one entry per window) instead of a list of
    dataclass instances — the same dense-over-sparse trade
    :func:`pack_spectra` makes, and every float crosses the transports
    as a raw float64 buffer, so the rebuilt metrics are bit-exact.
    """
    metrics = tuple(metrics)
    return (
        np.array([m.n_beats for m in metrics], dtype=np.int64),
        np.array([m.mean_rr_ms for m in metrics]),
        np.array([m.sdnn_ms for m in metrics]),
        np.array([m.rmssd_ms for m in metrics]),
        np.array([m.pnn50 for m in metrics]),
        np.array([m.pnn20 for m in metrics]),
        np.array([m.corrected_fraction for m in metrics]),
        np.array([m.flags for m in metrics], dtype=np.int64),
    )


def unpack_metrics(packed) -> tuple[WindowMetrics, ...]:
    """Rebuild :class:`WindowMetrics` records from :func:`pack_metrics`."""
    n_beats, means, sdnns, rmssds, p50s, p20s, fractions, flags = packed
    return tuple(
        WindowMetrics(
            n_beats=int(n_beats[i]),
            mean_rr_ms=float(means[i]),
            sdnn_ms=float(sdnns[i]),
            rmssd_ms=float(rmssds[i]),
            pnn50=float(p50s[i]),
            pnn20=float(p20s[i]),
            corrected_fraction=float(fractions[i]),
            flags=int(flags[i]),
        )
        for i in range(n_beats.size)
    )


def _variant_welch(variant) -> WelchLomb:
    """The engine a task's quality variant selects (``None`` = base).

    A variant is a ``(system_kind, PruningSpec)`` pair — one rung of
    the hub's degradation ladder.  Variant engines are built from the
    installed :class:`~repro.engine.EngineConfig` and cached per
    process, mirroring the parent engine's own variant cache, so a
    worker serving a heterogeneous flush pays one plan-cache hit per
    new level, not a rebuild per task.
    """
    if variant is None:
        return _STATE["welch"]
    cache = _STATE.get("variants")
    config = _STATE.get("config")
    if cache is None or config is None:
        raise ConfigurationError(
            "worker received a quality-variant task but was initialised "
            "without an engine config: cannot build the variant's engine"
        )
    welch = cache.get(variant)
    if welch is None:
        # Imported lazily: repro.engine imports this module's package at
        # call time only, and keeping that symmetric avoids a cycle.
        from ..engine.engine import build_system

        system_kind, pruning = variant
        welch = build_system(
            config.replace(system=system_kind, pruning=pruning)
        ).welch
        cache[variant] = welch
    return welch


def _analyze_refs(
    times_ref: SharedArrayRef,
    values_ref: SharedArrayRef,
    spans,
    count_ops: bool,
    variant=None,
    corrected_ref: SharedArrayRef | None = None,
) -> tuple[list[tuple], tuple]:
    """Attach, analyse the given spans, pack, detach.

    Windows are sliced zero-copy from the shared recording arrays;
    ``periodogram_batch`` copies them into its own padded workspaces,
    so nothing returned references the shared blocks and the
    attachments can be released before returning (pools outlive
    individual runs, so holding attachments would pin unlinked blocks).
    Returns ``(packed_spectra, packed_metrics)``.
    """
    welch: WelchLomb = _variant_welch(variant)
    t_block, times = attach_array(times_ref)
    x_block, values = attach_array(values_ref)
    c_block = corrected = None
    if corrected_ref is not None:
        c_block, corrected = attach_array(corrected_ref)
    try:
        spectra, metrics = analyze_spans_quality(
            welch.analyzer, times, values, spans, count_ops,
            corrected=corrected,
        )
        packed = pack_spectra(spectra)
        packed_metrics = pack_metrics(metrics)
    finally:
        # Every view into the mapped blocks must be gone before close()
        # (mmap refuses to unmap while buffer exports are alive).
        spectra = times = values = corrected = None
        t_block.close()
        x_block.close()
        if c_block is not None:
            c_block.close()
    return packed, packed_metrics


def run_shard(task: ShardTask) -> tuple[int, tuple]:
    """Analyse one shard's windows against the installed engine.

    Returns ``(shard_id, (packed_spectra, packed_metrics))`` with
    spectra and metrics in window order.
    """
    _report_task_start(task.shard_id)
    packed = _analyze_refs(
        task.times_ref, task.values_ref, task.spans, task.count_ops,
        corrected_ref=task.corrected_ref,
    )
    return task.shard_id, packed


@dataclass(frozen=True)
class SpanBatchTask:
    """One unit of streaming-hub pool work: a slice of a span batch.

    Unlike :class:`ShardTask` there is no recording index — the span
    batch is one flat (possibly multi-subject, concatenated) sample
    array pair, and the parent reassembles the spectra purely by
    ``batch_id`` order.

    Attributes
    ----------
    batch_id:
        Position of this slice in the dispatch order.
    times_ref, values_ref:
        Shared-memory handles of the batch's sample arrays.
    spans:
        Sample-index ``[start, stop)`` ranges of this slice's windows.
    count_ops:
        Attach executed operation counts to every spectrum.
    variant:
        Quality variant to run this slice at: ``None`` for the
        installed base engine, or a ``(system_kind, PruningSpec)`` pair
        naming a degraded ladder level (requires ``init_worker`` to
        have received the engine config).
    corrected_ref:
        Shared-memory handle of the batch's interpolated-beat 0/1
        mask, or ``None`` when the batch carries no provenance.
    """

    batch_id: int
    times_ref: SharedArrayRef
    values_ref: SharedArrayRef
    spans: tuple[tuple[int, int], ...]
    count_ops: bool
    variant: tuple | None = None
    corrected_ref: SharedArrayRef | None = None


def run_span_batch(task: SpanBatchTask) -> tuple[int, tuple]:
    """Analyse one span-batch slice against the installed engine.

    Returns ``(batch_id, (packed_spectra, packed_metrics))`` with
    spectra and metrics in span order — the streaming-hub counterpart
    of :func:`run_shard`, reusing the identical shm transport and
    packed result form.
    """
    _report_task_start(task.batch_id)
    packed = _analyze_refs(
        task.times_ref, task.values_ref, task.spans, task.count_ops,
        variant=task.variant, corrected_ref=task.corrected_ref,
    )
    return task.batch_id, packed
