"""Cross-machine fleet: the worker daemon and its client handle.

The shared-memory transport (:mod:`repro.fleet.shm`) stops at the host
boundary; this module puts the same shard protocol on a socket:

* :class:`WorkerDaemon` — ``python -m repro worker --listen HOST:PORT``.
  One daemon is one remote execution slot.  A connecting scheduler
  sends a ``hello`` carrying a serialized
  :class:`~repro.engine.config.EngineConfig` blob plus the *parent's
  already-resolved* provider and chunk size; the daemon reconstructs
  the identical execution state (same system geometry, same pinned
  provider — never re-resolved, because two hosts may auto-probe
  differently — plan caches warmed, arena installed) and then serves
  ``task`` messages: analyse a span batch against uploaded arrays and
  ship the spectra back in the exact packed form the shm pool uses
  (:func:`~repro.fleet.worker.pack_spectra`).  While a task computes,
  the daemon emits ``heartbeat`` frames so the scheduler can tell a
  slow shard from a dead worker.

* :class:`RemoteWorker` — the scheduler-side handle: connect +
  handshake, upload each sample array once per connection
  (:meth:`RemoteWorker.ensure_array` — tasks then reference arrays by
  key, mirroring the slice-by-reference shm design), run tasks, and
  surface worker death as :class:`ConnectionError` so the scheduler
  can reassign the shard.

Bit-identity holds across this transport by construction: arrays travel
as raw float64 buffers (:mod:`repro.fleet.transport`), the daemon runs
the same :func:`~repro.lomb.welch.analyze_spans_quality` choke point
under the same provider/chunk pins, and packed spectra and per-window
metrics come back bit-exact.
"""

from __future__ import annotations

import os
import select
import socket
import threading
import time
import zlib

import numpy as np

from ..errors import ConfigurationError, ReproError, TransportError
from .transport import FrameStream, format_address, parse_address

__all__ = [
    "RemoteTaskError",
    "RemoteWorker",
    "WorkerDaemon",
    "run_worker_daemon",
]

#: Wire-protocol revision; peers refuse a mismatch at handshake.
#: v2 added the optional per-task ``variant`` field (quality-adaptive
#: load shedding) — a v1 daemon would silently ignore it and compute
#: the wrong quality, which is exactly what the handshake check is for.
#: v3 added the optional per-task ``corrected_key`` (interpolated-beat
#: provenance) and the packed per-window ``metrics`` in every result
#: frame — a v2 daemon would answer with a result the scheduler cannot
#: unpack, so again the handshake refuses the pairing up front.
PROTOCOL_VERSION = 3

#: Seconds between ``heartbeat`` frames while a task computes.
HEARTBEAT_INTERVAL = 1.0

#: Default client-side socket timeout (seconds).  With heartbeats every
#: :data:`HEARTBEAT_INTERVAL` seconds, a healthy daemon is never silent
#: for more than a couple of seconds — a full timeout means the worker
#: process (or its host) is gone and the shard must be reassigned.
DEFAULT_TIMEOUT = 15.0

#: Bounded-backoff defaults for :meth:`RemoteWorker.reconnect`: attempt
#: ``i`` sleeps ``min(RECONNECT_MAX_DELAY, RECONNECT_BASE_DELAY * 2**i)``
#: plus a deterministic per-address jitter before dialling.
RECONNECT_ATTEMPTS = 3
RECONNECT_BASE_DELAY = 0.05
RECONNECT_MAX_DELAY = 1.0


class RemoteTaskError(ReproError):
    """A task failed *inside* a healthy worker daemon.

    Distinct from :class:`ConnectionError` (worker death) on purpose:
    an analysis error is deterministic — the same shard would fail on
    any worker — so the scheduler aborts instead of retrying it
    elsewhere.
    """


# ----------------------------------------------------------------------
# Daemon (server) side
# ----------------------------------------------------------------------


class WorkerDaemon:
    """A socket-serving fleet worker: one remote execution slot.

    Parameters
    ----------
    host, port:
        Listen address; port 0 binds an ephemeral port (the bound port
        is in :attr:`port` / :attr:`address` after construction).
    heartbeat_interval:
        Seconds between heartbeat frames while a task computes.

    Use :meth:`serve_forever` as a process entry point
    (:func:`run_worker_daemon`) or :meth:`start`/:meth:`close` to run
    the accept loop on a background thread (tests, notebooks).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
    ):
        self._listener = socket.create_server(
            (host, int(port)), reuse_port=False
        )
        self._listener.settimeout(0.2)
        self.host = host
        self.port = int(self._listener.getsockname()[1])
        self.heartbeat_interval = float(heartbeat_interval)
        self._stop = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []
        # One task computes at a time: a daemon is one worker slot, the
        # remote analogue of one pool process (schedulers wanting more
        # slots per host run more daemons).  The lock also keeps the
        # per-task provider/chunk pins of concurrent client connections
        # from interleaving.
        self._exec_lock = threading.Lock()
        self._arena_lock = threading.Lock()
        self._arena_installed = False

    @property
    def address(self) -> str:
        """The ``host:port`` this daemon listens on."""
        return format_address(self.host, self.port)

    # -- lifecycle -----------------------------------------------------

    def serve_forever(self) -> None:
        """Accept and serve connections until :meth:`close` (blocking)."""
        while not self._stop.is_set():
            try:
                conn, _peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us: shutting down
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()
            self._conn_threads.append(thread)
            self._conn_threads = [
                t for t in self._conn_threads if t.is_alive()
            ]

    def start(self) -> "WorkerDaemon":
        """Run :meth:`serve_forever` on a background thread."""
        self._accept_thread = threading.Thread(
            target=self.serve_forever, daemon=True
        )
        self._accept_thread.start()
        return self

    def close(self) -> None:
        """Stop accepting, close the listener and join serving threads."""
        self._stop.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close never fails in practice
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        for thread in self._conn_threads:
            thread.join(timeout=5.0)
        self._conn_threads = []

    def __enter__(self) -> "WorkerDaemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- connection protocol -------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        stream = FrameStream(conn)
        # Waiting for the *next* message polls with select so close()
        # is noticed promptly; once a frame starts arriving the stream
        # timeout below bounds mid-frame stalls.  A timeout must never
        # fire between the chunks of one frame and leave the stream
        # desynchronised, which is why the idle wait happens out here.
        stream.settimeout(60.0)
        state: dict = {"welch": None, "arrays": {}}
        try:
            while not self._stop.is_set():
                try:
                    ready, _, _ = select.select([conn], [], [], 0.2)
                except (OSError, ValueError):
                    return  # connection closed under us mid-session
                if not ready:
                    continue
                try:
                    kind, payload = stream.recv()
                except socket.timeout:
                    return
                except (ConnectionError, TransportError):
                    return
                if kind == "ping":
                    stream.send(
                        "pong",
                        {"pid": os.getpid(), "version": PROTOCOL_VERSION},
                    )
                elif kind == "hello":
                    if not self._handshake(stream, payload, state):
                        return
                elif kind == "array":
                    state["arrays"][int(payload["key"])] = payload["data"]
                elif kind == "reset":
                    state["arrays"].clear()
                elif kind == "task":
                    self._run_task(stream, payload, state)
                elif kind == "bye":
                    return
                else:
                    stream.send(
                        "error", {"message": f"unknown message kind {kind!r}"}
                    )
        finally:
            stream.close()

    def _handshake(self, stream, payload, state) -> bool:
        """Install the client's execution state; False ends the session."""
        try:
            version = payload.get("version")
            if version != PROTOCOL_VERSION:
                raise TransportError(
                    f"protocol version mismatch: daemon speaks "
                    f"{PROTOCOL_VERSION}, client sent {version!r}"
                )
            from ..engine.config import EngineConfig
            from ..engine.engine import build_system
            from ..ffts.plancache import warm_execution_caches
            from ..ffts.providers.registry import available_providers

            config = EngineConfig.from_dict(payload["config"])
            provider = payload["provider"]
            chunk = int(payload["chunk_windows"])
            if not available_providers().get(provider, False):
                raise ConfigurationError(
                    f"FFT provider {provider!r} pinned by the scheduler is "
                    f"not available on this worker host"
                )
            welch = build_system(config).welch
            analyzer = welch.analyzer
            warm_execution_caches(
                analyzer.workspace_size, analyzer.order, provider
            )
            if payload.get("arena", True):
                self._install_arena(chunk, analyzer.workspace_size)
            state.update(
                welch=welch, provider=provider, chunk=chunk, arrays={},
                config=config, variants={},
            )
        except ReproError as exc:
            try:
                stream.send("error", {"message": str(exc)})
            except ConnectionError:
                pass
            return False
        stream.send(
            "ready",
            {
                "pid": os.getpid(),
                "version": PROTOCOL_VERSION,
                "provider": state["provider"],
                "chunk_windows": state["chunk"],
            },
        )
        return True

    def _install_arena(self, chunk: int, workspace: int) -> None:
        """Process-wide workspace arena, installed once (like init_worker)."""
        with self._arena_lock:
            if self._arena_installed:
                return
            from ..perf.workspace import WorkspaceArena, set_active_arena

            arena = WorkspaceArena()
            if chunk > 0:
                arena.warm((chunk, workspace), np.float64, count=2)
                arena.warm((chunk, workspace), np.complex128, count=2)
            set_active_arena(arena)
            self._arena_installed = True

    def _run_task(self, stream, payload, state) -> None:
        """Execute one span-batch task, heartbeating while it computes."""
        if state["welch"] is None:
            stream.send(
                "error", {"message": "task before hello: no engine installed"}
            )
            return
        task_id = payload.get("task_id")
        outcome: dict = {}
        compute = threading.Thread(
            target=self._compute, args=(payload, state, outcome), daemon=True
        )
        compute.start()
        while compute.is_alive():
            compute.join(self.heartbeat_interval)
            if compute.is_alive():
                try:
                    stream.send("heartbeat", {})
                except ConnectionError:
                    # Client gone: let the task finish (it is already
                    # running), drop the result, end the session.
                    compute.join()
                    return
        if "error" in outcome:
            stream.send("error", {"task_id": task_id, "message": outcome["error"]})
        else:
            stream.send(
                "result",
                {
                    "task_id": task_id,
                    "packed": outcome["packed"],
                    "metrics": outcome["metrics"],
                },
            )

    @staticmethod
    def _variant_welch(state, variant: dict):
        """The engine a task's wire variant selects (see ``run_task``).

        The wire form is a plain ``{"system": ..., "pruning": {...}}``
        dict (the frame codec carries no custom classes); it is decoded
        back into a :class:`~repro.ffts.pruning.PruningSpec` and the
        variant engine is built from the handshake config and cached
        per connection — the daemon-side mirror of the parent engine's
        variant cache.
        """
        from ..engine.engine import build_system
        from ..ffts.pruning import PruningSpec

        pruning = PruningSpec(**variant["pruning"])
        key = (variant["system"], pruning)
        cache = state["variants"]
        welch = cache.get(key)
        if welch is None:
            welch = build_system(
                state["config"].replace(system=key[0], pruning=pruning)
            ).welch
            cache[key] = welch
        return welch

    def _compute(self, payload, state, outcome: dict) -> None:
        try:
            from ..lomb.fast import pinned_execution
            from ..lomb.welch import analyze_spans_quality
            from .worker import pack_metrics, pack_spectra

            arrays = state["arrays"]
            try:
                times = arrays[int(payload["times_key"])]
                values = arrays[int(payload["values_key"])]
                corrected_key = payload.get("corrected_key")
                corrected = (
                    None
                    if corrected_key is None
                    else arrays[int(corrected_key)]
                )
            except KeyError as exc:
                raise TransportError(
                    f"task references unknown array key {exc.args[0]!r}"
                ) from None
            spans = [
                (int(start), int(stop)) for start, stop in payload["spans"]
            ]
            variant = payload.get("variant")
            welch = (
                state["welch"]
                if variant is None
                else self._variant_welch(state, variant)
            )
            with self._exec_lock:
                with pinned_execution(state["provider"], state["chunk"]):
                    spectra, metrics = analyze_spans_quality(
                        welch.analyzer,
                        times,
                        values,
                        spans,
                        bool(payload.get("count_ops", False)),
                        corrected=corrected,
                    )
            outcome["packed"] = pack_spectra(spectra)
            outcome["metrics"] = pack_metrics(metrics)
        except Exception as exc:  # deterministic task failure, not death
            outcome["error"] = f"{type(exc).__name__}: {exc}"


def run_worker_daemon(
    listen: str, heartbeat_interval: float = HEARTBEAT_INTERVAL
) -> int:
    """CLI entry point: serve ``python -m repro worker --listen HOST:PORT``.

    Prints the bound address (``--listen host:0`` picks an ephemeral
    port) and serves until interrupted.  ``heartbeat_interval``
    (``--heartbeat-interval``) sets the seconds between heartbeat
    frames while a task computes — pair a longer interval with a larger
    scheduler-side ``worker_timeout``.
    """
    if not float(heartbeat_interval) > 0:
        raise ConfigurationError(
            f"heartbeat interval must be > 0, got {heartbeat_interval}"
        )
    if ":" in listen:
        host, port = parse_address(listen, allow_ephemeral=True)
    else:
        host, port = listen, 0
    daemon = WorkerDaemon(
        host=host, port=port, heartbeat_interval=float(heartbeat_interval)
    )
    print(f"worker daemon pid {os.getpid()} listening on {daemon.address}",
          flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        daemon.close()
    return 0


# ----------------------------------------------------------------------
# Scheduler (client) side
# ----------------------------------------------------------------------


class RemoteWorker:
    """Scheduler-side handle to one worker daemon.

    Parameters
    ----------
    address:
        ``host:port`` of a listening :class:`WorkerDaemon`.
    timeout:
        Socket timeout (seconds) for connect and for each received
        frame.  Heartbeats arrive every :data:`HEARTBEAT_INTERVAL`
        seconds during computation, so a timeout fires only when the
        worker is genuinely unreachable.

    All failures that mean *this worker is gone* surface as
    :class:`ConnectionError`; deterministic task failures surface as
    :class:`RemoteTaskError` (see there for why the split matters).
    """

    def __init__(self, address: str, timeout: float = DEFAULT_TIMEOUT):
        self.address = address
        self.host, self.port = parse_address(address)
        self.timeout = float(timeout)
        self._stream: FrameStream | None = None
        self._sent_arrays: set[int] = set()
        self._closed_sent = 0
        self._closed_received = 0
        self.info: dict = {}
        #: Successful connections after the first (cumulative).
        self.reconnects = 0
        #: Failed connection attempts (cumulative).
        self.connect_failures = 0
        self._ever_connected = False

    @property
    def connected(self) -> bool:
        """Whether a handshaken connection is currently open."""
        return self._stream is not None

    @property
    def bytes_sent(self) -> int:
        """Bytes sent to this worker, cumulative across reconnects."""
        live = self._stream.bytes_sent if self._stream is not None else 0
        return self._closed_sent + live

    @property
    def bytes_received(self) -> int:
        """Bytes received from this worker, cumulative across reconnects."""
        live = self._stream.bytes_received if self._stream is not None else 0
        return self._closed_received + live

    def connect(self, hello: dict) -> dict:
        """Connect and handshake; returns the daemon's ``ready`` payload.

        ``hello`` carries the serialized engine config and the
        scheduler's resolved provider/chunk (see
        :meth:`WorkerDaemon._handshake`).  Raises
        :class:`ConnectionError` if the daemon is unreachable and
        :class:`~repro.errors.ConfigurationError` if it refuses the
        configuration (these are not retried: the worker is healthy,
        the request is wrong).
        """
        self.close()
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            self.connect_failures += 1
            raise ConnectionError(
                f"cannot reach fleet worker {self.address}: {exc}"
            ) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        stream = FrameStream(sock)
        stream.settimeout(self.timeout)
        try:
            stream.send("hello", dict(hello, version=PROTOCOL_VERSION))
            kind, payload = self._recv_content(stream)
        except (ConnectionError, TransportError, socket.timeout) as exc:
            stream.close()
            self.connect_failures += 1
            raise ConnectionError(
                f"handshake with fleet worker {self.address} failed: {exc}"
            ) from exc
        if kind == "error":
            stream.close()
            raise ConfigurationError(
                f"fleet worker {self.address} refused the configuration: "
                f"{payload.get('message')}"
            )
        if kind != "ready":
            stream.close()
            raise TransportError(
                f"fleet worker {self.address} answered hello with {kind!r}"
            )
        self._stream = stream
        self._sent_arrays = set()
        self.info = payload
        if self._ever_connected:
            self.reconnects += 1
        self._ever_connected = True
        return payload

    def reconnect(
        self,
        hello: dict,
        attempts: int = RECONNECT_ATTEMPTS,
        base_delay: float = RECONNECT_BASE_DELAY,
        max_delay: float = RECONNECT_MAX_DELAY,
    ) -> dict:
        """Re-dial a dead worker with bounded exponential backoff.

        Attempt ``i`` sleeps ``min(max_delay, base_delay * 2**i)`` plus
        a deterministic jitter (hashed from the address and attempt
        number, up to half the delay — reproducible runs, but a fleet
        of schedulers dialling one rebooted daemon still doesn't dial
        in lockstep) before calling :meth:`connect`.  Returns the
        ``ready`` payload of the first attempt that lands; raises the
        last :class:`ConnectionError` when every attempt fails.
        ``ConfigurationError`` (the daemon answered and *refused*) is
        not retried — the worker is healthy, the request is wrong.

        The connection is fully re-handshaken and the daemon's array
        uploads start from scratch (:meth:`ensure_array` re-uploads on
        first reference), so a caller can resume exactly where the
        death interrupted it.
        """
        last: ConnectionError | None = None
        for attempt in range(int(attempts)):
            delay = min(float(max_delay), float(base_delay) * (2 ** attempt))
            seed = zlib.crc32(f"{self.address}#{attempt}".encode())
            time.sleep(delay * (1.0 + 0.5 * (seed % 1000) / 1000.0))
            try:
                return self.connect(hello)
            except ConnectionError as exc:
                last = exc
        raise ConnectionError(
            f"fleet worker {self.address} still unreachable after "
            f"{attempts} reconnect attempts: {last}"
        )

    @staticmethod
    def _recv_content(stream: FrameStream) -> tuple[str, dict]:
        """Next non-heartbeat message (heartbeats only reset the timeout)."""
        while True:
            kind, payload = stream.recv()
            if kind != "heartbeat":
                return kind, payload

    def _require_stream(self) -> FrameStream:
        if self._stream is None:
            raise ConnectionError(
                f"fleet worker {self.address} is not connected"
            )
        return self._stream

    def reset_arrays(self) -> None:
        """Clear the daemon's uploaded arrays (and our sent-key record).

        Array keys are per-run indices, so a persistent connection must
        be reset between runs — otherwise run N+1's key 0 would silently
        resolve to run N's array on the daemon side.  The reset is
        confirmed with a ping round-trip: a one-way send into a
        half-dead socket succeeds (it only fills the local buffer), and
        a run must not count a worker that cannot answer.
        """
        self._sent_arrays = set()
        stream = self._require_stream()
        try:
            stream.send("reset", {})
            stream.send("ping", {})
            kind, _payload = self._recv_content(stream)
        except (ConnectionError, TransportError, socket.timeout) as exc:
            self._drop()
            raise ConnectionError(
                f"fleet worker {self.address} did not confirm reset: {exc}"
            ) from exc
        if kind != "pong":
            self._drop()
            raise ConnectionError(
                f"fleet worker {self.address} answered ping with {kind!r}"
            )

    def ensure_array(self, key: int, array: np.ndarray) -> None:
        """Upload one sample array unless this connection already has it.

        Tasks then reference the array by ``key`` — the socket analogue
        of the shm store's slice-by-reference protocol: arrays cross
        the wire once per connection, spans are just index pairs.
        """
        if key in self._sent_arrays:
            return
        stream = self._require_stream()
        try:
            stream.send("array", {"key": int(key), "data": array})
        except ConnectionError:
            self._drop()
            raise
        self._sent_arrays.add(key)

    def run_task(
        self,
        task_id: int,
        times_key: int,
        values_key: int,
        spans,
        count_ops: bool,
        variant=None,
        corrected_key: int | None = None,
    ) -> tuple:
        """Run one span batch remotely.

        Returns ``(packed_spectra, packed_metrics)`` — the same shape
        the shm pool's :func:`~repro.fleet.worker.run_span_batch`
        produces, so schedulers merge both transports identically.

        ``variant`` (a ``(system_kind, PruningSpec)`` pair, or ``None``
        for the handshake engine) selects a degraded quality level's
        kernels on the daemon side; it crosses the wire as a plain
        ``{"system", "pruning"}`` dict because the frame codec carries
        no custom classes.  ``corrected_key`` names a previously
        uploaded interpolated-beat mask (``None`` for no provenance).
        Raises :class:`ConnectionError` (worker died or timed out —
        reassign the task) or :class:`RemoteTaskError` (the task itself
        failed — do not retry elsewhere).
        """
        stream = self._require_stream()
        spans_arr = np.asarray(spans, dtype=np.int64).reshape(-1, 2)
        if variant is not None:
            system_kind, pruning = variant
            variant = {
                "system": system_kind,
                "pruning": {
                    "band_drop": pruning.band_drop,
                    "twiddle_fraction": pruning.twiddle_fraction,
                    "dynamic": pruning.dynamic,
                    "dynamic_threshold": pruning.dynamic_threshold,
                },
            }
        try:
            stream.send(
                "task",
                {
                    "task_id": int(task_id),
                    "times_key": int(times_key),
                    "values_key": int(values_key),
                    "spans": spans_arr,
                    "count_ops": bool(count_ops),
                    "variant": variant,
                    "corrected_key": (
                        None if corrected_key is None else int(corrected_key)
                    ),
                },
            )
            kind, payload = self._recv_content(stream)
        except socket.timeout as exc:
            self._drop()
            raise ConnectionError(
                f"fleet worker {self.address} went silent for more than "
                f"{self.timeout:.0f}s (no heartbeat): presumed dead"
            ) from exc
        except (ConnectionError, TransportError) as exc:
            self._drop()
            if isinstance(exc, ConnectionError):
                raise
            raise ConnectionError(
                f"fleet worker {self.address} broke protocol: {exc}"
            ) from exc
        if kind == "error":
            raise RemoteTaskError(
                f"task {task_id} failed on fleet worker {self.address}: "
                f"{payload.get('message')}"
            )
        if kind != "result":
            self._drop()
            raise ConnectionError(
                f"fleet worker {self.address} answered task with {kind!r}"
            )
        return payload["packed"], payload["metrics"]

    def _drop(self) -> None:
        stream, self._stream = self._stream, None
        self._sent_arrays = set()
        if stream is not None:
            self._closed_sent += stream.bytes_sent
            self._closed_received += stream.bytes_received
            stream.close()

    def close(self) -> None:
        """Say goodbye (best-effort) and close the connection."""
        stream = self._stream
        if stream is not None:
            try:
                stream.send("bye", {})
            except ConnectionError:
                pass
        self._drop()
