"""Per-host auto-tuning of the batched execution chunk size.

The batched Fast-Lomb pipeline processes each frequency-grid group in
sub-batches of ``chunk_windows`` rows so the dense ``(rows, N)``
workspaces and extirpolation intermediates stay cache-resident
(:mod:`repro.lomb.fast`).  PR 1 hard-coded 256 rows — a value measured
on one development host.  This module derives the value from the host
instead:

* :func:`detect_cache_bytes` reads the last-level data/unified cache
  size from sysfs (Linux) with a conservative fallback when the probe
  fails;
* :func:`chunk_windows_for_cache` converts a cache size into a row
  count using the measured per-window working-set footprint of the
  batch pipeline;
* :func:`measure_chunk_windows` is the empirical alternative: it times
  a synthetic workload at several candidate chunk sizes and picks the
  fastest (used by the fleet benchmark and the ``tune`` CLI command);
* :func:`autotune_chunk_windows` is the entry point
  :func:`repro.lomb.fast.get_batch_chunk_windows` calls lazily on first
  batched use.

Tuning never changes results — batch rows are independent, so chunk
boundaries only move work between identical dense kernels.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "ChunkTuning",
    "DEFAULT_CHUNK_WINDOWS",
    "autotune_chunk_windows",
    "chunk_windows_for_cache",
    "detect_cache_bytes",
    "measure_chunk_windows",
]

#: The PR 1 value, kept as the fallback when the host cannot be probed.
DEFAULT_CHUNK_WINDOWS = 256

#: Clamp range for any tuned value.  Below 32 rows the per-chunk Python
#: overhead dominates the dense work; above 1024 the overhead saved is
#: already negligible (<0.1 % of chunk runtime) while the working set
#: keeps growing — hosts whose sysfs reports very large (virtualised or
#: shared) last-level caches measurably regress past this point.
MIN_CHUNK_WINDOWS, MAX_CHUNK_WINDOWS = 32, 1024

#: Largest sysfs cache reading the auto-tuner trusts.  Container and VM
#: hosts surface the *machine's* (or a made-up) last-level cache —
#: hundreds of MB one core can never keep resident; feeding such a
#: reading through the footprint model picks maximal chunks that
#: measurably thrash (batched throughput drops ~25 % on a container
#: reporting 260 MB).  Genuinely huge LLCs (EPYC-class) are segmented
#: per CCX, so a single worker still cannot stream more than this.
MAX_TRUSTED_CACHE_BYTES = 64 * 1024 * 1024

#: Measured per-window working set of the batch pipeline, in bytes per
#: workspace cell: packed complex input and spectrum output (16 B each),
#: the two real extirpolation workspaces (8 B each), and roughly half a
#: workspace of live ``(rows, nout)`` temporaries in the Lomb combine.
#: 96 B/cell reproduces the PR 1 measurement (256 windows at N = 512
#: filling a ~12 MB last-level cache).
_BYTES_PER_CELL = 96

_SYSFS_CACHE_ROOT = pathlib.Path("/sys/devices/system/cpu/cpu0/cache")


@dataclass(frozen=True)
class ChunkTuning:
    """Outcome of one chunk-size tuning pass.

    Attributes
    ----------
    chunk_windows:
        The chosen sub-batch row count.
    source:
        How it was chosen: ``"measured"`` (timing probe),
        ``"cache-model"`` (sysfs cache size through the footprint
        model) or ``"default"`` (probe unavailable).
    workspace_size:
        FFT workspace length the value was tuned for.
    cache_bytes:
        Detected last-level cache size (``None`` if undetected).
    timings:
        Candidate-to-seconds map of the timing probe (``None`` for the
        model/default paths).
    provider:
        FFT execution provider the tuning applies to (the timing probe
        runs under it; the cache model is provider-independent but the
        active provider is recorded for the report).
    """

    chunk_windows: int
    source: str
    workspace_size: int
    cache_bytes: int | None = None
    timings: dict[int, float] | None = None
    provider: str | None = None


def _parse_cache_size(text: str) -> int | None:
    """Parse a sysfs cache size string (``"48K"``, ``"12288K"``, ``"1M"``)."""
    text = text.strip()
    if not text:
        return None
    multiplier = 1
    if text[-1] in "Kk":
        multiplier, text = 1024, text[:-1]
    elif text[-1] in "Mm":
        multiplier, text = 1024 * 1024, text[:-1]
    elif text[-1] in "Gg":
        multiplier, text = 1024 * 1024 * 1024, text[:-1]
    try:
        value = int(text)
    except ValueError:
        return None
    return value * multiplier if value > 0 else None


def detect_cache_bytes(root: pathlib.Path | None = None) -> int | None:
    """Size in bytes of the largest data/unified CPU cache, or ``None``.

    Scans ``/sys/devices/system/cpu/cpu0/cache/index*`` (every cache
    level one core can reach); instruction caches are ignored.  Returns
    ``None`` when sysfs is absent (non-Linux hosts, restricted
    containers) — callers then fall back to the PR 1 default.
    """
    root = _SYSFS_CACHE_ROOT if root is None else root
    best: int | None = None
    try:
        indexes = sorted(root.glob("index*"))
    except OSError:
        return None
    for index in indexes:
        try:
            kind = (index / "type").read_text().strip()
            if kind not in ("Data", "Unified"):
                continue
            size = _parse_cache_size((index / "size").read_text())
        except OSError:
            continue
        if size is not None and (best is None or size > best):
            best = size
    return best


def _clamp_to_power_of_two(rows: float) -> int:
    """Clamp to the tuning range and round down to a power of two."""
    rows = min(max(rows, MIN_CHUNK_WINDOWS), MAX_CHUNK_WINDOWS)
    return 1 << int(np.log2(rows))


def chunk_windows_for_cache(workspace_size: int, cache_bytes: int) -> int:
    """Rows that keep one sub-batch resident in a cache of *cache_bytes*.

    Uses the measured ``_BYTES_PER_CELL`` footprint of the batch
    pipeline; the result is clamped to
    ``[MIN_CHUNK_WINDOWS, MAX_CHUNK_WINDOWS]`` and rounded down to a
    power of two so sub-batches tile group sizes evenly.
    """
    if workspace_size < 2:
        raise ConfigurationError(
            f"workspace_size must be >= 2, got {workspace_size}"
        )
    if cache_bytes <= 0:
        raise ConfigurationError(
            f"cache_bytes must be positive, got {cache_bytes}"
        )
    per_window = _BYTES_PER_CELL * workspace_size
    return _clamp_to_power_of_two(cache_bytes / per_window)


def _synthetic_windows(
    n_windows: int, beats_per_window: int, seed: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Identical-geometry RR windows for the timing probe."""
    rng = np.random.default_rng(seed)
    windows = []
    for _ in range(n_windows):
        intervals = 0.85 + 0.05 * rng.standard_normal(beats_per_window)
        times = np.cumsum(np.abs(intervals) + 0.3)
        windows.append((times, intervals))
    return windows


def measure_chunk_windows(
    workspace_size: int = 512,
    candidates: tuple[int, ...] = (64, 128, 256, 512, 1024),
    n_windows: int | None = None,
    beats_per_window: int = 117,
    repeats: int = 2,
    seed: int = 2014,
) -> ChunkTuning:
    """Time the batch pipeline at each candidate chunk size, pick the best.

    The workload is a cohort of identical-geometry synthetic windows
    (one frequency-grid group, the hot case), sized to exercise the
    largest candidate at least twice.  The resolved FFT execution
    provider is pinned for the duration of the probe (and recorded in
    the result) so a lazy mid-probe re-selection cannot skew the
    candidate timings.  Returns a :class:`ChunkTuning` with
    per-candidate best-of-*repeats* timings.
    """
    from ..ffts.providers import registry
    from ..lomb import fast

    if not candidates:
        raise ConfigurationError("candidates must be non-empty")
    candidates = tuple(sorted(set(int(c) for c in candidates)))
    if candidates[0] < 1:
        raise ConfigurationError(f"candidates must be >= 1, got {candidates}")
    if n_windows is None:
        n_windows = 2 * candidates[-1]
    windows = _synthetic_windows(n_windows, beats_per_window, seed)
    analyzer = fast.FastLomb(
        workspace_size=workspace_size, scaling="denormalized"
    )
    analyzer.periodogram_batch(windows)  # warm plans and caches untimed
    timings: dict[int, float] = {}
    previous = fast.get_chunk_override()
    previous_provider = registry.get_default_provider_name()
    provider = registry.resolve_provider_name(None, workspace_size)
    registry.set_default_provider(provider)
    try:
        for candidate in candidates:
            fast.set_batch_chunk_windows(candidate)
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                analyzer.periodogram_batch(windows)
                best = min(best, time.perf_counter() - start)
            timings[candidate] = best
    finally:
        fast.set_batch_chunk_windows(previous)
        registry.set_default_provider(previous_provider)
    chosen = min(timings, key=timings.get)
    return ChunkTuning(
        chunk_windows=chosen,
        source="measured",
        workspace_size=workspace_size,
        cache_bytes=detect_cache_bytes(),
        timings=timings,
        provider=provider,
    )


def autotune_chunk_windows(workspace_size: int = 512) -> ChunkTuning:
    """Cheap first-use tuning pass: sysfs cache model, PR 1 fallback.

    This is what :func:`repro.lomb.fast.get_batch_chunk_windows` runs
    lazily the first time a batch is chunked for a given workspace
    size.  It never times anything (timing at import/first-use would
    make cold starts slow and nondeterministic); hosts that want the
    empirical answer run :func:`measure_chunk_windows` explicitly via
    the benchmark or the ``tune`` CLI command.
    """
    cache_bytes = detect_cache_bytes()
    if cache_bytes is None:
        return ChunkTuning(
            chunk_windows=DEFAULT_CHUNK_WINDOWS,
            source="default",
            workspace_size=workspace_size,
        )
    if cache_bytes > MAX_TRUSTED_CACHE_BYTES:
        # Virtualised / whole-machine reading: keep the measured
        # default instead of modelling a cache one core can't use.
        return ChunkTuning(
            chunk_windows=DEFAULT_CHUNK_WINDOWS,
            source="default",
            workspace_size=workspace_size,
            cache_bytes=cache_bytes,
        )
    return ChunkTuning(
        chunk_windows=chunk_windows_for_cache(workspace_size, cache_bytes),
        source="cache-model",
        workspace_size=workspace_size,
        cache_bytes=cache_bytes,
    )
